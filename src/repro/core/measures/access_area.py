"""Query-access-area distance (Definition 5).

The access area of a query ``Q`` w.r.t. an attribute ``A`` is the part of
``A``'s domain that ``Q`` accesses [16].  Definition 5 compares two queries
attribute by attribute::

    δ_A(Q1, Q2) = 0    if access_A(Q1) = access_A(Q2)
                  x    if the areas overlap (default x = 0.5)
                  1    otherwise

    d_AE(Q1, Q2) = (1 / |Attr_{Q1,Q2}|) · Σ_A δ_A(Q1, Q2)

where ``Attr_{Q1,Q2}`` is the set of attributes accessed by ``Q1`` or ``Q2``.

Access areas are represented symbolically as unions of intervals and points
(:class:`AccessArea`), built from the query's WHERE predicates:

* ``A = c`` / ``A IN (...)``          → point set,
* ``A < c``, ``A BETWEEN c AND c'`` … → intervals,
* ``AND`` → intersection, ``OR`` → union,
* ``NOT``, ``LIKE``, ``IS NULL``       → conservatively the full domain,
* an attribute referenced without any predicate → the full domain,
* an attribute not referenced by the query at all → the empty area.

All set operations (intersection, union, overlap, equality) are invariant
under strictly monotone value mappings, which is exactly why OPE-encrypted
constants preserve the measure; this invariance is what the property-based
tests check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dpe import DistanceMeasure, LogContext, SharedInformation
from repro.core.domains import DomainCatalog
from repro.exceptions import MiningError
from repro.core.kitdpe import (
    ComponentRequirement,
    ConstantRequirement,
    ConstantUsage,
    EquivalenceRequirements,
)
from repro.sql.ast import (
    BetweenPredicate,
    BinaryOp,
    ColumnRef,
    ComparisonOp,
    Expression,
    InPredicate,
    Literal,
    LogicalConnective,
    LogicalOp,
    Query,
    UnaryMinus,
)
from repro.sql.visitor import column_refs


# --------------------------------------------------------------------------- #
# interval / access-area algebra


def _less(a: object, b: object) -> bool:
    """Strict ordering of interval endpoints (``None`` means unbounded)."""
    return a < b  # type: ignore[operator]


@dataclass(frozen=True)
class Interval:
    """A (possibly half-open, possibly unbounded) interval of an ordered domain."""

    low: object | None = None
    high: object | None = None
    low_inclusive: bool = True
    high_inclusive: bool = True

    def is_empty(self) -> bool:
        """True if the interval contains no values."""
        if self.low is None or self.high is None:
            return False
        if _less(self.high, self.low):
            return True
        if self.low == self.high:
            return not (self.low_inclusive and self.high_inclusive)
        return False

    def contains(self, value: object) -> bool:
        """True if ``value`` lies inside the interval."""
        if self.low is not None:
            if _less(value, self.low):
                return False
            if value == self.low and not self.low_inclusive:
                return False
        if self.high is not None:
            if _less(self.high, value):
                return False
            if value == self.high and not self.high_inclusive:
                return False
        return True

    def overlaps(self, other: "Interval") -> bool:
        """True if the two intervals share at least one value."""
        return not self.intersect(other).is_empty()

    def intersect(self, other: "Interval") -> "Interval":
        """The intersection of two intervals (possibly empty)."""
        low, low_inclusive = self.low, self.low_inclusive
        if other.low is not None and (low is None or _less(low, other.low)):
            low, low_inclusive = other.low, other.low_inclusive
        elif other.low is not None and low == other.low:
            low_inclusive = low_inclusive and other.low_inclusive

        high, high_inclusive = self.high, self.high_inclusive
        if other.high is not None and (high is None or _less(other.high, high)):
            high, high_inclusive = other.high, other.high_inclusive
        elif other.high is not None and high == other.high:
            high_inclusive = high_inclusive and other.high_inclusive

        return Interval(low, high, low_inclusive, high_inclusive)

    def clip(self, minimum: object, maximum: object) -> "Interval":
        """Clip the interval to the domain bounds ``[minimum, maximum]``."""
        return self.intersect(Interval(minimum, maximum, True, True))


@dataclass(frozen=True)
class AccessArea:
    """The part of one attribute's domain a query accesses."""

    full: bool = False
    intervals: frozenset[Interval] = field(default_factory=frozenset)
    points: frozenset[object] = field(default_factory=frozenset)

    # -- constructors -------------------------------------------------------- #

    @classmethod
    def full_domain(cls) -> "AccessArea":
        """The whole domain (attribute referenced without constraining predicates)."""
        return cls(full=True)

    @classmethod
    def empty(cls) -> "AccessArea":
        """The empty area (attribute not accessed, or contradictory predicates)."""
        return cls()

    @classmethod
    def of_points(cls, values: frozenset[object]) -> "AccessArea":
        """A finite point set (equality / IN predicates)."""
        return cls(points=values)

    @classmethod
    def of_interval(cls, interval: Interval) -> "AccessArea":
        """A single interval (range / BETWEEN predicates)."""
        if interval.is_empty():
            return cls.empty()
        return cls(intervals=frozenset({interval}))

    # -- predicates ----------------------------------------------------------- #

    def is_empty(self) -> bool:
        """True if no value of the domain is accessed."""
        return not self.full and not self.intervals and not self.points

    def contains(self, value: object) -> bool:
        """True if ``value`` is inside the area."""
        if self.full:
            return True
        if value in self.points:
            return True
        return any(interval.contains(value) for interval in self.intervals)

    def overlaps(self, other: "AccessArea") -> bool:
        """True if the two areas share at least one value."""
        if self.is_empty() or other.is_empty():
            return False
        if self.full or other.full:
            return True
        if self.points & other.points:
            return True
        if any(other.contains(point) for point in self.points):
            return True
        if any(self.contains(point) for point in other.points):
            return True
        return any(a.overlaps(b) for a in self.intervals for b in other.intervals)

    # -- algebra -------------------------------------------------------------- #

    def intersect(self, other: "AccessArea") -> "AccessArea":
        """Intersection of two areas (used for AND)."""
        if self.full:
            return other.canonical()
        if other.full:
            return self.canonical()
        intervals = set()
        for a in self.intervals:
            for b in other.intervals:
                candidate = a.intersect(b)
                if not candidate.is_empty():
                    intervals.add(candidate)
        points = {p for p in self.points if other.contains(p)}
        points |= {p for p in other.points if self.contains(p)}
        return AccessArea(intervals=frozenset(intervals), points=frozenset(points)).canonical()

    def union(self, other: "AccessArea") -> "AccessArea":
        """Union of two areas (used for OR)."""
        if self.full or other.full:
            return AccessArea.full_domain()
        return AccessArea(
            intervals=self.intervals | other.intervals,
            points=self.points | other.points,
        ).canonical()

    def canonical(self) -> "AccessArea":
        """Canonical form: absorb points covered by intervals, drop empty intervals.

        Only transformations that commute with strictly monotone value
        mappings are applied, so the canonical form of the encrypted area is
        the encryption of the canonical plaintext area.
        """
        if self.full:
            return AccessArea.full_domain()
        intervals = frozenset(i for i in self.intervals if not i.is_empty())
        points = frozenset(
            p for p in self.points if not any(i.contains(p) for i in intervals)
        )
        return AccessArea(intervals=intervals, points=points)

    def clip(self, minimum: object, maximum: object) -> "AccessArea":
        """Clip all intervals to the attribute's domain bounds."""
        if self.full or not self.intervals:
            return self
        clipped = frozenset(i.clip(minimum, maximum) for i in self.intervals)
        return AccessArea(full=False, intervals=clipped, points=self.points).canonical()


# --------------------------------------------------------------------------- #
# building access areas from queries

_RANGE_OPS = {
    ComparisonOp.LT: lambda value: Interval(None, value, True, False),
    ComparisonOp.LTE: lambda value: Interval(None, value, True, True),
    ComparisonOp.GT: lambda value: Interval(value, None, False, True),
    ComparisonOp.GTE: lambda value: Interval(value, None, True, True),
}


def _constant_of(expr: Expression) -> object | None:
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, UnaryMinus) and isinstance(expr.operand, Literal):
        value = expr.operand.value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return -value
    return None


def _predicate_areas(expr: Expression) -> dict[str, AccessArea]:
    """Per-attribute access areas implied by a predicate tree."""
    if isinstance(expr, LogicalOp):
        operand_maps = [_predicate_areas(op) for op in expr.operands]
        combined: dict[str, AccessArea] = {}
        attributes = {attr for mapping in operand_maps for attr in mapping}
        for attribute in attributes:
            areas = [
                mapping.get(attribute, AccessArea.full_domain()) for mapping in operand_maps
            ]
            area = areas[0]
            for other in areas[1:]:
                if expr.op is LogicalConnective.AND:
                    area = area.intersect(other)
                else:
                    area = area.union(other)
            combined[attribute] = area
        return combined

    if isinstance(expr, BinaryOp) and isinstance(expr.op, ComparisonOp):
        column, value = _column_and_constant(expr)
        if column is None or value is None:
            return _conservative_areas(expr)
        if expr.op is ComparisonOp.EQ:
            return {column: AccessArea.of_points(frozenset({value}))}
        if expr.op is ComparisonOp.NEQ:
            return {column: AccessArea.full_domain()}
        op = expr.op
        if isinstance(expr.right, ColumnRef) and not isinstance(expr.left, ColumnRef):
            op = op.flip()
        return {column: AccessArea.of_interval(_RANGE_OPS[op](value))}

    if isinstance(expr, BetweenPredicate):
        if isinstance(expr.operand, ColumnRef):
            low = _constant_of(expr.low)
            high = _constant_of(expr.high)
            if low is not None and high is not None and not expr.negated:
                return {expr.operand.name: AccessArea.of_interval(Interval(low, high))}
        return _conservative_areas(expr)

    if isinstance(expr, InPredicate):
        if isinstance(expr.operand, ColumnRef) and not expr.negated:
            values = [_constant_of(v) for v in expr.values]
            if all(value is not None for value in values):
                return {expr.operand.name: AccessArea.of_points(frozenset(values))}
        return _conservative_areas(expr)

    # NOT, LIKE, IS NULL, arithmetic comparisons, column-column joins:
    # conservatively assume the whole domain of every referenced attribute is
    # accessed.  The same rule applies on the encrypted side, so preservation
    # is unaffected.
    return _conservative_areas(expr)


def _column_and_constant(expr: BinaryOp) -> tuple[str | None, object | None]:
    left_column = expr.left.name if isinstance(expr.left, ColumnRef) else None
    right_column = expr.right.name if isinstance(expr.right, ColumnRef) else None
    if left_column is not None and right_column is None:
        return left_column, _constant_of(expr.right)
    if right_column is not None and left_column is None:
        return right_column, _constant_of(expr.left)
    return None, None


def _conservative_areas(expr: Expression) -> dict[str, AccessArea]:
    return {ref.name: AccessArea.full_domain() for ref in column_refs(expr)}


def query_access_areas(
    query: Query, domains: DomainCatalog | None = None
) -> dict[str, AccessArea]:
    """The access area of ``query`` for every attribute it accesses."""
    accessed = {ref.name for ref in column_refs(query)}
    areas: dict[str, AccessArea] = {attribute: AccessArea.full_domain() for attribute in accessed}
    constraint_maps: list[dict[str, AccessArea]] = []
    if query.where is not None:
        constraint_maps.append(_predicate_areas(query.where))
    if query.having is not None:
        constraint_maps.append(_conservative_areas(query.having))
    for mapping in constraint_maps:
        for attribute, area in mapping.items():
            current = areas.get(attribute, AccessArea.full_domain())
            areas[attribute] = current.intersect(area)
    if domains is not None:
        for attribute, area in list(areas.items()):
            if domains.has_domain(attribute):
                domain = domains.domain(attribute)
                if domain.is_numeric and not area.full:
                    areas[attribute] = area.clip(domain.minimum, domain.maximum)
    return areas


# --------------------------------------------------------------------------- #
# the distance measure


class AccessAreaDistance(DistanceMeasure):
    """Definition 5: averaged per-attribute access-area comparison."""

    name = "access_area"
    display_name = "Query-Access-Area Distance"
    equivalence_notion = "Access-Area Equivalence"
    shared_information = SharedInformation(log=True, domains=True)
    #: Definition 5 averages per-attribute scores over the *pair-dependent*
    #: attribute union, and varying denominators break the triangle
    #: inequality (violations up to ~1/6 occur on generated workloads even
    #: though each per-attribute δ is itself a metric).  Pivot-based pruning
    #: therefore falls back to a full — still exact — candidate scan.
    is_metric = False

    def __init__(self, overlap_score: float = 0.5) -> None:
        """``overlap_score`` is the paper's ``x`` (default 0.5, must be in (0, 1))."""
        if not 0.0 < overlap_score < 1.0:
            raise ValueError("overlap_score must lie strictly between 0 and 1")
        self.overlap_score = overlap_score

    def characteristic(self, query: Query, context: LogContext) -> dict[str, AccessArea]:
        """Per-attribute access areas (the paper's ``c = access_A`` for all A)."""
        return query_access_areas(query, context.domains)

    def characteristic_key(self, characteristic: object) -> object:
        """Hashable grouping key: the canonicalised (attribute, area) pairs.

        ``distance_between`` reads only canonical equality, overlap (which
        is invariant under canonicalisation) and the dict's key set, so two
        characteristics with the same canonical mapping — including which
        attributes appear at all, since the attribute union is the
        denominator — are interchangeable for every pair.
        """
        mapping: dict[str, AccessArea] = characteristic  # type: ignore[assignment]
        return tuple(sorted(
            (attribute, area.canonical()) for attribute, area in mapping.items()
        ))

    def distance_between(
        self,
        characteristic_a: dict[str, AccessArea],
        characteristic_b: dict[str, AccessArea],
    ) -> float:
        """Definition 5: average δ_A over the attributes accessed by either query."""
        attributes = set(characteristic_a) | set(characteristic_b)
        if not attributes:
            return 0.0
        total = 0.0
        for attribute in attributes:
            area_a = characteristic_a.get(attribute, AccessArea.empty())
            area_b = characteristic_b.get(attribute, AccessArea.empty())
            total += self._delta(area_a, area_b)
        return total / len(attributes)

    def _delta(self, area_a: AccessArea, area_b: AccessArea) -> float:
        if area_a.canonical() == area_b.canonical():
            return 0.0
        if area_a.overlaps(area_b):
            return self.overlap_score
        return 1.0

    def condensed_distances(self, characteristics: list[object]) -> np.ndarray:
        """Batched fast path: canonicalise each area once, not once per pair.

        The naive loop calls ``canonical()`` on both areas for every pair
        (O(n²·attrs) canonicalisations); here each characteristic is
        canonicalised a single time up front.  ``canonical()`` is idempotent
        and ``overlaps`` is invariant under canonicalisation, so the
        resulting distances are bit-identical to the reference loop.
        """
        n = len(characteristics)
        return self.condensed_row_block(characteristics, 0, max(n - 1, 0))

    def condensed_row_block(
        self, characteristics: list[object], start: int, stop: int
    ) -> np.ndarray:
        """Canonicalise-once row block for the parallel pipeline.

        Each δ_A is 0, ``overlap_score`` or 1, so the per-pair sum is a small
        dyadic rational: float addition over it is exact in any order, and
        the final division by the attribute count is correctly rounded on
        identical operands — row blocks concatenate to bit-identical values
        even across worker processes with different hash seeds (which change
        set iteration order, but not exact sums).
        """
        n = len(characteristics)
        if not 0 <= start <= stop <= n:
            raise MiningError(f"row block [{start}, {stop}) out of range for {n} items")
        # A block only reads indices start..n-1 (its rows and everything to
        # their right), so the prefix is never canonicalised.
        canonical: list[dict[str, AccessArea]] = [
            {attribute: area.canonical() for attribute, area in characteristic.items()}
            for characteristic in characteristics[start:]
        ]
        empty = AccessArea.empty()
        out = np.zeros(sum(n - 1 - i for i in range(start, stop)), dtype=float)
        position = 0
        for i in range(start, stop):
            areas_i = canonical[i - start]
            for j in range(i + 1, n):
                areas_j = canonical[j - start]
                attributes = set(areas_i) | set(areas_j)
                if attributes:
                    total = 0.0
                    for attribute in attributes:
                        area_a = areas_i.get(attribute, empty)
                        area_b = areas_j.get(attribute, empty)
                        if area_a == area_b:
                            continue
                        total += self.overlap_score if area_a.overlaps(area_b) else 1.0
                    out[position] = total / len(attributes)
                position += 1
        return out

    def component_requirements(self) -> EquivalenceRequirements:
        """KIT-DPE step 2: names need equality; constants depend on their usage.

        Constants in equality predicates need DET, constants in range
        predicates need OPE (interval overlap only relies on order), and
        attributes that occur *only* inside aggregate arguments in the SELECT
        clause never influence the access area — their values can be
        encrypted probabilistically.  This is the paper's "via CryptDB,
        except HOM" cell, the point where KIT-DPE beats CryptDB-as-is on
        security.
        """
        equality = ComponentRequirement(needs_equality=True, note="names resolved by equality")
        return EquivalenceRequirements(
            notion=self.equivalence_notion,
            characteristic="access areas",
            relation_names=equality,
            attribute_names=equality,
            constants=ConstantRequirement(
                per_usage=(
                    (
                        ConstantUsage.EQUALITY_PREDICATE,
                        ComponentRequirement(needs_equality=True),
                    ),
                    (
                        ConstantUsage.RANGE_PREDICATE,
                        ComponentRequirement(needs_equality=True, needs_order=True),
                    ),
                    (
                        ConstantUsage.AGGREGATE_ARGUMENT,
                        ComponentRequirement(note="SELECT clause does not affect the access area"),
                    ),
                ),
                via_cryptdb=True,
            ),
        )
