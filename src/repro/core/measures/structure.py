"""Query-structure distance (SnipSuggest features, Example 5).

Queries are mapped to their feature sets (see :mod:`repro.sql.features`) and
compared with the Jaccard measure.  Because features drop constants, the
characteristic is insensitive to constant values — which is exactly why
Table I can afford PROB encryption for constants under this measure.
"""

from __future__ import annotations

from repro.core.dpe import JaccardSetMeasure, LogContext, SharedInformation
from repro.core.kitdpe import ComponentRequirement, ConstantRequirement, EquivalenceRequirements
from repro.sql.ast import Query
from repro.sql.features import Feature, feature_set


class StructureDistance(JaccardSetMeasure):
    """Jaccard distance over SnipSuggest-style feature sets.

    Inherits the vectorized membership-matrix distance pipeline from
    :class:`~repro.core.dpe.JaccardSetMeasure`.
    """

    name = "structure"
    display_name = "Query-Structure Distance"
    equivalence_notion = "Structural Equivalence"
    shared_information = SharedInformation(log=True)

    def characteristic(self, query: Query, context: LogContext) -> frozenset[Feature]:
        """The feature set of ``query`` (the paper's ``c = features``)."""
        _ = context
        return feature_set(query)

    def component_requirements(self) -> EquivalenceRequirements:
        """KIT-DPE step 2: identifiers must stay comparable, constants need nothing.

        Features contain relation and attribute names (equality-compared)
        but no constants, so the constant functions are unconstrained and
        the appropriate class is the most secure one — PROB.
        """
        equality = ComponentRequirement(needs_equality=True, note="features compared by equality")
        unconstrained = ComponentRequirement(note="constants do not occur in features")
        return EquivalenceRequirements(
            notion=self.equivalence_notion,
            characteristic="features",
            relation_names=equality,
            attribute_names=equality,
            constants=ConstantRequirement(uniform=unconstrained),
        )
