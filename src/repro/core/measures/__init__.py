"""The four SQL query-distance measures of the paper's case study (Table I).

* :class:`~repro.core.measures.token.TokenDistance` — token-based
  query-string distance (Definition 3),
* :class:`~repro.core.measures.structure.StructureDistance` — query-structure
  distance over SnipSuggest features,
* :class:`~repro.core.measures.result.ResultDistance` — query-result distance
  (Definition 4, Jaccard over result tuples),
* :class:`~repro.core.measures.access_area.AccessAreaDistance` —
  query-access-area distance (Definition 5).

:func:`standard_measures` returns one instance of each, in Table I order.
"""

from repro.core.measures.access_area import AccessArea, AccessAreaDistance, Interval
from repro.core.measures.result import ResultDistance
from repro.core.measures.structure import StructureDistance
from repro.core.measures.token import TokenDistance


def standard_measures() -> list:
    """All four measures of Table I, in the paper's order."""
    return [TokenDistance(), StructureDistance(), ResultDistance(), AccessAreaDistance()]


__all__ = [
    "AccessArea",
    "AccessAreaDistance",
    "Interval",
    "ResultDistance",
    "StructureDistance",
    "TokenDistance",
    "standard_measures",
]
