"""Query-result distance (Definition 4).

The distance between two queries is the Jaccard distance of the *sets of
tuples in their results*.  The result of a query depends on the database
state, so evaluating this measure requires the database content to be shared
(encrypted) alongside the log — the "DB-Content" check mark of Table I.

The characteristic to preserve is the set of result tuples (*result
equivalence*, Definition 4): ``Enc(result_tuples(Q)) =
result_tuples(Enc(Q))``.  On the encrypted side the measure runs the
encrypted query against the encrypted database (the CryptDB layer) and
compares ciphertext tuples — it never decrypts anything.
"""

from __future__ import annotations

from repro.core.dpe import JaccardSetMeasure, LogContext, SharedInformation
from repro.core.kitdpe import (
    ComponentRequirement,
    ConstantRequirement,
    ConstantUsage,
    EquivalenceRequirements,
)
from repro.db.backend import DEFAULT_BACKEND, create_backend
from repro.sql.ast import Query

#: A result tuple as used by the measure: the projected values, in order.
ResultTuple = tuple[object, ...]


class ResultDistance(JaccardSetMeasure):
    """Jaccard distance over result-tuple sets.

    Inherits the vectorized membership-matrix distance pipeline from
    :class:`~repro.core.dpe.JaccardSetMeasure`; the batch hook shares one
    execution backend across the whole log.  The backend is chosen by name
    (see :mod:`repro.db.backend`): the ``"memory"`` interpreter is the
    default oracle, ``"sqlite"`` scales to large logs/databases.  The
    characteristic — a *set* of result tuples — is backend-independent, so
    distances are bit-for-bit identical across backends.
    """

    name = "result"
    display_name = "Query-Result Distance"
    equivalence_notion = "Result Equivalence"
    shared_information = SharedInformation(log=True, db_content=True)

    def __init__(self, *, backend: str = DEFAULT_BACKEND) -> None:
        self.backend_name = backend
        # Single-slot backend cache for the most recent database snapshot:
        # per-database setup (joined row scopes for the interpreter, the
        # bulk load for SQLite) is paid once even on per-query paths like
        # distance() or the reference loop, while switching snapshots
        # closes the previous backend — the cache never holds more than one
        # database alive.  Databases are treated as immutable once a
        # backend has seen them (the executor's join-state contract).
        self._cached_backend: tuple[object, object] | None = None

    def _backend_for(self, context: LogContext):
        database = context.require_database()
        if self._cached_backend is not None:
            cached_database, backend = self._cached_backend
            if cached_database is database:
                return backend
            backend.close()  # type: ignore[attr-defined]
        backend = create_backend(self.backend_name, database)
        self._cached_backend = (database, backend)
        return backend

    def characteristic(self, query: Query, context: LogContext) -> frozenset[ResultTuple]:
        """The result-tuple set of ``query`` against the context's database."""
        return self._backend_for(context).execute(query).tuple_set()

    def characteristics(
        self, queries: list[Query], context: LogContext
    ) -> list[frozenset[ResultTuple]]:
        """Batch hook: one shared backend amortized across the log.

        Queries in a log overwhelmingly share their FROM/JOIN shape, so the
        per-database setup cost is paid once instead of once per query — the
        dominant cost of the naive per-query path.
        """
        backend = self._backend_for(context)
        return [result.tuple_set() for result in backend.execute_many(queries)]

    def __getstate__(self) -> dict[str, object]:
        """Pickle support for parallel workers: drop the live backend.

        Workers only compute Jaccard distances over already-extracted
        result-tuple sets, so the engine handle (which may hold an open
        SQLite connection) never crosses the process boundary.
        """
        state = super().__getstate__()
        state["_cached_backend"] = None
        return state

    def component_requirements(self) -> EquivalenceRequirements:
        """KIT-DPE step 2: queries must stay *executable* over the encrypted DB.

        Relation and attribute names must resolve deterministically (DET).
        Constants must be encrypted so that the predicates they occur in can
        be evaluated server-side; this is exactly what CryptDB's onions
        provide, hence the constant choice is "via CryptDB": DET for equality
        predicates, OPE for range predicates and HOM for aggregate arguments.
        """
        equality = ComponentRequirement(needs_equality=True, note="names resolved by equality")
        return EquivalenceRequirements(
            notion=self.equivalence_notion,
            characteristic="result tuples",
            relation_names=equality,
            attribute_names=equality,
            constants=ConstantRequirement(
                per_usage=(
                    (
                        ConstantUsage.EQUALITY_PREDICATE,
                        ComponentRequirement(needs_equality=True),
                    ),
                    (
                        ConstantUsage.RANGE_PREDICATE,
                        ComponentRequirement(needs_equality=True, needs_order=True),
                    ),
                    (
                        ConstantUsage.AGGREGATE_ARGUMENT,
                        ComponentRequirement(needs_addition=True),
                    ),
                ),
                via_cryptdb=True,
            ),
        )
