"""Query-result distance (Definition 4).

The distance between two queries is the Jaccard distance of the *sets of
tuples in their results*.  The result of a query depends on the database
state, so evaluating this measure requires the database content to be shared
(encrypted) alongside the log — the "DB-Content" check mark of Table I.

The characteristic to preserve is the set of result tuples (*result
equivalence*, Definition 4): ``Enc(result_tuples(Q)) =
result_tuples(Enc(Q))``.  On the encrypted side the measure runs the
encrypted query against the encrypted database (the CryptDB layer) and
compares ciphertext tuples — it never decrypts anything.
"""

from __future__ import annotations

from repro.core.dpe import JaccardSetMeasure, LogContext, SharedInformation
from repro.core.kitdpe import (
    ComponentRequirement,
    ConstantRequirement,
    ConstantUsage,
    EquivalenceRequirements,
)
from repro.db.executor import QueryExecutor
from repro.sql.ast import Query

#: A result tuple as used by the measure: the projected values, in order.
ResultTuple = tuple[object, ...]


class ResultDistance(JaccardSetMeasure):
    """Jaccard distance over result-tuple sets.

    Inherits the vectorized membership-matrix distance pipeline from
    :class:`~repro.core.dpe.JaccardSetMeasure`; the batch hook shares one
    executor across the whole log.
    """

    name = "result"
    display_name = "Query-Result Distance"
    equivalence_notion = "Result Equivalence"
    shared_information = SharedInformation(log=True, db_content=True)

    def characteristic(self, query: Query, context: LogContext) -> frozenset[ResultTuple]:
        """The result-tuple set of ``query`` against the context's database."""
        database = context.require_database()
        result = QueryExecutor(database).execute(query)
        return result.tuple_set()

    def characteristics(
        self, queries: list[Query], context: LogContext
    ) -> list[frozenset[ResultTuple]]:
        """Batch hook: one shared executor that reuses joins across the log.

        Queries in a log overwhelmingly share their FROM/JOIN shape, so the
        joined row scopes are computed once per shape instead of once per
        query — the dominant cost of the naive per-query path.
        """
        executor = QueryExecutor(context.require_database(), reuse_join_state=True)
        return [executor.execute(query).tuple_set() for query in queries]

    def component_requirements(self) -> EquivalenceRequirements:
        """KIT-DPE step 2: queries must stay *executable* over the encrypted DB.

        Relation and attribute names must resolve deterministically (DET).
        Constants must be encrypted so that the predicates they occur in can
        be evaluated server-side; this is exactly what CryptDB's onions
        provide, hence the constant choice is "via CryptDB": DET for equality
        predicates, OPE for range predicates and HOM for aggregate arguments.
        """
        equality = ComponentRequirement(needs_equality=True, note="names resolved by equality")
        return EquivalenceRequirements(
            notion=self.equivalence_notion,
            characteristic="result tuples",
            relation_names=equality,
            attribute_names=equality,
            constants=ConstantRequirement(
                per_usage=(
                    (
                        ConstantUsage.EQUALITY_PREDICATE,
                        ComponentRequirement(needs_equality=True),
                    ),
                    (
                        ConstantUsage.RANGE_PREDICATE,
                        ComponentRequirement(needs_equality=True, needs_order=True),
                    ),
                    (
                        ConstantUsage.AGGREGATE_ARGUMENT,
                        ComponentRequirement(needs_addition=True),
                    ),
                ),
                via_cryptdb=True,
            ),
        )
