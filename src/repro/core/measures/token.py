"""Token-based query-string distance (Definition 3).

A query is interpreted as the *set* of its lexical tokens; the distance
between two queries is the Jaccard distance of their token sets::

    d_token(Q1, Q2) = 1 - |tokens(Q1) ∩ tokens(Q2)| / |tokens(Q1) ∪ tokens(Q2)|

The characteristic to preserve is the token set (*token equivalence*).
"""

from __future__ import annotations

from repro.core.dpe import JaccardSetMeasure, LogContext, SharedInformation
from repro.core.kitdpe import ComponentRequirement, ConstantRequirement, EquivalenceRequirements
from repro.sql.ast import Query
from repro.sql.tokens import QueryToken, query_token_set


class TokenDistance(JaccardSetMeasure):
    """Jaccard distance over query token sets.

    Inherits the vectorized membership-matrix distance pipeline from
    :class:`~repro.core.dpe.JaccardSetMeasure`.
    """

    name = "token"
    display_name = "Token-Based Query-String Distance"
    equivalence_notion = "Token Equivalence"
    shared_information = SharedInformation(log=True)

    def characteristic(self, query: Query, context: LogContext) -> frozenset[QueryToken]:
        """The token set of ``query`` (the paper's ``c = tokens``)."""
        _ = context
        return query_token_set(query)

    def component_requirements(self) -> EquivalenceRequirements:
        """KIT-DPE step 2: every encrypted token must stay equality-comparable.

        Relation names, attribute names and constants all become tokens of
        the encrypted query, so all three components need a deterministic
        (equality-preserving) encryption — Table I assigns DET everywhere.
        """
        equality = ComponentRequirement(needs_equality=True, note="tokens compared by equality")
        return EquivalenceRequirements(
            notion=self.equivalence_notion,
            characteristic="tokens",
            relation_names=equality,
            attribute_names=equality,
            constants=ConstantRequirement(uniform=equality),
        )
