"""Distance-preserving encryption: Definition 1 and the measure interface.

The paper's central definition (Definition 1): an encryption ``Enc`` for data
items of a data set ``D`` is *d-distance preserving* iff::

    for all x, y in D:   d(Enc(x), Enc(y)) = d(x, y)

Two pieces make this executable:

* :class:`DistanceMeasure` — a distance measure ``d`` over query-log entries.
  Every measure factors through a per-item *characteristic* ``c`` (the
  paper's Definition 2): ``characteristics`` computes ``c(x)`` for a batch of
  queries and ``distance_between`` compares two characteristics.  This
  factoring is exactly what lets the paper reason item-wise about encryption.
* :func:`verify_distance_preservation` — computes the full pairwise distance
  matrices on a plaintext and an encrypted :class:`LogContext` and reports
  the maximum absolute deviation (which must be 0 for a DPE scheme).

Distance pipeline
-----------------

``distance_matrix`` is a three-stage pipeline rather than a naive double
loop:

1. **batch** — ``characteristics(queries, context)`` computes every
   characteristic in one pass (measures may override it with a bulk
   implementation);
2. **cache** — the characteristics and the condensed distances are memoized
   per :class:`LogContext` (weakly keyed, invalidated when the context's log
   is swapped), so verification, experiments and mining share one
   computation;
3. **vectorize** — ``condensed_distances`` fills the strict upper triangle
   as one flat numpy array; :class:`JaccardSetMeasure` replaces the pair
   loop with a set-membership matrix product that is exactly (bit-for-bit)
   equal to the scalar Jaccard distance.

``distance_matrix_reference`` keeps the seed's naive O(n²) loop verbatim as
an equality oracle for tests and benchmarks.
"""

from __future__ import annotations

import abc
import weakref
from dataclasses import dataclass, field

import numpy as np

from repro._utils import jaccard_distance
from repro.core.domains import DomainCatalog
from repro.db.database import Database
from repro.exceptions import DpeError, MiningError
from repro.mining.matrix import CondensedDistanceMatrix, condensed_length
from repro.sql.ast import Query
from repro.sql.log import QueryLog


@dataclass(frozen=True)
class SharedInformation:
    """What the data owner must share with the service provider (Table I).

    Every measure needs the (encrypted) log; the query-result distance also
    needs the database content, and the query-access-area distance needs the
    attribute domains.
    """

    log: bool = True
    db_content: bool = False
    domains: bool = False

    def describe(self) -> str:
        """Human-readable summary, matching the check marks of Table I."""
        parts = []
        if self.log:
            parts.append("Log")
        if self.db_content:
            parts.append("DB-Content")
        if self.domains:
            parts.append("Domains")
        return " + ".join(parts) if parts else "nothing"


@dataclass(eq=False)
class LogContext:
    """A query log together with the side information a measure may need.

    Contexts compare (and hash) by identity so they can key the weak
    per-measure caches of the distance pipeline.
    """

    log: QueryLog
    database: Database | None = None
    domains: DomainCatalog | None = None
    #: Free-form metadata (e.g. whether this context is the encrypted side).
    labels: dict[str, object] = field(default_factory=dict)

    def require_database(self) -> Database:
        """Return the database or raise if it was not shared."""
        if self.database is None:
            raise DpeError("this distance measure requires the database content to be shared")
        return self.database

    def require_domains(self) -> DomainCatalog:
        """Return the domain catalog or raise if it was not shared."""
        if self.domains is None:
            raise DpeError("this distance measure requires the attribute domains to be shared")
        return self.domains

    def __len__(self) -> int:
        return len(self.log)


class _ContextCache:
    """Per-(measure, context) memo: characteristics and condensed distances.

    ``sources`` snapshots the identity of everything a characteristic may
    depend on (log, database, domains); swapping any of them on the context
    invalidates the memo.  In-place mutation of a shared Database is not
    detectable — callers doing that must call
    :meth:`DistanceMeasure.invalidate_cache`.
    """

    __slots__ = ("sources", "characteristics", "condensed")

    def __init__(self, context: LogContext) -> None:
        self.sources = (context.log, context.database, context.domains)
        self.characteristics: list[object] | None = None
        self.condensed: CondensedDistanceMatrix | None = None

    def fresh_for(self, context: LogContext) -> bool:
        """True if the context still references the snapshotted side inputs."""
        log, database, domains = self.sources
        return (
            log is context.log
            and database is context.database
            and domains is context.domains
        )


class DistanceMeasure(abc.ABC):
    """A distance measure over SQL queries, factored through a characteristic."""

    #: Short machine-readable identifier, e.g. ``"token"``.
    name: str = "abstract"
    #: Human-readable name as used in Table I.
    display_name: str = "abstract distance"
    #: Name of the equivalence notion this measure induces (Table I column).
    equivalence_notion: str = "abstract equivalence"
    #: What must be shared with the provider to evaluate the measure.
    shared_information: SharedInformation = SharedInformation()
    #: Whether ``distance_between`` satisfies the triangle inequality.
    #: Metric-space indexing (:mod:`repro.mining.approx`) may prune pairs by
    #: pivot bounds only when this is ``True``; the conservative default is
    #: ``False`` — pruning degrades to a full (still exact) candidate scan.
    is_metric: bool = False

    @abc.abstractmethod
    def characteristic(self, query: Query, context: LogContext) -> object:
        """Compute the characteristic ``c(query)`` (Definition 2) in ``context``."""

    @abc.abstractmethod
    def distance_between(self, characteristic_a: object, characteristic_b: object) -> float:
        """Distance between two characteristics; must be symmetric and in [0, 1]."""

    def characteristic_key(self, characteristic: object) -> object:
        """A hashable key identifying ``characteristic`` up to zero distance.

        Two characteristics with equal keys must be interchangeable for this
        measure: ``distance_between`` yields ``0.0`` between them and the
        *same* value against any third characteristic.  The pivot index
        (:mod:`repro.mining.approx`) groups duplicate log entries by this key
        so all-pairs work collapses to distinct-characteristic work.  The
        default returns the characteristic itself (sound for the frozenset
        characteristics of the Jaccard measures); measures with unhashable
        or non-canonical characteristics override it.
        """
        return characteristic

    # -- batch hook ----------------------------------------------------------- #

    def characteristics(self, queries: list[Query], context: LogContext) -> list[object]:
        """Batch hook: the characteristic of every query, in order.

        The default delegates to :meth:`characteristic` per query; measures
        whose characteristic extraction amortises over a batch (shared
        executors, shared vocabularies) override this.
        """
        return [self.characteristic(query, context) for query in queries]

    # -- caching -------------------------------------------------------------- #

    def _context_cache(self, context: LogContext) -> _ContextCache:
        """The memo attached to ``context``, invalidated when its inputs change."""
        caches = getattr(self, "_prepared", None)
        if caches is None:
            caches = weakref.WeakKeyDictionary()
            self._prepared = caches
        cache = caches.get(context)
        if cache is None or not cache.fresh_for(context):
            cache = _ContextCache(context)
            caches[context] = cache
        return cache

    def invalidate_cache(self, context: LogContext | None = None) -> None:
        """Drop the memoized pipeline state (for one context, or all of them)."""
        caches = getattr(self, "_prepared", None)
        if caches is None:
            return
        if context is None:
            caches.clear()
        else:
            caches.pop(context, None)

    # -- derived functionality ------------------------------------------------ #

    def prepare(self, context: LogContext) -> list[object]:
        """Compute (and memoize) the characteristic of every log entry."""
        cache = self._context_cache(context)
        if cache.characteristics is None:
            cache.characteristics = self.characteristics(
                [entry.query for entry in context.log], context
            )
        return list(cache.characteristics)

    def distance(self, query_a: Query, query_b: Query, context: LogContext) -> float:
        """Distance between two individual queries evaluated in ``context``."""
        return self.distance_between(
            self.characteristic(query_a, context), self.characteristic(query_b, context)
        )

    def condensed_distances(self, characteristics: list[object]) -> np.ndarray:
        """All pairwise distances as a flat upper-triangle array (row-major).

        The default fills the triangle with the scalar ``distance_between``;
        measures whose distance reduces to set or vector operations override
        this with a vectorized implementation (see :class:`JaccardSetMeasure`).
        """
        n = len(characteristics)
        out = np.zeros(condensed_length(n), dtype=float)
        position = 0
        for i in range(n):
            characteristic_i = characteristics[i]
            for j in range(i + 1, n):
                out[position] = self.distance_between(characteristic_i, characteristics[j])
                position += 1
        return out

    def condensed_row_block(
        self, characteristics: list[object], start: int, stop: int
    ) -> np.ndarray:
        """The condensed entries of rows ``start .. stop-1`` (row-major).

        This is the unit of work of the multi-process pipeline
        (:mod:`repro.mining.parallel`): a contiguous row range of the strict
        upper triangle, i.e. all pairs ``(i, j)`` with ``start <= i < stop``
        and ``i < j < n``.  Implementations must return exactly the floats
        the serial ``condensed_distances`` would place at those positions —
        the parallel pipeline's bit-for-bit guarantee rests on this contract.
        The default mirrors the scalar loop; vectorized measures override it.
        """
        n = len(characteristics)
        if not 0 <= start <= stop <= n:
            raise MiningError(f"row block [{start}, {stop}) out of range for {n} items")
        out = np.zeros(
            sum(n - 1 - i for i in range(start, stop)), dtype=float
        )
        position = 0
        for i in range(start, stop):
            characteristic_i = characteristics[i]
            for j in range(i + 1, n):
                out[position] = self.distance_between(characteristic_i, characteristics[j])
                position += 1
        return out

    def condensed_distance_matrix(
        self, context: LogContext, *, workers: int = 1, chunk_size: int | None = None
    ) -> CondensedDistanceMatrix:
        """The pairwise distances in condensed (upper-triangle) form, memoized.

        This is the preferred entry point for large logs: the square matrix
        is never materialised, and the mining algorithms accept the condensed
        form directly.  ``workers > 1`` shards the pair computation over that
        many worker processes (see :mod:`repro.mining.parallel`) with a
        bit-for-bit identical result; ``chunk_size`` tunes the pairs-per-task
        granularity.  A memoized matrix is returned as-is regardless of
        ``workers`` — serial and parallel runs populate the same cache.
        """
        if workers < 1:
            raise MiningError("workers must be at least 1")
        cache = self._context_cache(context)
        if cache.condensed is None:
            characteristics = self.prepare(context)
            if workers > 1:
                from repro.mining.parallel import parallel_condensed_distances

                values = parallel_condensed_distances(
                    self, characteristics, workers=workers, chunk_size=chunk_size
                )
            else:
                values = np.asarray(self.condensed_distances(characteristics), dtype=float)
            cache.condensed = CondensedDistanceMatrix(values=values, n=len(characteristics))
        return cache.condensed

    def distance_matrix(
        self, context: LogContext, *, workers: int = 1, chunk_size: int | None = None
    ) -> np.ndarray:
        """The full symmetric pairwise distance matrix over the log.

        ``workers``/``chunk_size`` are forwarded to
        :meth:`condensed_distance_matrix` for multi-process computation.
        """
        return self.condensed_distance_matrix(
            context, workers=workers, chunk_size=chunk_size
        ).to_square()

    # -- pickling (worker processes) ------------------------------------------ #

    def __getstate__(self) -> dict[str, object]:
        """Pickle support for the parallel pipeline's worker processes.

        The per-context memo is keyed by object identity, which does not
        survive pickling, so it is dropped; workers receive the measure's
        configuration only.  Subclasses holding other process-local resources
        (e.g. an execution backend) extend this.
        """
        state = dict(self.__dict__)
        state.pop("_prepared", None)
        state.pop("_coordinate_cache", None)
        return state

    def distance_matrix_reference(self, context: LogContext) -> np.ndarray:
        """The seed's naive O(n²) implementation, kept as an equality oracle.

        No batching, caching or vectorization — tests and benchmarks compare
        the pipeline against this loop.
        """
        characteristics = [self.characteristic(entry.query, context) for entry in context.log]
        n = len(characteristics)
        matrix = np.zeros((n, n), dtype=float)
        for i in range(n):
            for j in range(i + 1, n):
                value = self.distance_between(characteristics[i], characteristics[j])
                matrix[i, j] = value
                matrix[j, i] = value
        return matrix

    def describe(self) -> dict[str, str]:
        """Machine-readable description (used by the Table I derivation)."""
        return {
            "name": self.name,
            "display_name": self.display_name,
            "equivalence_notion": self.equivalence_notion,
            "shared_information": self.shared_information.describe(),
        }


class JaccardSetMeasure(DistanceMeasure):
    """Base class for measures whose characteristic is a set under Jaccard.

    The vectorized fast path maps every distinct set element to a column of
    a 0/1 membership matrix ``M`` and computes all pairwise intersection
    sizes as ``M @ Mᵀ``.  Products and partial sums of 0/1 values are exact
    in float64 (integers below 2⁵³), and IEEE division is correctly rounded,
    so the result is bit-for-bit equal to the scalar
    ``1 - |A ∩ B| / |A ∪ B|``.

    Large vocabularies (e.g. result-tuple sets over a big database) are
    processed in column blocks so peak memory stays bounded at roughly
    ``_MEMBERSHIP_BLOCK_CELLS`` floats regardless of how many distinct
    elements the log produces; block-wise accumulation of ``M_b @ M_bᵀ``
    sums exact integers, so chunking never changes the result.
    """

    #: Upper bound on the cells of one membership block (~256 MB of float64).
    _MEMBERSHIP_BLOCK_CELLS = 32_000_000

    #: Jaccard distance is a metric (the Steinhaus/Marczewski–Steinhaus
    #: theorem), so triangle-inequality pruning over pivot tables is sound.
    is_metric = True

    def distance_between(self, characteristic_a: object, characteristic_b: object) -> float:
        """Jaccard distance between two characteristic sets."""
        return jaccard_distance(characteristic_a, characteristic_b)

    def _membership_coordinates(
        self, characteristics: list[object]
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Sparse (row, column) membership coordinates, sorted by column.

        Every distinct set element maps to one column of the 0/1 membership
        matrix; sorting by column once makes each column block a slice
        instead of a full mask pass per block.  The result is memoized per
        characteristics *list object* (assumed immutable once built, like
        every pipeline intermediate) so the row-block tasks a worker process
        serves against its cached list pay for the coordinate build once.
        """
        cached = getattr(self, "_coordinate_cache", None)
        if cached is not None and cached[0] is characteristics:
            return cached[1]
        vocabulary: dict[object, int] = {}
        rows: list[int] = []
        columns: list[int] = []
        for index, characteristic in enumerate(characteristics):
            for element in characteristic:
                column = vocabulary.setdefault(element, len(vocabulary))
                rows.append(index)
                columns.append(column)
        row_index = np.asarray(rows, dtype=np.int64)
        column_index = np.asarray(columns, dtype=np.int64)
        order = np.argsort(column_index, kind="stable")
        coordinates = (row_index[order], column_index[order], len(vocabulary))
        self._coordinate_cache = (characteristics, coordinates)
        return coordinates

    def _intersection_counts(
        self,
        characteristics: list[object],
        start: int,
        stop: int,
    ) -> np.ndarray:
        """Exact pairwise intersection sizes of rows ``start .. stop-1`` vs all.

        Accumulates ``M[start:stop] @ Mᵀ`` over column blocks of the 0/1
        membership matrix.  The counts are exact integers in float64, so the
        block accumulation — and any row partitioning of it — produces
        identical values to the full-matrix product.
        """
        n = len(characteristics)
        row_index, column_index, vocabulary_size = self._membership_coordinates(characteristics)
        intersections = np.zeros((stop - start, n), dtype=float)
        if vocabulary_size == 0:
            return intersections
        # A full-coverage block uses the symmetric product M @ Mᵀ (BLAS takes
        # the ~2x faster syrk path); partial blocks multiply only their rows.
        # Both produce the same exact integer counts.
        full_block = start == 0 and stop >= n - 1
        block_columns = max(1, min(vocabulary_size, self._MEMBERSHIP_BLOCK_CELLS // n))
        for block_start in range(0, vocabulary_size, block_columns):
            block_end = min(block_start + block_columns, vocabulary_size)
            low = int(np.searchsorted(column_index, block_start, side="left"))
            high = int(np.searchsorted(column_index, block_end, side="left"))
            membership = np.zeros((n, block_end - block_start), dtype=float)
            membership[row_index[low:high], column_index[low:high] - block_start] = 1.0
            if full_block:
                intersections += (membership @ membership.T)[start:stop]
            else:
                intersections += membership[start:stop] @ membership.T
        return intersections

    def condensed_distances(self, characteristics: list[object]) -> np.ndarray:
        n = len(characteristics)
        if n < 2:
            return np.zeros(0, dtype=float)
        return self.condensed_row_block(characteristics, 0, n - 1)

    def condensed_row_block(
        self, characteristics: list[object], start: int, stop: int
    ) -> np.ndarray:
        """Vectorized row block: membership matmul restricted to ``start .. stop-1``.

        Intersection and union sizes are exact integers whether computed for
        the full triangle or for a row slice, and IEEE division is correctly
        rounded, so any partitioning into row blocks concatenates to exactly
        the serial ``condensed_distances`` array.
        """
        n = len(characteristics)
        if not 0 <= start <= stop <= n:
            raise MiningError(f"row block [{start}, {stop}) out of range for {n} items")
        pairs = sum(n - 1 - i for i in range(start, stop))
        if pairs == 0:
            return np.zeros(0, dtype=float)
        intersections = self._intersection_counts(characteristics, start, stop)
        sizes = np.array([float(len(characteristic)) for characteristic in characteristics])
        unions = sizes[start:stop, np.newaxis] + sizes[np.newaxis, :] - intersections
        # Boolean-mask extraction flattens in C order: row i's entries with
        # j > i, ascending — exactly the row-major condensed layout.
        upper = np.arange(n)[np.newaxis, :] > np.arange(start, stop)[:, np.newaxis]
        intersection = intersections[upper]
        union = unions[upper]
        distances = np.zeros(pairs, dtype=float)
        nonempty = union > 0
        distances[nonempty] = 1.0 - intersection[nonempty] / union[nonempty]
        return distances


@dataclass(frozen=True)
class PreservationReport:
    """Outcome of a distance-preservation check (Definition 1)."""

    measure: str
    pairs_checked: int
    max_absolute_deviation: float
    mean_absolute_deviation: float
    violating_pairs: tuple[tuple[int, int, float, float], ...]

    @property
    def preserved(self) -> bool:
        """True if every pairwise distance matched exactly (up to 1e-9)."""
        return self.max_absolute_deviation <= 1e-9

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "PRESERVED" if self.preserved else "VIOLATED"
        return (
            f"{self.measure}: {status} over {self.pairs_checked} pairs "
            f"(max |d_plain - d_enc| = {self.max_absolute_deviation:.3g})"
        )


def _condensed_index_to_pair(position: int, n: int) -> tuple[int, int]:
    """Map a condensed (row-major upper-triangle) index back to ``(i, j)``."""
    i = 0
    offset = 0
    row_length = n - 1
    while position >= offset + row_length:
        offset += row_length
        row_length -= 1
        i += 1
    return i, i + 1 + (position - offset)


def verify_distance_preservation(
    measure: DistanceMeasure,
    plain_context: LogContext,
    encrypted_context: LogContext,
    *,
    max_violations_reported: int = 10,
) -> PreservationReport:
    """Check Definition 1 for ``measure`` over a plain/encrypted context pair.

    The two contexts must contain the same number of log entries, with entry
    ``i`` of the encrypted context being the encryption of entry ``i`` of the
    plaintext context.  The check runs on the condensed (upper-triangle)
    distances of the shared pipeline, so repeated verification and subsequent
    mining reuse the same cached characteristics.
    """
    if len(plain_context) != len(encrypted_context):
        raise DpeError(
            "plaintext and encrypted logs differ in length "
            f"({len(plain_context)} vs {len(encrypted_context)})"
        )
    n = len(plain_context)
    plain = measure.condensed_distance_matrix(plain_context).values
    encrypted = measure.condensed_distance_matrix(encrypted_context).values
    deviations = np.abs(plain - encrypted)
    pairs = int(deviations.size)
    violations: list[tuple[int, int, float, float]] = []
    for position in np.flatnonzero(deviations > 1e-9)[:max_violations_reported]:
        i, j = _condensed_index_to_pair(int(position), n)
        violations.append((i, j, float(plain[position]), float(encrypted[position])))
    return PreservationReport(
        measure=measure.name,
        pairs_checked=pairs,
        max_absolute_deviation=float(deviations.max()) if pairs else 0.0,
        mean_absolute_deviation=float(deviations.mean()) if pairs else 0.0,
        violating_pairs=tuple(violations),
    )
