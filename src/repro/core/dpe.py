"""Distance-preserving encryption: Definition 1 and the measure interface.

The paper's central definition (Definition 1): an encryption ``Enc`` for data
items of a data set ``D`` is *d-distance preserving* iff::

    for all x, y in D:   d(Enc(x), Enc(y)) = d(x, y)

Two pieces make this executable:

* :class:`DistanceMeasure` — a distance measure ``d`` over query-log entries.
  Every measure factors through a per-item *characteristic* ``c`` (the
  paper's Definition 2): ``prepare`` computes ``c(x)`` for every log entry
  and ``distance_between`` compares two characteristics.  This factoring is
  exactly what lets the paper reason item-wise about encryption.
* :func:`verify_distance_preservation` — computes the full pairwise distance
  matrices on a plaintext and an encrypted :class:`LogContext` and reports
  the maximum absolute deviation (which must be 0 for a DPE scheme).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.core.domains import DomainCatalog
from repro.db.database import Database
from repro.exceptions import DpeError
from repro.sql.ast import Query
from repro.sql.log import QueryLog


@dataclass(frozen=True)
class SharedInformation:
    """What the data owner must share with the service provider (Table I).

    Every measure needs the (encrypted) log; the query-result distance also
    needs the database content, and the query-access-area distance needs the
    attribute domains.
    """

    log: bool = True
    db_content: bool = False
    domains: bool = False

    def describe(self) -> str:
        """Human-readable summary, matching the check marks of Table I."""
        parts = []
        if self.log:
            parts.append("Log")
        if self.db_content:
            parts.append("DB-Content")
        if self.domains:
            parts.append("Domains")
        return " + ".join(parts) if parts else "nothing"


@dataclass
class LogContext:
    """A query log together with the side information a measure may need."""

    log: QueryLog
    database: Database | None = None
    domains: DomainCatalog | None = None
    #: Free-form metadata (e.g. whether this context is the encrypted side).
    labels: dict[str, object] = field(default_factory=dict)

    def require_database(self) -> Database:
        """Return the database or raise if it was not shared."""
        if self.database is None:
            raise DpeError("this distance measure requires the database content to be shared")
        return self.database

    def require_domains(self) -> DomainCatalog:
        """Return the domain catalog or raise if it was not shared."""
        if self.domains is None:
            raise DpeError("this distance measure requires the attribute domains to be shared")
        return self.domains

    def __len__(self) -> int:
        return len(self.log)


class DistanceMeasure(abc.ABC):
    """A distance measure over SQL queries, factored through a characteristic."""

    #: Short machine-readable identifier, e.g. ``"token"``.
    name: str = "abstract"
    #: Human-readable name as used in Table I.
    display_name: str = "abstract distance"
    #: Name of the equivalence notion this measure induces (Table I column).
    equivalence_notion: str = "abstract equivalence"
    #: What must be shared with the provider to evaluate the measure.
    shared_information: SharedInformation = SharedInformation()

    @abc.abstractmethod
    def characteristic(self, query: Query, context: LogContext) -> object:
        """Compute the characteristic ``c(query)`` (Definition 2) in ``context``."""

    @abc.abstractmethod
    def distance_between(self, characteristic_a: object, characteristic_b: object) -> float:
        """Distance between two characteristics; must be symmetric and in [0, 1]."""

    # -- derived functionality ------------------------------------------------ #

    def prepare(self, context: LogContext) -> list[object]:
        """Compute the characteristic of every log entry in ``context``."""
        return [self.characteristic(entry.query, context) for entry in context.log]

    def distance(self, query_a: Query, query_b: Query, context: LogContext) -> float:
        """Distance between two individual queries evaluated in ``context``."""
        return self.distance_between(
            self.characteristic(query_a, context), self.characteristic(query_b, context)
        )

    def distance_matrix(self, context: LogContext) -> np.ndarray:
        """The full symmetric pairwise distance matrix over the log."""
        characteristics = self.prepare(context)
        n = len(characteristics)
        matrix = np.zeros((n, n), dtype=float)
        for i in range(n):
            for j in range(i + 1, n):
                value = self.distance_between(characteristics[i], characteristics[j])
                matrix[i, j] = value
                matrix[j, i] = value
        return matrix

    def describe(self) -> dict[str, str]:
        """Machine-readable description (used by the Table I derivation)."""
        return {
            "name": self.name,
            "display_name": self.display_name,
            "equivalence_notion": self.equivalence_notion,
            "shared_information": self.shared_information.describe(),
        }


@dataclass(frozen=True)
class PreservationReport:
    """Outcome of a distance-preservation check (Definition 1)."""

    measure: str
    pairs_checked: int
    max_absolute_deviation: float
    mean_absolute_deviation: float
    violating_pairs: tuple[tuple[int, int, float, float], ...]

    @property
    def preserved(self) -> bool:
        """True if every pairwise distance matched exactly (up to 1e-9)."""
        return self.max_absolute_deviation <= 1e-9

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "PRESERVED" if self.preserved else "VIOLATED"
        return (
            f"{self.measure}: {status} over {self.pairs_checked} pairs "
            f"(max |d_plain - d_enc| = {self.max_absolute_deviation:.3g})"
        )


def verify_distance_preservation(
    measure: DistanceMeasure,
    plain_context: LogContext,
    encrypted_context: LogContext,
    *,
    max_violations_reported: int = 10,
) -> PreservationReport:
    """Check Definition 1 for ``measure`` over a plain/encrypted context pair.

    The two contexts must contain the same number of log entries, with entry
    ``i`` of the encrypted context being the encryption of entry ``i`` of the
    plaintext context.
    """
    if len(plain_context) != len(encrypted_context):
        raise DpeError(
            "plaintext and encrypted logs differ in length "
            f"({len(plain_context)} vs {len(encrypted_context)})"
        )
    plain_matrix = measure.distance_matrix(plain_context)
    encrypted_matrix = measure.distance_matrix(encrypted_context)
    deviations = np.abs(plain_matrix - encrypted_matrix)
    n = len(plain_context)
    violations: list[tuple[int, int, float, float]] = []
    total = 0.0
    pairs = 0
    for i in range(n):
        for j in range(i + 1, n):
            pairs += 1
            total += deviations[i, j]
            if deviations[i, j] > 1e-9 and len(violations) < max_violations_reported:
                violations.append((i, j, float(plain_matrix[i, j]), float(encrypted_matrix[i, j])))
    return PreservationReport(
        measure=measure.name,
        pairs_checked=pairs,
        max_absolute_deviation=float(deviations.max()) if n > 1 else 0.0,
        mean_absolute_deviation=float(total / pairs) if pairs else 0.0,
        violating_pairs=tuple(violations),
    )
