"""Exception hierarchy shared across the ``repro`` package.

Every subsystem raises exceptions rooted at :class:`ReproError` so that
callers embedding the library can catch a single base class.  Subsystems
define more specific subclasses (for instance the SQL parser raises
:class:`SqlSyntaxError`), which keeps error handling explicit without
forcing users to import from deep module paths.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SqlError(ReproError):
    """Base class for errors raised by the SQL subsystem (``repro.sql``)."""


class SqlSyntaxError(SqlError):
    """Raised when a query string cannot be tokenized or parsed.

    Attributes
    ----------
    message:
        Human readable description of the problem.
    position:
        Character offset into the query string at which the problem was
        detected, or ``None`` when not applicable.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.position = position

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.position is None:
            return self.message
        return f"{self.message} (at position {self.position})"


class DatabaseError(ReproError):
    """Base class for errors raised by the relational engine (``repro.db``)."""


class SchemaError(DatabaseError):
    """Raised for schema violations: unknown tables, columns, type clashes."""


class ExecutionError(DatabaseError):
    """Raised when a query cannot be evaluated against a database instance."""


class CryptoError(ReproError):
    """Base class for errors raised by the encryption layer (``repro.crypto``)."""


class KeyError_(CryptoError):
    """Raised when a key is missing, malformed or of the wrong length.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`KeyError`.
    """


class EncryptionError(CryptoError):
    """Raised when a value cannot be encrypted under the selected scheme."""


class DecryptionError(CryptoError):
    """Raised when a ciphertext cannot be decrypted (corruption, wrong key)."""


class IntegrityError(CryptoError):
    """Raised when stored ciphertexts or a query log fail authentication.

    Covers every tamper class the integrity layer detects: flipped
    ciphertext bytes, swapped rows, replayed stale snapshots, and
    rolled-back (truncated) provider logs.
    """


class TaxonomyError(CryptoError):
    """Raised for inconsistent encryption-class taxonomy definitions."""


class CryptDbError(ReproError):
    """Base class for errors raised by the CryptDB-style layer (``repro.cryptdb``)."""


class OnionError(CryptDbError):
    """Raised when an onion layer is missing or cannot be peeled/adjusted."""


class RewriteError(CryptDbError):
    """Raised when a query cannot be rewritten into the encrypted space."""


class DpeError(ReproError):
    """Base class for errors raised by the DPE core (``repro.core``)."""


class EquivalenceViolation(DpeError):
    """Raised when an encryption scheme violates a required c-equivalence."""


class PreservationViolation(DpeError):
    """Raised when distance preservation (Definition 1) is violated."""


class SecurityModelError(DpeError):
    """Raised for inconsistent security-model specifications."""


class MiningError(ReproError):
    """Base class for errors raised by the mining subsystem (``repro.mining``)."""


class WorkloadError(ReproError):
    """Base class for errors raised by the workload generators (``repro.workloads``)."""


class AttackError(ReproError):
    """Base class for errors raised by the attack simulations (``repro.attacks``)."""


class ReliabilityError(ReproError):
    """Base class for errors raised by the fault-tolerance layer (``repro.reliability``)."""


class TransientError(ReliabilityError):
    """A failure that is safe to retry: the operation may succeed if repeated.

    The retry layer (:class:`repro.reliability.RetryPolicy`) retries only
    errors classified as transient — instances of this class plus the
    standard-library transients (:class:`TimeoutError`,
    :class:`ConnectionError`, :class:`InterruptedError`).  Everything else
    is treated as permanent and propagates on the first attempt.
    """


class InjectedFault(TransientError):
    """A transient fault raised by the deterministic :class:`FaultInjector`.

    Attributes
    ----------
    site:
        The fault site (for instance ``"backend.execute"``) the injector
        fired at.
    call:
        The 1-based call number at that site when the fault fired.
    """

    def __init__(self, message: str, *, site: str = "", call: int = 0) -> None:
        super().__init__(message)
        self.site = site
        self.call = call


class WorkerCrashed(ReliabilityError):
    """A worker thread was killed mid-task by the fault injector.

    Deliberately *not* transient: a crash models the process dying, so the
    retry layer must not paper over it — recovery goes through the
    streaming journal (:func:`repro.reliability.recover_matrix`) instead.
    """

    def __init__(self, message: str, *, site: str = "", call: int = 0) -> None:
        super().__init__(message)
        self.site = site
        self.call = call


class JournalError(ReliabilityError):
    """Raised when a streaming journal is unreadable or fails verification.

    Covers structurally corrupt journal files (beyond the tolerated torn
    final line) and hash-chain mismatches between the journaled entries and
    the per-batch heads recorded alongside them.
    """


class AnalysisError(ReproError):
    """Base class for errors raised by the analysis harness (``repro.analysis``)."""
