"""The sorting (rank-matching) attack against order-preserving encryption.

OPE reveals the order of plaintexts.  An attacker who knows (a sample of) the
plaintext distribution sorts both the observed ciphertexts and the auxiliary
plaintexts and matches them by relative rank (quantile).  For dense domains
this recovers most values — the reason OPE sits on the lowest security level
of Figure 1, and the reason the access-area scheme only uses OPE where order
is functionally required.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import AttackError


@dataclass(frozen=True)
class SortingAttackResult:
    """Outcome of a sorting attack."""

    guesses: dict[object, object]
    correct: int
    total: int
    mean_absolute_error: float

    @property
    def recovery_rate(self) -> float:
        """Fraction of ciphertext occurrences recovered exactly."""
        if self.total == 0:
            return 0.0
        return self.correct / self.total


def sorting_attack(
    ciphertexts: Sequence[int],
    auxiliary_plaintexts: Sequence[float],
    *,
    ground_truth: Sequence[float] | None = None,
) -> SortingAttackResult:
    """Match OPE ciphertexts to plaintext values by relative rank.

    The i-th smallest distinct ciphertext is guessed to be the value at the
    same quantile of the sorted auxiliary sample.  The threat model is an
    honest-but-curious provider (or eavesdropper) who sees every ORD-onion
    ciphertext and knows the plaintext *distribution* but not the values: no
    keys, no chosen plaintexts.  Recovery is strongest when the auxiliary
    sample is drawn from the same distribution as the data and the domain is
    dense (every quantile is populated); sparse or skewed domains push the
    quantile guess off by whole ranks, which the
    :attr:`~SortingAttackResult.mean_absolute_error` quantifies.

    ``ground_truth`` (the real plaintexts, aligned with ``ciphertexts``) is
    only used to *score* the attack — the attack itself never touches it.
    Without it the result carries the guesses with zero score.  For
    non-numeric values the absolute error degrades to 0/1 (exact/wrong),
    keeping the metric defined on mixed-type columns.
    """
    if not ciphertexts:
        raise AttackError("cannot attack an empty ciphertext sequence")
    if not auxiliary_plaintexts:
        raise AttackError("the sorting attack needs an auxiliary plaintext sample")
    if ground_truth is not None and len(ground_truth) != len(ciphertexts):
        raise AttackError("ground truth must align with the ciphertext sequence")

    distinct_ciphertexts = sorted(set(ciphertexts))
    sorted_plain = sorted(auxiliary_plaintexts)
    guesses: dict[object, object] = {}
    denominator = max(1, len(distinct_ciphertexts) - 1)
    for rank, ciphertext in enumerate(distinct_ciphertexts):
        quantile = rank / denominator
        plain_index = round(quantile * (len(sorted_plain) - 1))
        guesses[ciphertext] = sorted_plain[plain_index]

    correct = 0
    absolute_error = 0.0
    total = len(ciphertexts)
    if ground_truth is not None:
        for ciphertext, truth in zip(ciphertexts, ground_truth):
            guess = guesses[ciphertext]
            if guess == truth:
                correct += 1
            try:
                absolute_error += abs(float(guess) - float(truth))
            except (TypeError, ValueError):
                absolute_error += 0.0 if guess == truth else 1.0
    mean_error = absolute_error / total if ground_truth is not None and total else 0.0
    return SortingAttackResult(
        guesses=guesses, correct=correct, total=total, mean_absolute_error=mean_error
    )
