"""Frequency analysis against deterministic encryption.

Deterministic encryption leaks the frequency histogram of the plaintexts.  An
attacker with auxiliary knowledge of the plaintext distribution (for example,
public census data about city names, or last year's unencrypted log) matches
ciphertexts to plaintexts by frequency rank.  This is the textbook attack
that separates the DET row of Figure 1 from the PROB row: against PROB
ciphertexts every ciphertext is unique and the attack degrades to guessing.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import AttackError


@dataclass(frozen=True)
class FrequencyAttackResult:
    """Outcome of a frequency-analysis attack."""

    guesses: dict[object, object]
    correct: int
    total: int

    @property
    def recovery_rate(self) -> float:
        """Fraction of ciphertext occurrences whose plaintext was recovered."""
        if self.total == 0:
            return 0.0
        return self.correct / self.total


def frequency_analysis_attack(
    ciphertexts: Sequence[object],
    auxiliary_plaintexts: Sequence[object],
    *,
    ground_truth: Sequence[object] | None = None,
) -> FrequencyAttackResult:
    """Match ciphertexts to plaintexts by frequency rank.

    Parameters
    ----------
    ciphertexts:
        The encrypted column / token occurrences visible to the attacker.
    auxiliary_plaintexts:
        A sample from the plaintext distribution the attacker knows
        (does not have to be the exact plaintexts).
    ground_truth:
        The true plaintexts corresponding to ``ciphertexts`` (same order).
        When given, the recovery rate is computed; otherwise only the guess
        mapping is returned.

    Ranking uses ``Counter.most_common``, whose ties break by first
    occurrence — deterministic for a fixed input order, which keeps the
    recovery rates of experiments S1/A1 reproducible.  Ciphertexts beyond
    the auxiliary sample's distinct-value count receive no guess and score
    as misses: an attacker cannot name a value they have never seen.  The
    mapping is frequency-rank to frequency-rank, so the attack's power
    degrades exactly as the plaintext histogram flattens — the uniform-
    histogram limit is 1/distinct guessing, the PROB baseline of Figure 1.
    """
    if not ciphertexts:
        raise AttackError("cannot attack an empty ciphertext sequence")
    if ground_truth is not None and len(ground_truth) != len(ciphertexts):
        raise AttackError("ground truth must align with the ciphertext sequence")

    cipher_ranked = [value for value, _ in Counter(ciphertexts).most_common()]
    plain_ranked = [value for value, _ in Counter(auxiliary_plaintexts).most_common()]

    guesses: dict[object, object] = {}
    for rank, ciphertext in enumerate(cipher_ranked):
        if rank < len(plain_ranked):
            guesses[ciphertext] = plain_ranked[rank]

    correct = 0
    total = len(ciphertexts)
    if ground_truth is not None:
        for ciphertext, truth in zip(ciphertexts, ground_truth):
            if guesses.get(ciphertext) == truth:
                correct += 1
    return FrequencyAttackResult(guesses=guesses, correct=correct, total=total)
