"""An actively malicious provider: tampering with storage and logs.

The passive attacks in this package model an honest-but-curious provider;
this module models one that *modifies* what it stores.  The malleable
onions make this dangerous: OPE and HOM ciphertexts are bare integers, so a
provider can flip bits, swap rows between customers, replay last month's
prices or silently truncate the query log — and, without the integrity
layer, every such edit decrypts to a plausible wrong answer.

Four tamper primitives cover the threat classes the integrity layer
(:mod:`repro.crypto.integrity`) must catch:

* :func:`flip_ciphertext` — flip a bit of one stored ciphertext cell
  (the classic malleability attack on OPE/HOM integers);
* :func:`swap_rows` — exchange two whole stored rows (reordering attack);
* :func:`capture_rows` / :func:`replay_rows` — snapshot a table and later
  restore the stale state (replay / rollback of storage);
* :func:`rollback_log` — truncate a streamed query log's suffix and
  *recompute the unkeyed hash chain* to match, modelling a capable
  adversary who can rebuild everything that is not protected by a key.

All primitives work uniformly against both execution backends: the
in-memory interpreter (rows edited in place) and the SQLite backend
(``UPDATE ... WHERE rowid``).  They deliberately reach into backend
internals — that is the point: the adversary *is* the provider and owns
the storage.  Each returns a :class:`TamperResult` describing the edit so
experiment S2 can report detection per tamper class.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.crypto.integrity import GENESIS_HEAD, LogHashChain
from repro.db.backend import ExecutionBackend
from repro.db.sqlite_backend import decode_sql_value, encode_sql_value
from repro.db.table import Row
from repro.exceptions import AttackError
from repro.mining.incremental import StreamingQueryLog
from repro.sql.render import quote_identifier


@dataclass(frozen=True)
class TamperResult:
    """What one tamper primitive did to the provider's storage or log.

    ``operation`` names the tamper class (``"flip"``, ``"swap"``,
    ``"replay"``, ``"rollback"``), ``target`` the encrypted table (or
    ``"log"``), ``detail`` a human-readable description of the edit and
    ``cells_changed`` how many stored cells (or log entries) the edit
    touched — zero means the tamper was a no-op (e.g. replaying an
    unchanged snapshot) and detection is *not* expected.
    """

    operation: str
    target: str
    detail: str
    cells_changed: int


def storage_backend(session: object) -> ExecutionBackend:
    """Unwrap a session object to the execution backend it runs against.

    Accepts a :class:`~repro.api.ServiceSession`, a
    :class:`~repro.cryptdb.proxy.ProxySession`, or a bare
    :class:`~repro.db.backend.ExecutionBackend`; this is where the
    adversary "becomes" the provider.  Anything else raises
    :class:`~repro.exceptions.AttackError`.
    """
    candidate = session
    inner = getattr(candidate, "_session", None)
    if inner is not None:  # ServiceSession wraps a ProxySession
        candidate = inner
    backend = getattr(candidate, "backend", None)
    if backend is not None:  # ProxySession exposes its backend
        candidate = backend
    if hasattr(candidate, "execute") and hasattr(candidate, "database"):
        return candidate  # type: ignore[return-value]
    raise AttackError(
        f"cannot find an execution backend inside {type(session).__name__}"
    )


def _is_sqlite(backend: ExecutionBackend) -> bool:
    return getattr(backend, "name", "") == "sqlite" and hasattr(backend, "_connection")


def read_stored_rows(
    backend: ExecutionBackend, table: str
) -> list[dict[str, object]]:
    """The provider's view of one stored (encrypted) table, in row order.

    Reads the backend's *actual* storage — the interpreter's row list or
    the SQLite pages — not the Python-side snapshot, so edits made by the
    other primitives are visible here.
    """
    if _is_sqlite(backend):
        connection = backend._connection  # noqa: SLF001 - the adversary owns storage
        cursor = connection.execute(
            f"SELECT * FROM {quote_identifier(table)} ORDER BY rowid"
        )
        names = [entry[0] for entry in cursor.description]
        return [
            {name: decode_sql_value(value) for name, value in zip(names, row)}
            for row in cursor.fetchall()
        ]
    stored = backend.database.table(table)
    return [dict(row.as_dict()) for row in stored.rows]


def _write_cell(
    backend: ExecutionBackend, table: str, row_index: int, column: str, value: object
) -> None:
    """Overwrite one stored cell in either backend's storage."""
    if _is_sqlite(backend):
        connection = backend._connection  # noqa: SLF001 - the adversary owns storage
        connection.execute(
            f"UPDATE {quote_identifier(table)} SET {quote_identifier(column)} = ? "
            "WHERE rowid = ?",
            (encode_sql_value(value), row_index + 1),
        )
        connection.commit()
        return
    stored = backend.database.table(table)
    rows = stored._rows  # noqa: SLF001 - the adversary owns storage
    edited = dict(rows[row_index].as_dict())
    edited[column] = value
    rows[row_index] = Row(edited)
    # The interpreter memoizes FROM/JOIN row scopes per snapshot; a real
    # provider serves the tampered bytes, so the edit must reach future
    # reads rather than hide behind the cache.
    executor = getattr(backend, "_executor", None)
    cache = getattr(executor, "_from_cache", None)
    if cache:
        cache.clear()


def _flipped(value: object) -> object:
    """A value one bit away from ``value`` (the malleability edit)."""
    if isinstance(value, bool):
        raise AttackError("stored ciphertexts are never booleans")
    if isinstance(value, int):
        return value ^ 1
    if isinstance(value, str):
        if not value:
            raise AttackError("cannot flip a bit of an empty ciphertext")
        return value[:-1] + chr(ord(value[-1]) ^ 1)
    raise AttackError(
        f"cannot flip a bit of a {type(value).__name__} ciphertext"
    )


def flip_ciphertext(
    backend: ExecutionBackend, table: str, column: str, *, row: int = 0
) -> TamperResult:
    """Flip one bit of the ciphertext stored at (``row``, ``column``).

    ``table`` and ``column`` name the *encrypted* (physical) table and
    column as the provider sees them — e.g. the ``_ord`` or ``_hom``
    companion columns, whose bare-integer ciphertexts are the malleable
    targets.  Out-of-range rows and unknown columns raise
    :class:`~repro.exceptions.AttackError`.
    """
    rows = read_stored_rows(backend, table)
    if not 0 <= row < len(rows):
        raise AttackError(f"table {table!r} has {len(rows)} rows, no row {row}")
    if column not in rows[row]:
        raise AttackError(f"table {table!r} has no column {column!r}")
    original = rows[row][column]
    _write_cell(backend, table, row, column, _flipped(original))
    return TamperResult(
        operation="flip",
        target=table,
        detail=f"flipped one bit of {table}.{column} in row {row}",
        cells_changed=1,
    )


def swap_rows(
    backend: ExecutionBackend, table: str, *, row_a: int = 0, row_b: int = 1
) -> TamperResult:
    """Exchange two whole stored rows of an encrypted table.

    Every cell stays a valid ciphertext of *some* row, so per-value
    authentication alone cannot catch this — only tags bound to the row
    index (the storage audit's row tags) can.
    """
    rows = read_stored_rows(backend, table)
    for index in (row_a, row_b):
        if not 0 <= index < len(rows):
            raise AttackError(f"table {table!r} has {len(rows)} rows, no row {index}")
    if row_a == row_b:
        raise AttackError("swapping a row with itself changes nothing")
    changed = 0
    for column in rows[row_a]:
        if rows[row_a][column] == rows[row_b][column]:
            continue
        _write_cell(backend, table, row_a, column, rows[row_b][column])
        _write_cell(backend, table, row_b, column, rows[row_a][column])
        changed += 2
    return TamperResult(
        operation="swap",
        target=table,
        detail=f"swapped rows {row_a} and {row_b} of {table}",
        cells_changed=changed,
    )


def capture_rows(
    backend: ExecutionBackend, table: str
) -> tuple[dict[str, object], ...]:
    """Snapshot a stored table for a later :func:`replay_rows`.

    The returned snapshot is position-preserving plain data, independent of
    the backend's storage, so it survives the owner re-encrypting the
    database in between.
    """
    return tuple(read_stored_rows(backend, table))


def replay_rows(
    backend: ExecutionBackend, table: str, snapshot: Sequence[dict[str, object]]
) -> TamperResult:
    """Overwrite a stored table with a previously captured stale snapshot.

    Models the replay / storage-rollback attack: every restored cell is a
    *genuine* ciphertext the owner once produced, just from an outdated
    snapshot — which is exactly why the row tags bind the snapshot version.
    The table must still have the snapshot's row count (the provider cannot
    resize the owner's tables without being caught by the audit's row
    count check anyway).
    """
    rows = read_stored_rows(backend, table)
    if len(rows) != len(snapshot):
        raise AttackError(
            f"snapshot holds {len(snapshot)} rows but {table!r} now has {len(rows)}"
        )
    changed = 0
    for index, (current, stale) in enumerate(zip(rows, snapshot)):
        for column, value in stale.items():
            if column not in current:
                raise AttackError(
                    f"snapshot column {column!r} does not exist in {table!r}"
                )
            if current[column] == value:
                continue
            _write_cell(backend, table, index, column, value)
            changed += 1
    return TamperResult(
        operation="replay",
        target=table,
        detail=f"replayed a stale {len(snapshot)}-row snapshot of {table}",
        cells_changed=changed,
    )


def rollback_log(log: StreamingQueryLog, keep: int) -> TamperResult:
    """Truncate a streamed query log to its first ``keep`` entries.

    Models a provider rolling the log back to an earlier state — and doing
    it *competently*: the unkeyed hash chain is recomputed (or rewound, for
    the sliding-window log's recorded heads) so the log looks internally
    consistent.  What the adversary cannot rebuild is the owner's signed
    :class:`~repro.crypto.integrity.ChainCheckpoint`, which is why
    ``verify_chain`` still catches the rollback.
    """
    # The rollback happens under the log's own lock: the scenario tampers a
    # *live* log with streaming readers attached, and an unsynchronized
    # rewrite could tear the chain state mid-extend — corrupting the very
    # evidence the experiment measures detection of.
    with log.lock:
        entries = log._entries  # noqa: SLF001 - the adversary owns the log
        if not 0 <= keep <= len(entries):
            raise AttackError(
                f"cannot keep {keep} of {len(entries)} log entries"
            )
        dropped = len(entries) - keep
        del entries[keep:]
        chain_heads = getattr(log, "_chain_heads", None)
        if chain_heads is not None:
            # Sliding-window log: rewind the recorded per-ingest heads and the
            # chain state; eviction bookkeeping (ids) must shrink in step.
            del chain_heads[len(chain_heads) - dropped :]
            ids = getattr(log, "_ids", None)
            if ids is not None:
                del ids[keep:]
            log._chain._length -= dropped  # noqa: SLF001
            log._chain._head = chain_heads[-1] if chain_heads else GENESIS_HEAD  # noqa: SLF001
        else:
            # Base streaming log: recompute the unkeyed chain from scratch over
            # the surviving entries.
            rebuilt = LogHashChain()
            for entry in entries:
                rebuilt.extend(entry.sql)
            log._chain = rebuilt  # noqa: SLF001
    return TamperResult(
        operation="rollback",
        target="log",
        detail=f"rolled the log back from {keep + dropped} to {keep} entries",
        cells_changed=dropped,
    )


__all__ = [
    "TamperResult",
    "capture_rows",
    "flip_ciphertext",
    "read_stored_rows",
    "replay_rows",
    "rollback_log",
    "storage_backend",
    "swap_rows",
]
