"""Passive attacks against property-preserving encryption.

Figure 1 ranks encryption classes by security, and Section IV-D argues the
KIT-DPE schemes inherit the (known) security of the classes they use.  This
package makes those claims measurable by implementing the classic passive
attacks an honest-but-curious service provider (or an eavesdropper) could
run:

* :mod:`~repro.attacks.frequency` — frequency analysis against DET
  ciphertexts (and, as a baseline, against PROB ciphertexts, where it
  degrades to random guessing),
* :mod:`~repro.attacks.order` — the sorting/rank-matching attack against OPE
  ciphertexts,
* :mod:`~repro.attacks.query_only` — the query-only attack of Sanamrad &
  Kossmann [9] against an encrypted query log: recover constants from the
  log using auxiliary knowledge of the value distribution,
* :mod:`~repro.attacks.tamper` — an *actively malicious* provider that
  edits what it stores: flipping ciphertext bits, swapping rows, replaying
  stale snapshots and rolling back streamed query logs.

The attack success rates back the security comparison of experiment S1;
the tamper primitives drive the integrity experiment S2 and the
fault-injection test harness in ``tests/integrity``.
"""

from repro.attacks.frequency import FrequencyAttackResult, frequency_analysis_attack
from repro.attacks.order import SortingAttackResult, sorting_attack
from repro.attacks.query_only import QueryOnlyAttackResult, query_only_attack
from repro.attacks.tamper import (
    TamperResult,
    capture_rows,
    flip_ciphertext,
    read_stored_rows,
    replay_rows,
    rollback_log,
    storage_backend,
    swap_rows,
)

__all__ = [
    "FrequencyAttackResult",
    "QueryOnlyAttackResult",
    "SortingAttackResult",
    "TamperResult",
    "capture_rows",
    "flip_ciphertext",
    "frequency_analysis_attack",
    "query_only_attack",
    "read_stored_rows",
    "replay_rows",
    "rollback_log",
    "sorting_attack",
    "storage_backend",
    "swap_rows",
]
