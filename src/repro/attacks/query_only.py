"""The query-only attack on encrypted query logs (Sanamrad & Kossmann [9]).

Example 3 of the paper: in a *query-only attack* the adversary sees only the
encrypted query log and tries to infer the plaintext constants (and names)
of the queries.  We instantiate the attack as frequency analysis over the
constants extracted from the encrypted log, per attribute position, using an
auxiliary sample of the plaintext constant distribution (e.g. last year's
log, or public knowledge about popular filter values).

Running this attack against logs produced by the different DPE schemes makes
the security ordering concrete:

* token scheme (DET constants) — constants with skewed frequencies are
  recovered at a substantial rate;
* structure scheme (PROB constants) — every ciphertext is unique, the attack
  collapses to guessing;
* access-area scheme — equality constants of DET-encrypted attributes behave
  like the token scheme, OPE-encrypted range constants are additionally
  vulnerable to the sorting attack, and aggregate-only attributes are as safe
  as under PROB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.frequency import frequency_analysis_attack
from repro.exceptions import AttackError
from repro.sql.ast import Literal
from repro.sql.log import QueryLog
from repro.sql.visitor import literals


@dataclass(frozen=True)
class QueryOnlyAttackResult:
    """Outcome of a query-only attack against an encrypted log."""

    constants_seen: int
    distinct_ciphertexts: int
    correct: int

    @property
    def recovery_rate(self) -> float:
        """Fraction of constant occurrences recovered exactly."""
        if self.constants_seen == 0:
            return 0.0
        return self.correct / self.constants_seen


def extract_constants(log: QueryLog) -> list[object]:
    """All constant occurrences in a log, in deterministic (query, position) order."""
    values: list[object] = []
    for entry in log:
        for literal in literals(entry.query):
            if isinstance(literal, Literal) and literal.value is not None:
                if not isinstance(literal.value, bool):
                    values.append(literal.value)
    return values


def query_only_attack(
    encrypted_log: QueryLog,
    auxiliary_constants: list[object],
    *,
    plaintext_log: QueryLog,
) -> QueryOnlyAttackResult:
    """Attack the constants of ``encrypted_log`` with frequency analysis.

    ``plaintext_log`` provides the ground truth (the attacker does not have
    it; it is only used to score the attack).  ``auxiliary_constants`` is the
    attacker's knowledge of the plaintext constant distribution.

    The two logs must correspond entry-wise — ``encrypted_log`` is the DPE
    encryption of ``plaintext_log``, so both expose the same number of
    constant occurrences in the same (query, position) order; a mismatch
    means the logs are unrelated and the attack refuses to score rather
    than report a meaningless rate.  ``distinct_ciphertexts`` in the result
    is the attacker's view of the ciphertext space: equal to
    ``constants_seen`` under PROB encryption (nothing repeats, frequency
    analysis collapses to guessing) and far smaller under DET encryption
    (the frequency histogram leaks) — experiment A1's distinct-ratio column
    is exactly this quotient.
    """
    encrypted_constants = extract_constants(encrypted_log)
    plaintext_constants = extract_constants(plaintext_log)
    if len(encrypted_constants) != len(plaintext_constants):
        raise AttackError(
            "encrypted and plaintext logs expose different numbers of constants; "
            "they do not correspond to each other"
        )
    if not encrypted_constants:
        return QueryOnlyAttackResult(constants_seen=0, distinct_ciphertexts=0, correct=0)
    result = frequency_analysis_attack(
        encrypted_constants, auxiliary_constants, ground_truth=plaintext_constants
    )
    return QueryOnlyAttackResult(
        constants_seen=len(encrypted_constants),
        distinct_ciphertexts=len(set(map(repr, encrypted_constants))),
        correct=result.correct,
    )
