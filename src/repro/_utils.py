"""Small shared helpers used across subsystems.

The helpers here are intentionally dependency-free (standard library only) so
that any subpackage can import them without creating import cycles.
"""

from __future__ import annotations

import hashlib
import math
import random
from collections.abc import Iterable, Iterator, Sequence
from typing import TypeVar

T = TypeVar("T")


def stable_hash(data: bytes | str, *, digest_size: int = 16) -> bytes:
    """Return a stable (run-independent) hash of ``data``.

    Python's built-in :func:`hash` is randomized per process for strings, so
    anything that must be reproducible across runs (test fixtures, synthetic
    data generation, deterministic key derivation for non-secret purposes)
    goes through BLAKE2b instead.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.blake2b(data, digest_size=digest_size).digest()


def stable_hash_int(data: bytes | str, *, bits: int = 64) -> int:
    """Return :func:`stable_hash` interpreted as an unsigned integer."""
    nbytes = (bits + 7) // 8
    return int.from_bytes(stable_hash(data, digest_size=nbytes), "big")


def int_to_bytes(value: int) -> bytes:
    """Encode a non-negative integer as a minimal-length big-endian byte string."""
    if value < 0:
        raise ValueError("int_to_bytes only supports non-negative integers")
    length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Decode a big-endian byte string into a non-negative integer."""
    return int.from_bytes(data, "big")


def chunks(items: Sequence[T], size: int) -> Iterator[Sequence[T]]:
    """Yield successive chunks of ``items`` with at most ``size`` elements."""
    if size <= 0:
        raise ValueError("chunk size must be positive")
    for start in range(0, len(items), size):
        yield items[start : start + size]


def pairwise_indices(n: int) -> Iterator[tuple[int, int]]:
    """Yield all index pairs ``(i, j)`` with ``i < j < n``."""
    for i in range(n):
        for j in range(i + 1, n):
            yield i, j


def jaccard_distance(a: Iterable[T], b: Iterable[T]) -> float:
    """Return the Jaccard distance ``1 - |A ∩ B| / |A ∪ B|`` between two sets.

    Two empty sets are defined to have distance 0 (they are identical).
    """
    set_a, set_b = set(a), set(b)
    union = set_a | set_b
    if not union:
        return 0.0
    return 1.0 - len(set_a & set_b) / len(union)


def is_close(a: float, b: float, *, tol: float = 1e-12) -> bool:
    """Symmetric absolute/relative closeness check used in preservation tests."""
    return math.isclose(a, b, rel_tol=tol, abs_tol=tol)


def deterministic_rng(seed: int | str | bytes) -> random.Random:
    """Create a :class:`random.Random` seeded deterministically from ``seed``.

    String and byte seeds are routed through :func:`stable_hash_int` so that
    the same label always yields the same stream, independent of
    ``PYTHONHASHSEED``.
    """
    if isinstance(seed, (str, bytes)):
        seed = stable_hash_int(seed)
    return random.Random(seed)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a plain-text table with aligned columns.

    Used by the experiment harness and the benchmark scripts to print
    paper-style tables to stdout.
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
