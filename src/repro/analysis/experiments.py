"""The experiment registry.

Every artefact of the paper (Table I, Figure 1, the correctness and security
claims) plus the performance studies a systems reader expects is registered
here under a stable experiment id.  ``run_experiment(id)`` executes one
experiment and returns an :class:`ExperimentOutcome` with a rendered text
report and structured data; the benchmark scripts in ``benchmarks/`` and the
EXPERIMENTS.md document are generated from these outcomes.

========  ===========================================================
id        artefact
========  ===========================================================
T1        Table I — derived scheme table vs. the published one
F1        Figure 1 — encryption-class taxonomy
E1–E4     Definition 1 + mining equality, one per distance measure
S1        security comparison KIT-DPE vs CryptDB-as-is (+ attacks)
S2        integrity: tamper/rollback detection + clean-run equality
P1        encryption throughput per class/scheme + encrypted execution
P2        distance-matrix / mining cost, plaintext vs encrypted
P3        parallel sharding + incremental streaming of the pipeline
P4        crypto fast paths (batched Paillier, cached OPE) vs reference
P6        sublinear mining: pivot-indexed kNN/DBSCAN vs exact pipeline
R1        resilience: seeded faults, retries, crash-safe recovery
A1        ablation: non-appropriate class choices
========  ===========================================================
"""

from __future__ import annotations

import tempfile
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro._utils import format_table
from repro.analysis.ablation import run_ablation
from repro.analysis.preservation import run_preservation_experiment
from repro.analysis.security import run_security_comparison
from repro.analysis.table1 import format_table1, render_figure1, table1_matches_paper
from repro.api import (
    DEFAULT_BACKEND,
    BackendConfig,
    CryptoConfig,
    EncryptedMiningService,
    FaultInjector,
    MiningServer,
    ReliabilityConfig,
    ServerConfig,
    ServiceConfig,
    ServiceError,
    StreamJournal,
    StreamingQueryLog,
    TamperDetected,
)
from repro.attacks import tamper
from repro.core.dpe import LogContext
from repro.core.measures import (
    AccessAreaDistance,
    ResultDistance,
    StructureDistance,
    TokenDistance,
)
from repro.core.schemes import (
    AccessAreaDpeScheme,
    ResultDpeScheme,
    StructureDpeScheme,
    TokenDpeScheme,
)
from repro.crypto.base import EncryptionClass
from repro.crypto.keys import KeyChain, MasterKey
from repro.crypto.registry import default_registry
from repro.crypto.taxonomy import default_taxonomy
from repro.exceptions import AnalysisError
from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import (
    WorkloadProfile,
    populate_database,
    skyserver_profile,
    webshop_profile,
)


@dataclass(frozen=True)
class ExperimentOutcome:
    """The result of running one registered experiment."""

    experiment_id: str
    title: str
    success: bool
    report: str
    data: dict[str, object] = field(default_factory=dict)


# --------------------------------------------------------------------------- #
# shared context builders


def _keychain(label: str) -> KeyChain:
    return KeyChain(MasterKey.from_passphrase(f"experiments/{label}"))


def build_log_context(
    *,
    profile: WorkloadProfile | None = None,
    log_size: int = 40,
    seed: int = 3,
    mix: WorkloadMix | None = None,
    with_database: bool = False,
    with_domains: bool = False,
) -> LogContext:
    """Build a plaintext :class:`LogContext` from a synthetic workload."""
    profile = profile or webshop_profile(customer_rows=60, order_rows=120, product_rows=30)
    mix = mix or WorkloadMix()
    log = QueryLogGenerator(profile, mix, seed=seed).generate(log_size)
    database = populate_database(profile, seed=seed) if with_database else None
    domains = profile.domain_catalog() if with_domains else None
    return LogContext(log=log, database=database, domains=domains)


# --------------------------------------------------------------------------- #
# individual experiments


def run_t1() -> ExperimentOutcome:
    """T1: derive Table I and compare with the paper."""
    rows = table1_matches_paper()
    success = all(row.matches for row in rows)
    report_lines = [format_table1(), ""]
    for row in rows:
        status = "matches paper" if row.matches else f"MISMATCH (expected {row.expected})"
        report_lines.append(f"{row.derived[0]}: {status}")
    return ExperimentOutcome(
        experiment_id="T1",
        title="Table I: derived DPE schemes per distance measure",
        success=success,
        report="\n".join(report_lines),
        data={"rows": [row.derived for row in rows]},
    )


def run_f1() -> ExperimentOutcome:
    """F1: reproduce the Figure 1 taxonomy and its structural claims."""
    taxonomy = default_taxonomy()
    checks = {
        "HOM is a subclass of PROB": taxonomy.is_subclass(EncryptionClass.HOM, EncryptionClass.PROB),
        "OPE is a subclass of DET": taxonomy.is_subclass(EncryptionClass.OPE, EncryptionClass.DET),
        "JOIN-OPE is a subclass of JOIN": taxonomy.is_subclass(
            EncryptionClass.JOIN_OPE, EncryptionClass.JOIN
        ),
        "PROB is more secure than DET": taxonomy.more_secure(
            EncryptionClass.PROB, EncryptionClass.DET
        ),
        "DET is more secure than OPE": taxonomy.more_secure(
            EncryptionClass.DET, EncryptionClass.OPE
        ),
        "PROB and HOM share a level": taxonomy.security_level(EncryptionClass.PROB)
        == taxonomy.security_level(EncryptionClass.HOM),
    }
    success = all(checks.values())
    lines = [render_figure1(), ""]
    lines.extend(f"{'ok ' if ok else 'FAIL'} {name}" for name, ok in checks.items())
    return ExperimentOutcome(
        experiment_id="F1",
        title="Figure 1: taxonomy of property-preserving encryption classes",
        success=success,
        report="\n".join(lines),
        data={"checks": checks},
    )


def _preservation_outcome(
    experiment_id: str, title: str, scheme, measure, context: LogContext
) -> ExperimentOutcome:
    experiment = run_preservation_experiment(scheme, measure, context)
    report = format_table(["quantity", "value"], experiment.summary_rows())
    return ExperimentOutcome(
        experiment_id=experiment_id,
        title=title,
        success=experiment.reproduces_paper,
        report=report,
        data={
            "max_deviation": experiment.preservation.max_absolute_deviation,
            "equivalence_holds": experiment.equivalence.holds,
            "mining_identical": experiment.mining.all_identical,
            "log_size": experiment.log_size,
        },
    )


def run_e1(*, log_size: int = 40, seed: int = 3) -> ExperimentOutcome:
    """E1: token-based query-string distance."""
    context = build_log_context(log_size=log_size, seed=seed)
    scheme = TokenDpeScheme(_keychain("e1"))
    return _preservation_outcome(
        "E1", "Distance preservation & mining equality: token distance",
        scheme, TokenDistance(), context,
    )


def run_e2(*, log_size: int = 40, seed: int = 4) -> ExperimentOutcome:
    """E2: query-structure distance."""
    context = build_log_context(log_size=log_size, seed=seed)
    scheme = StructureDpeScheme(_keychain("e2"))
    return _preservation_outcome(
        "E2", "Distance preservation & mining equality: structure distance",
        scheme, StructureDistance(), context,
    )


def run_e3(*, log_size: int = 25, seed: int = 5, backend: str = DEFAULT_BACKEND) -> ExperimentOutcome:
    """E3: query-result distance (requires encrypted execution).

    ``backend`` selects the execution backend (``memory`` or ``sqlite``) for
    both plaintext and encrypted query execution; result-tuple sets — and
    therefore every distance — are bit-for-bit identical across backends.
    """
    profile = webshop_profile(customer_rows=40, order_rows=80, product_rows=20)
    context = build_log_context(
        profile=profile,
        log_size=log_size,
        seed=seed,
        mix=WorkloadMix.spj_only(),
        with_database=True,
    )
    scheme = ResultDpeScheme(
        _keychain("e3"), join_groups=profile.join_groups(), paillier_bits=256, backend=backend
    )
    return _preservation_outcome(
        "E3", "Distance preservation & mining equality: result distance",
        scheme, ResultDistance(backend=backend), context,
    )


def run_e4(*, log_size: int = 40, seed: int = 6) -> ExperimentOutcome:
    """E4: query-access-area distance (requires shared domains)."""
    profile = skyserver_profile(photo_rows=100, spec_rows=40)
    context = build_log_context(
        profile=profile,
        log_size=log_size,
        seed=seed,
        mix=WorkloadMix.analytical(),
        with_domains=True,
    )
    scheme = AccessAreaDpeScheme(_keychain("e4"))
    return _preservation_outcome(
        "E4", "Distance preservation & mining equality: access-area distance",
        scheme, AccessAreaDistance(), context,
    )


def run_s1(*, log_size: int = 100, seed: int = 7, backend: str = DEFAULT_BACKEND) -> ExperimentOutcome:
    """S1: security comparison KIT-DPE vs CryptDB-as-is.

    ``backend`` selects the execution backend the CryptDB proxy session
    serves the workload on; exposure depends only on the rewrites, so the
    comparison is identical across backends.
    """
    comparison = run_security_comparison(log_size=log_size, seed=seed, backend=backend)
    lines = [
        comparison.exposure_table(),
        "",
        comparison.attack_table(),
        "",
        f"sorting attack on OPE values: {comparison.ope_sorting_recovery:.2%} exact recovery",
        f"attributes where KIT-DPE is strictly more secure: "
        f"{comparison.attributes_strictly_better} / {len(comparison.exposures)}",
        f"attributes where KIT-DPE is less secure: {comparison.attributes_worse}",
    ]
    success = comparison.attributes_worse == 0 and comparison.attributes_strictly_better >= 1
    return ExperimentOutcome(
        experiment_id="S1",
        title="Security comparison: KIT-DPE schemes vs CryptDB-as-is",
        success=success,
        report="\n".join(lines),
        data={
            "strictly_better": comparison.attributes_strictly_better,
            "worse": comparison.attributes_worse,
            "attack_rates": {a.scheme: a.constant_recovery_rate for a in comparison.attacks},
            "ope_sorting_recovery": comparison.ope_sorting_recovery,
        },
    )


def run_s2(
    *, log_size: int = 10, seed: int = 12, backend: str = DEFAULT_BACKEND
) -> ExperimentOutcome:
    """S2: integrity — authenticated onions and rollback detection.

    Two claims, both required for success:

    1. *Zero-cost honesty*: with an honest provider, an authenticated
       service decrypts the exact same results as an unauthenticated one
       built from the same passphrase, and no false tamper alarms fire
       (every ``tamper_detected`` counter stays zero).
    2. *Full detection*: each of the four tamper classes of
       :mod:`repro.attacks.tamper` — ciphertext bit flip, row swap, stale
       snapshot replay, log rollback — raises
       :class:`~repro.api.TamperDetected` on the chosen backend.
    """
    profile = webshop_profile(customer_rows=8, order_rows=12, product_rows=5)
    spj_log = QueryLogGenerator(profile, WorkloadMix.spj_only(), seed=seed).generate(log_size)

    def service(authenticate: bool) -> EncryptedMiningService:
        built = EncryptedMiningService(
            ServiceConfig(
                crypto=CryptoConfig(
                    passphrase="experiments/s2",
                    paillier_bits=256,
                    shared_det_key=True,
                    authenticate=authenticate,
                )
            ),
            join_groups=profile.join_groups(),
        )
        built.encrypt(populate_database(profile, seed=seed))
        return built

    # Claim 1: clean-run equality and zero false positives.  The services
    # share a passphrase (hence key material); raw HOM ciphertexts still
    # differ between the two encryptions (probabilistic blinding), so the
    # comparison is on *decrypted* results — the user-visible contract.
    plain_service = service(authenticate=False)
    auth_service = service(authenticate=True)
    plain_run = plain_service.run_workload(spj_log, backend=backend, on_unsupported="skip")
    auth_run = auth_service.run_workload(spj_log, backend=backend, on_unsupported="skip")
    plain_rows = [plain_service.decrypt(result) for result in plain_run.results]
    auth_rows = [auth_service.decrypt(result) for result in auth_run.results]
    clean_equal = plain_rows == auth_rows
    report_columns = auth_service.exposure_report().columns
    false_positives = sum(entry.tamper_detected for entry in report_columns)
    cells_verified = sum(entry.cells_verified for entry in report_columns)

    # Claim 2: every tamper class is detected.  Each probe gets a fresh
    # authenticated service so the tampers cannot mask each other.
    encrypted = auth_service.encrypt(populate_database(profile, seed=seed))
    target_table = sorted(encrypted.table_names)[0]
    target_column = next(
        name
        for name in encrypted.table(target_table).schema.column_names
        if name.endswith("_ord")
    )

    def probe(tamper_and_verify) -> bool:
        fresh = service(authenticate=True)
        with fresh.open_session(backend=backend, on_unsupported="skip") as session:
            provider = tamper.storage_backend(session)
            try:
                tamper_and_verify(fresh, session, provider)
            except TamperDetected:
                return True
            return False

    def probe_flip(fresh, session, provider):
        tamper.flip_ciphertext(provider, target_table, target_column, row=0)
        session.verify_storage()

    def probe_swap(fresh, session, provider):
        tamper.swap_rows(provider, target_table, row_a=0, row_b=1)
        session.verify_storage()

    def probe_replay(fresh, session, provider):
        stale = tamper.capture_rows(provider, target_table)
        fresh.encrypt(populate_database(profile, seed=seed))  # version bump
        tamper.replay_rows(provider, target_table, stale)
        session.verify_storage()

    def probe_rollback(fresh, session, provider):
        sink = StreamingQueryLog()
        session.stream(spj_log.queries, into=sink)
        tamper.rollback_log(sink, max(0, sink.chain_length - 3))
        session.verify_stream(sink)

    detection = {
        "flip": probe(probe_flip),
        "swap": probe(probe_swap),
        "replay": probe(probe_replay),
        "rollback": probe(probe_rollback),
    }
    detection_rate = sum(detection.values()) / len(detection)

    rows = [
        (name, "detected" if caught else "MISSED") for name, caught in detection.items()
    ]
    lines = [
        format_table(["tamper class", "outcome"], rows),
        "",
        f"detection rate: {detection_rate:.0%}",
        f"clean authenticated run equals unauthenticated run: {clean_equal}",
        f"false tamper alarms on the honest run: {false_positives}",
        f"storage cells verified on the honest run: {cells_verified}",
    ]
    success = (
        all(detection.values())
        and clean_equal
        and false_positives == 0
        and cells_verified > 0
    )
    return ExperimentOutcome(
        experiment_id="S2",
        title="Integrity: authenticated onions and rollback detection",
        success=success,
        report="\n".join(lines),
        data={
            "detection": detection,
            "detection_rate": detection_rate,
            "clean_equal": clean_equal,
            "false_positives": false_positives,
            "cells_verified": cells_verified,
            "backend": backend,
        },
    )


def run_p1(
    *,
    values_per_class: int = 200,
    log_size: int = 30,
    seed: int = 8,
    backend: str = DEFAULT_BACKEND,
) -> ExperimentOutcome:
    """P1: encryption throughput per class, per DPE scheme and per backend.

    Besides the per-class and per-scheme encryption rates, the experiment
    serves an encrypted select-project-join workload through the
    :class:`repro.api.EncryptedMiningService` façade (one batched proxy
    session) on the chosen execution backend and reports the end-to-end
    (rewrite + execute) throughput.
    """
    registry = default_registry(paillier_bits=256)
    keychain = _keychain("p1")
    rows = []
    timings: dict[str, float] = {}
    for encryption_class in (
        EncryptionClass.PROB,
        EncryptionClass.DET,
        EncryptionClass.OPE,
        EncryptionClass.HOM,
    ):
        scheme = registry.create_for(encryption_class, keychain, "p1", encryption_class.value)
        values = list(range(1, values_per_class + 1))
        start = time.perf_counter()
        for value in values:
            scheme.encrypt(value)
        elapsed = time.perf_counter() - start
        rate = values_per_class / elapsed if elapsed > 0 else float("inf")
        timings[encryption_class.value] = rate
        rows.append((encryption_class.value, f"{rate:,.0f} values/s"))

    profile = webshop_profile(customer_rows=40, order_rows=80, product_rows=20)
    log = QueryLogGenerator(profile, WorkloadMix(), seed=seed).generate(log_size)
    scheme_rows = []
    for name, scheme in (
        ("token", TokenDpeScheme(_keychain("p1-token"))),
        ("structure", StructureDpeScheme(_keychain("p1-structure"))),
        ("access-area", AccessAreaDpeScheme(_keychain("p1-aa"))),
    ):
        if isinstance(scheme, AccessAreaDpeScheme):
            scheme.fit(log, profile.domain_catalog())
        start = time.perf_counter()
        scheme.encrypt_log(log)
        elapsed = time.perf_counter() - start
        qps = log_size / elapsed if elapsed > 0 else float("inf")
        timings[f"scheme:{name}"] = qps
        scheme_rows.append((name, f"{qps:,.1f} queries/s"))

    # End-to-end encrypted-workload throughput: rewrite + execute a whole
    # SPJ workload through the service façade on the chosen backend.
    spj_log = QueryLogGenerator(profile, WorkloadMix.spj_only(), seed=seed + 1).generate(log_size)
    service = EncryptedMiningService(
        ServiceConfig(
            crypto=CryptoConfig(
                passphrase="experiments/p1-proxy", paillier_bits=256, shared_det_key=True
            )
        ),
        join_groups=profile.join_groups(),
    )
    service.encrypt(populate_database(profile, seed=seed))
    outcome = service.run_workload(spj_log, backend=backend, on_unsupported="skip")
    workload_qps = outcome.throughput
    timings[f"workload:{backend}"] = workload_qps
    workload_rows = [(backend, outcome.queries_served, f"{workload_qps:,.1f} queries/s")]

    report = (
        format_table(["encryption class", "throughput"], rows)
        + "\n\n"
        + format_table(["DPE scheme", "log-encryption throughput"], scheme_rows)
        + "\n\n"
        + format_table(
            ["execution backend", "queries served", "encrypted-workload throughput"],
            workload_rows,
        )
    )
    return ExperimentOutcome(
        experiment_id="P1",
        title="Encryption throughput per class, per DPE scheme and per backend",
        success=all(rate > 0 for rate in timings.values()),
        report=report,
        data={"throughput": timings, "backend": backend},
    )


def run_p2(*, sizes: tuple[int, ...] = (10, 20, 40), seed: int = 9) -> ExperimentOutcome:
    """P2: distance-matrix computation cost, plaintext vs encrypted.

    Each size is measured twice per side: with the naive reference loop (the
    seed implementation, kept as an equality oracle) and with the batched /
    cached / vectorized pipeline, so the speedup of the pipeline is recorded
    alongside the plaintext-vs-encrypted overhead the paper's outsourcing
    story cares about.
    """
    profile = webshop_profile(customer_rows=40, order_rows=80, product_rows=20)
    measure = TokenDistance()
    scheme = TokenDpeScheme(_keychain("p2"))
    rows = []
    series: dict[int, dict[str, float]] = {}
    for size in sizes:
        log = QueryLogGenerator(profile, WorkloadMix(), seed=seed).generate(size)
        plain = LogContext(log=log)
        encrypted = scheme.encrypt_context(plain)
        start = time.perf_counter()
        reference_matrix = measure.distance_matrix_reference(plain)
        reference_time = time.perf_counter() - start
        start = time.perf_counter()
        plain_matrix = measure.distance_matrix(plain)
        plain_time = time.perf_counter() - start
        start = time.perf_counter()
        measure.distance_matrix(encrypted)
        encrypted_time = time.perf_counter() - start
        if not np.array_equal(reference_matrix, plain_matrix):
            raise AnalysisError("vectorized distance matrix deviates from the reference loop")
        overhead = encrypted_time / plain_time if plain_time > 0 else float("inf")
        speedup = reference_time / plain_time if plain_time > 0 else float("inf")
        series[size] = {
            "reference_seconds": reference_time,
            "plain_seconds": plain_time,
            "encrypted_seconds": encrypted_time,
            "overhead": overhead,
            "speedup": speedup,
        }
        rows.append(
            (
                size,
                f"{reference_time * 1000:.1f} ms",
                f"{plain_time * 1000:.1f} ms",
                f"{speedup:.1f}x",
                f"{encrypted_time * 1000:.1f} ms",
                f"{overhead:.2f}x",
            )
        )
    report = format_table(
        [
            "log size",
            "reference loop",
            "pipeline (plain)",
            "speedup",
            "pipeline (encrypted)",
            "overhead",
        ],
        rows,
    )
    return ExperimentOutcome(
        experiment_id="P2",
        title="Distance-matrix cost: plaintext vs encrypted (token measure)",
        success=True,
        report=report,
        data={"series": series},
    )


def run_p3(
    *,
    log_size: int = 160,
    batch_size: int = 40,
    workers: int = 2,
    chunk_size: int | None = None,
    seed: int = 12,
) -> ExperimentOutcome:
    """P3: parallel sharding and incremental streaming of the mining pipeline.

    Two scaling claims are verified on top of the paper's equality story.
    (1) *Parallel*: sharding the condensed distance-matrix computation over
    ``workers`` processes (row-block partitioning, ``chunk_size`` pairs per
    task) is bit-for-bit equal to the serial pipeline for the token and
    access-area measures.  (2) *Incremental*: streaming the log in batches
    of ``batch_size`` through a ``StreamingQueryLog`` computes only the new
    pairs per append, yet the distance matrix, kNN lists, DB(p, D)-outliers
    and DBSCAN labels equal a full batch recompute after every append — on
    the plaintext stream, on the encrypted stream, and across the two
    (preservation holds under streaming).  Success requires every equality;
    the wall-clock speedup is hardware-dependent and recorded without being
    gated (the gate lives in ``benchmarks/bench_p3_parallel.py``).
    """
    from repro.api import (
        IncrementalDistanceMatrix,
        StreamingQueryLog,
        condensed_length,
        dbscan,
        distance_based_outliers,
        k_nearest_neighbors,
    )
    from repro.sql.log import QueryLog

    profile = webshop_profile(customer_rows=40, order_rows=80, product_rows=20)
    log = QueryLogGenerator(profile, WorkloadMix(), seed=seed).generate(log_size)
    sky = skyserver_profile(photo_rows=80, spec_rows=30)
    analytical_log = QueryLogGenerator(sky, WorkloadMix.analytical(), seed=seed).generate(log_size)

    parallel_rows = []
    parallel_equal = True
    timings: dict[str, float] = {}
    for measure_factory, context in (
        (TokenDistance, LogContext(log=log)),
        (AccessAreaDistance, LogContext(log=analytical_log, domains=sky.domain_catalog())),
    ):
        start = time.perf_counter()
        serial = measure_factory().condensed_distance_matrix(context)
        serial_seconds = time.perf_counter() - start
        start = time.perf_counter()
        parallel = measure_factory().condensed_distance_matrix(
            context, workers=workers, chunk_size=chunk_size
        )
        parallel_seconds = time.perf_counter() - start
        equal = bool(np.array_equal(serial.values, parallel.values))
        parallel_equal = parallel_equal and equal
        name = measure_factory().name
        timings[f"serial:{name}"] = serial_seconds
        timings[f"parallel:{name}"] = parallel_seconds
        speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
        parallel_rows.append(
            (
                name,
                f"{serial_seconds * 1000:.1f} ms",
                f"{parallel_seconds * 1000:.1f} ms",
                f"{speedup:.2f}x",
                "bit-for-bit" if equal else "DEVIATES",
            )
        )

    mining_parameters = dict(
        knn_k=3, outlier_p=0.9, outlier_d=0.9, dbscan_eps=0.55, dbscan_min_points=3
    )
    scheme = TokenDpeScheme(_keychain("p3"))
    plain_stream = StreamingQueryLog()
    plain_inc = IncrementalDistanceMatrix(TokenDistance(), plain_stream, **mining_parameters)
    encrypted_stream = StreamingQueryLog()
    encrypted_inc = IncrementalDistanceMatrix(
        TokenDistance(), encrypted_stream, **mining_parameters
    )

    incremental_rows = []
    incremental_equal = True
    entries = list(log)
    appended = 0
    while appended < len(entries):
        batch = entries[appended : appended + batch_size]
        appended += len(batch)
        before = plain_inc.pairs_computed
        plain_stream.append(batch)
        encrypted_stream.append(list(scheme.encrypt_log(QueryLog(batch))))
        new_pairs = plain_inc.pairs_computed - before

        batch_measure = TokenDistance()
        batch_matrix = batch_measure.condensed_distance_matrix(
            LogContext(log=QueryLog(entries[:appended]))
        )
        n = appended
        checks = {
            "distances": bool(
                np.array_equal(plain_inc.condensed().values, batch_matrix.values)
            ),
            "knn": all(
                plain_inc.knn(i)
                == k_nearest_neighbors(batch_matrix, i, k=mining_parameters["knn_k"])
                for i in range(n)
            ),
            "outliers": plain_inc.outliers()
            == distance_based_outliers(
                batch_matrix,
                p=mining_parameters["outlier_p"],
                d=mining_parameters["outlier_d"],
            ),
            "dbscan": plain_inc.dbscan()
            == dbscan(
                batch_matrix,
                eps=mining_parameters["dbscan_eps"],
                min_points=mining_parameters["dbscan_min_points"],
            ),
            "preserved": bool(
                np.array_equal(
                    plain_inc.condensed().values, encrypted_inc.condensed().values
                )
            )
            and plain_inc.dbscan().labels == encrypted_inc.dbscan().labels,
        }
        incremental_equal = incremental_equal and all(checks.values())
        incremental_rows.append(
            (
                n,
                new_pairs,
                condensed_length(n),
                "all equal" if all(checks.values()) else
                ", ".join(name for name, ok in checks.items() if not ok) + " DIFFER",
            )
        )

    report = (
        format_table(
            ["measure", "serial pipeline", f"parallel ({workers} workers)", "speedup", "equality"],
            parallel_rows,
        )
        + "\n\n"
        + format_table(
            ["log size", "new pairs computed", "pairs of full recompute", "artefacts vs batch"],
            incremental_rows,
        )
        + f"\n\ntotal incremental pair computations: {plain_inc.pairs_computed} "
        f"(a per-append full recompute would have cost "
        f"{sum(condensed_length(row[0]) for row in incremental_rows)})"
    )
    return ExperimentOutcome(
        experiment_id="P3",
        title="Parallel sharding & incremental streaming of the mining pipeline",
        success=parallel_equal and incremental_equal,
        report=report,
        data={
            "timings": timings,
            "workers": workers,
            "chunk_size": chunk_size,
            "parallel_equal": parallel_equal,
            "incremental_equal": incremental_equal,
            "incremental_pairs": plain_inc.pairs_computed,
        },
    )


def run_p4(
    *,
    values: int = 200,
    key_bits: int = 512,
    pool_size: int | None = None,
    ope_values: int = 2000,
    seed: int = 13,
) -> ExperimentOutcome:
    """P4: crypto-layer fast paths vs the scalar reference oracles.

    The pure-Python crypto layer is the dominant cost of every encrypted
    workload once mining and execution are batched (P2/P1/P3), so its three
    classic fast paths are measured against the seed's scalar
    implementations, which are kept as equality oracles: (1) *Paillier
    encryption* via the binomial shortcut ``(n+1)^m = 1 + m·n (mod n²)``
    plus a precomputed pool of ``r^n mod n²`` blinding factors
    (``encrypt_many``) vs two full ``pow``s per value
    (``encrypt_raw_reference``); (2) *Paillier decryption* via CRT (mod
    ``p²``/``q²``, Garner recombination) vs the one-big-``pow``
    ``L``-function path; (3) *OPE encryption* via the memoized descent-node
    cache with sorted-batch dedup (``encrypt_many``) vs the per-value
    uncached descent (``encrypt_reference``).  Success requires every
    fast-path artefact to equal its oracle: Paillier round-trips through
    both decrypt paths on both ciphertext kinds, and OPE batch ciphertexts
    are bit-for-bit the reference ones.  ``key_bits`` and ``pool_size`` are
    CLI axes (``--key-bits``, ``--pool-size``); the wall-clock gates live in
    ``benchmarks/bench_p4_crypto.py``.
    """
    import random

    from repro.crypto.hom import PaillierKeyPair, PaillierScheme
    from repro.crypto.ope import OrderPreservingScheme

    rng = random.Random(seed)
    keypair = PaillierKeyPair.generate(key_bits)
    scheme = PaillierScheme(keypair, pool_size=0, eager_pool=False)
    plaintexts: list[int | float] = [rng.randrange(-(10**6), 10**6) for _ in range(values)]

    start = time.perf_counter()
    reference_cts = [scheme.encrypt_raw_reference(scheme._encode(v)) for v in plaintexts]
    enc_reference = time.perf_counter() - start

    scheme.precompute(pool_size if pool_size is not None else len(plaintexts))
    start = time.perf_counter()
    fast_cts = scheme.encrypt_many(plaintexts)  # type: ignore[arg-type]
    enc_fast = time.perf_counter() - start

    start = time.perf_counter()
    reference_plain = [scheme._decode(scheme.decrypt_raw_reference(ct)) for ct in fast_cts]
    dec_reference = time.perf_counter() - start
    start = time.perf_counter()
    fast_plain = scheme.decrypt_many(fast_cts)  # type: ignore[arg-type]
    dec_fast = time.perf_counter() - start

    paillier_equal = (
        fast_plain == plaintexts
        and reference_plain == plaintexts
        and all(scheme.decrypt(ct) == value for ct, value in zip(reference_cts, plaintexts))
    )

    ope = OrderPreservingScheme(_keychain("p4").key_for("ope"))
    column = [rng.randrange(0, max(2, ope_values // 2)) for _ in range(ope_values)]
    start = time.perf_counter()
    ope_reference = [ope.encrypt_reference(v) for v in column]
    ope_reference_seconds = time.perf_counter() - start
    ope.clear_cache()
    start = time.perf_counter()
    ope_fast = ope.encrypt_many(column)  # type: ignore[arg-type]
    ope_fast_seconds = time.perf_counter() - start
    ope_equal = ope_fast == ope_reference

    def _speedup(reference: float, fast: float) -> float:
        return reference / fast if fast > 0 else float("inf")

    rows = [
        (
            f"Paillier encrypt ({values} values, {key_bits}-bit)",
            f"{enc_reference * 1000:.1f} ms",
            f"{enc_fast * 1000:.1f} ms",
            f"{_speedup(enc_reference, enc_fast):.1f}x",
        ),
        (
            f"Paillier decrypt ({values} values, CRT)",
            f"{dec_reference * 1000:.1f} ms",
            f"{dec_fast * 1000:.1f} ms",
            f"{_speedup(dec_reference, dec_fast):.1f}x",
        ),
        (
            f"OPE encrypt ({ope_values}-value column)",
            f"{ope_reference_seconds * 1000:.1f} ms",
            f"{ope_fast_seconds * 1000:.1f} ms",
            f"{_speedup(ope_reference_seconds, ope_fast_seconds):.1f}x",
        ),
    ]
    cache = ope.cache_stats()
    report = (
        format_table(["operation", "scalar reference", "batched fast path", "speedup"], rows)
        + f"\n\nPaillier fast == reference on all values: {'yes' if paillier_equal else 'NO'}"
        + f"\nOPE fast bit-for-bit == reference: {'yes' if ope_equal else 'NO'}"
        + f"\nOPE node cache: {cache['nodes']} nodes, {cache['hit_rate']:.0%} hit rate"
        + f"\nnoise pool: {scheme.fast_path_stats()['noise_pool']}"
    )
    return ExperimentOutcome(
        experiment_id="P4",
        title="Crypto fast paths: batched Paillier & cached OPE vs reference",
        success=paillier_equal and ope_equal,
        report=report,
        data={
            "timings": {
                "paillier_encrypt_reference": enc_reference,
                "paillier_encrypt_fast": enc_fast,
                "paillier_decrypt_reference": dec_reference,
                "paillier_decrypt_fast": dec_fast,
                "ope_encrypt_reference": ope_reference_seconds,
                "ope_encrypt_fast": ope_fast_seconds,
            },
            "speedups": {
                "paillier_encrypt": _speedup(enc_reference, enc_fast),
                "paillier_decrypt": _speedup(dec_reference, dec_fast),
                "ope_encrypt": _speedup(ope_reference_seconds, ope_fast_seconds),
            },
            "key_bits": key_bits,
            "pool_size": pool_size,
            "ope_cache": cache,
            "paillier_equal": paillier_equal,
            "ope_equal": ope_equal,
        },
    )


def run_p6(
    *,
    log_size: int = 800,
    distinct: int = 48,
    n_pivots: int = 8,
    shards: int = 4,
    seed: int = 17,
) -> ExperimentOutcome:
    """P6: sublinear mining — pivot-indexed kNN/DBSCAN/outliers vs exact.

    A duplicate-heavy token log (``log_size`` entries cycled from a pool of
    ``distinct`` generated webshop queries — real logs repeat templates) is
    mined twice: by the exact condensed-matrix pipeline and by an
    :class:`~repro.api.ApproxStreamMiner` over a pivot index with
    ``n_pivots`` maxmin landmarks.  Duplicates collapse into
    characteristic groups and the LAESA triangle-inequality bounds prune
    or certify most group pairs, so the approx side touches far fewer
    exact distances than the :math:`n(n-1)/2` the matrix computes.
    Success requires the completeness certificate *and* bit-for-bit
    equality of DBSCAN labels, DB(p, D)-outliers and every kNN list (so
    kNN recall and adjusted Rand index are exactly 1.0), plus the same
    equality after ingesting the log through a
    :class:`~repro.api.ShardedIncrementalMatrix` with ``shards`` shards.
    The wall-clock speedup is recorded without being gated (the ≥ 10×
    gate at 50 000 entries lives in ``benchmarks/bench_p6_sublinear.py``).
    """
    from repro.api import (
        ApproxStreamMiner,
        CandidateStats,
        ShardedIncrementalMatrix,
        adjusted_rand_index,
        dbscan,
        distance_based_outliers,
        k_nearest_neighbors,
    )
    from repro.sql.log import QueryLog

    profile = webshop_profile(customer_rows=40, order_rows=80, product_rows=20)
    pool = list(QueryLogGenerator(profile, WorkloadMix(), seed=seed).generate(distinct))
    entries = [pool[i % len(pool)] for i in range(log_size)]
    parameters = dict(
        knn_k=5, outlier_p=0.9, outlier_d=0.6, dbscan_eps=0.5, dbscan_min_points=3
    )

    start = time.perf_counter()
    matrix = TokenDistance().condensed_distance_matrix(LogContext(log=QueryLog(entries)))
    exact_clusters = dbscan(
        matrix, eps=parameters["dbscan_eps"], min_points=parameters["dbscan_min_points"]
    )
    exact_outliers = distance_based_outliers(
        matrix, p=parameters["outlier_p"], d=parameters["outlier_d"]
    )
    exact_knn = [
        k_nearest_neighbors(matrix, i, k=parameters["knn_k"]) for i in range(matrix.n)
    ]
    exact_seconds = time.perf_counter() - start

    start = time.perf_counter()
    miner = ApproxStreamMiner(
        TokenDistance(), window=log_size, n_pivots=n_pivots, seed=seed, **parameters
    )
    miner.append(entries)
    approx_clusters, s1 = miner.dbscan()
    approx_outliers, s2 = miner.outliers()
    approx_knn, s3 = miner.knn_all()
    approx_seconds = time.perf_counter() - start
    stats = CandidateStats.merge(s1, s2, s3)

    # No eviction at window == log_size, so ids equal matrix positions.
    recall = sum(
        len(set(approx_knn[i]) & set(expected)) / len(expected)
        for i, expected in enumerate(exact_knn)
    ) / len(exact_knn)
    ari = adjusted_rand_index(approx_clusters.labels, exact_clusters.labels)
    bit_for_bit = (
        approx_clusters == exact_clusters
        and approx_outliers == exact_outliers
        and all(approx_knn[i] == expected for i, expected in enumerate(exact_knn))
    )

    sharded = ShardedIncrementalMatrix(
        TokenDistance(), n_shards=shards, n_pivots=n_pivots, seed=seed, **parameters
    )
    for offset in range(0, len(entries), 97):  # ragged batches
        sharded.append(entries[offset : offset + 97])
    sharded_clusters, sharded_stats = sharded.dbscan()
    sharded_equal = (
        sharded_clusters == exact_clusters and sharded_stats.certified_complete
    )

    speedup = exact_seconds / approx_seconds if approx_seconds > 0 else float("inf")
    all_pairs = log_size * (log_size - 1) // 2
    report = format_table(
        ["quantity", "value"],
        [
            ("log size / distinct groups", f"{log_size} / {stats.n_groups}"),
            ("exact pipeline", f"{exact_seconds * 1000:.1f} ms ({all_pairs:,} pairs)"),
            ("pivot-indexed miner", f"{approx_seconds * 1000:.1f} ms"),
            ("speedup", f"{speedup:.1f}x"),
            ("exact distance evaluations", f"{stats.exact_distances:,}"),
            ("pruned / certified group pairs", f"{stats.pruned_pairs:,} / {stats.certified_pairs:,}"),
            ("certified complete", "yes" if stats.certified_complete else "NO"),
            ("kNN recall / DBSCAN ARI", f"{recall:.4f} / {ari:.4f}"),
            ("artefacts vs exact", "bit-for-bit" if bit_for_bit else "DEVIATE"),
            (f"sharded ingest ({shards} shards)", "bit-for-bit" if sharded_equal else "DEVIATES"),
        ],
    )
    success = bool(
        stats.certified_complete and bit_for_bit and sharded_equal
        and recall == 1.0 and ari == 1.0
    )
    return ExperimentOutcome(
        experiment_id="P6",
        title="Sublinear mining: pivot-pruned kNN/DBSCAN/outliers vs exact",
        success=success,
        report=report,
        data={
            "timings": {"exact": exact_seconds, "approx": approx_seconds},
            "speedup": speedup,
            "recall": recall,
            "ari": ari,
            "bit_for_bit": bit_for_bit,
            "sharded_equal": sharded_equal,
            "stats": stats.to_dict(),
        },
    )


def run_r1(
    *,
    log_size: int = 24,
    seed: int = 13,
    transient_rate: float = 0.05,
    backend: str = DEFAULT_BACKEND,
    batch_size: int = 4,
) -> ExperimentOutcome:
    """R1: resilience — fault-injected serving completes bit-for-bit.

    Two phases share one seeded :class:`~repro.api.FaultInjector` (so the
    whole fault schedule reproduces from ``seed``):

    1. *Transient faults, workload path.*  A multi-tenant server routes one
       tenant through a registered chaos backend that fails a seeded ~5% of
       executions with retryable :class:`~repro.exceptions.InjectedFault`
       errors (plus one scripted fault, so at least one retry always
       happens).  With the reliability config's retries enabled, **every**
       admitted workload must complete, and the decrypted results must
       equal a fault-free reference service built from the same passphrase.
    2. *Worker crash, streaming path.*  The tenant streams the same log in
       batches into a journaled incremental miner; a scripted
       :class:`~repro.exceptions.WorkerCrashed` kills one mid-stream batch
       (the batch never reaches the sink or the journal — exactly a dead
       worker).  Recovery replays the hash-chain-verified journal, the
       crashed batch is resubmitted, and the final mining artefacts
       (distance matrix, kNN, DBSCAN labels, chain head) must be
       bit-for-bit equal to an uninterrupted fault-free run.

    Success requires 100% completion of admitted work, all equality checks,
    at least one injected transient and exactly one forced crash.
    """
    profile = webshop_profile(customer_rows=20, order_rows=40, product_rows=10)
    spj_log = QueryLogGenerator(profile, WorkloadMix.spj_only(), seed=seed).generate(log_size)
    queries = list(spj_log.queries)
    batches = [queries[i : i + batch_size] for i in range(0, len(queries), batch_size)]

    injector = FaultInjector(seed=seed, transient_rate=transient_rate)
    chaos_name = injector.register_chaos_backend(f"chaos-r1-{backend}", inner=backend)
    backend_site = f"chaos-r1-{backend}.backend"
    # One scripted transient guarantees the retry path is exercised even if
    # the random draws happen to spare this seed's call sequence.
    injector.script(f"{backend_site}.execute", at_call=2)

    def build_config(backend_name: str) -> ServiceConfig:
        return ServiceConfig(
            crypto=CryptoConfig(
                passphrase="experiments/r1", paillier_bits=256, shared_det_key=True
            ),
            backend=BackendConfig(name=backend_name, on_unsupported="skip"),
            reliability=ReliabilityConfig(
                max_retries=4, backoff_base=0.001, backoff_max=0.01
            ),
        )

    # Fault-free reference: same passphrase (hence key material), plain
    # backend, no injector anywhere.
    reference = EncryptedMiningService(build_config(backend), join_groups=profile.join_groups())
    reference.encrypt(populate_database(profile, seed=seed))
    reference_rows = [
        [reference.decrypt(result) for result in reference.run_workload(batch).results]
        for batch in batches
    ]
    reference_matrix = reference.incremental_miner()
    with reference.open_session() as session:
        for batch in batches:
            session.stream(batch, into=reference_matrix.stream)

    crash_batch = len(batches) // 2 + 1
    with tempfile.TemporaryDirectory(prefix="repro-r1-") as tmp:
        journal_path = str(Path(tmp) / "r1.journal")
        server_config = ServerConfig(
            workers=2,
            reliability={"deadline_ms": 120_000, "breaker_enabled": True},
        )
        with MiningServer(server_config) as server:
            handle = server.add_tenant(
                "r1",
                build_config(chaos_name),
                database=populate_database(profile, seed=seed),
                join_groups=profile.join_groups(),
            )

            # Phase 1: every admitted workload completes under transients.
            futures = [server.submit("r1", batch) for batch in batches]
            workload_rows = []
            completed = 0
            for future in futures:
                result = future.result()
                completed += 1
                workload_rows.append(
                    [handle.service.decrypt(encrypted) for encrypted in result.results]
                )
            workloads_equal = workload_rows == reference_rows

            # Phase 2: journaled streaming with a forced mid-stream crash.
            matrix, journal = handle.service.journaled_miner(path=journal_path)
            sink = injector.wrap_sink(matrix.stream, site="r1.worker", scripted_only=True)
            injector.script_crash("r1.worker.append", at_call=crash_batch)
            crashes = 0
            recovery_report = None
            index = 0
            while index < len(batches):
                try:
                    server.stream("r1", batches[index], into=sink).result()
                except ServiceError as error:
                    if crashes or recovery_report is not None:  # pragma: no cover
                        raise
                    crashes += 1
                    # The worker died: its journal handle goes down with it.
                    journal.close()
                    matrix, recovery_report = handle.service.recover_miner(
                        path=journal_path
                    )
                    journal = StreamJournal(journal_path)
                    journal.attach(matrix.stream)
                    sink = injector.wrap_sink(
                        matrix.stream, site="r1.worker", scripted_only=True
                    )
                    del error  # resubmit the crashed batch below
                    continue
                index += 1
            journal.close()

            tenant_stats = server.stats().for_tenant("r1")

    streams_equal = bool(
        np.array_equal(matrix.square(), reference_matrix.square())
        and matrix.stream.chain_head == reference_matrix.stream.chain_head
        and matrix.dbscan().labels == reference_matrix.dbscan().labels
        and matrix.knn_all() == reference_matrix.knn_all()
    )
    fault_stats = injector.stats()
    injected = sum(entry["injected"] for entry in fault_stats.values())
    admitted = len(batches)
    success = (
        completed == admitted
        and workloads_equal
        and streams_equal
        and crashes == 1
        and recovery_report is not None
        and injected > crashes
    )

    rows = [
        (site, str(entry["calls"]), str(entry["injected"]), str(entry["delayed"]))
        for site, entry in fault_stats.items()
    ]
    lines = [
        format_table(["fault site", "calls", "injected", "delayed"], rows),
        "",
        f"workloads admitted/completed: {admitted}/{completed}",
        f"decrypted workload results equal fault-free run: {workloads_equal}",
        f"forced worker crashes: {crashes} (batch {crash_batch})",
        "journal recovery: "
        + (
            f"{recovery_report.batches_replayed} batches / "
            f"{recovery_report.entries_replayed} entries replayed"
            if recovery_report is not None
            else "never ran"
        ),
        f"recovered mining artefacts bit-for-bit equal: {streams_equal}",
        f"tenant reliability counters: {tenant_stats.reliability}",
    ]
    return ExperimentOutcome(
        experiment_id="R1",
        title="Resilience: seeded faults, retries, crash-safe recovery",
        success=success,
        report="\n".join(lines),
        data={
            "admitted": admitted,
            "completed": completed,
            "workloads_equal": workloads_equal,
            "streams_equal": streams_equal,
            "crashes": crashes,
            "injected": injected,
            "fault_sites": fault_stats,
            "recovery": recovery_report.to_dict() if recovery_report else None,
            "reliability": tenant_stats.reliability,
            "backend": backend,
            "seed": seed,
            "transient_rate": transient_rate,
        },
    )


def run_a1(*, log_size: int = 50, seed: int = 11) -> ExperimentOutcome:
    """A1: ablation of non-appropriate encryption-class choices."""
    result = run_ablation(log_size=log_size, seed=seed)
    rows = [
        (
            case.name,
            case.measure,
            f"{case.preservation_max_deviation:.3g}",
            "yes" if case.preserved else "NO",
            f"{case.attack_recovery_rate:.2%}",
            f"{case.distinct_ciphertext_ratio:.2f}",
            case.note,
        )
        for case in result.cases
    ]
    report = format_table(
        [
            "configuration",
            "measure",
            "max deviation",
            "preserved",
            "attack recovery",
            "distinct ratio",
            "note",
        ],
        rows,
    )
    baseline = result.case("token/DET (appropriate)")
    broken = result.case("token/PROB (not appropriate)")
    weak = result.case("structure/DET (needlessly weak)")
    appropriate_structure = result.case("structure/PROB (appropriate)")
    success = (
        baseline.preserved
        and not broken.preserved
        and weak.preserved
        and appropriate_structure.preserved
        # Condition (2) of Definition 6: the DET variant leaks the constant
        # frequency histogram (repeated ciphertexts) with no preservation
        # gain; the appropriate PROB variant shows no repetition at all.
        and weak.distinct_ciphertext_ratio < 1.0
        and appropriate_structure.distinct_ciphertext_ratio >= 0.999
    )
    return ExperimentOutcome(
        experiment_id="A1",
        title="Ablation: violating either condition of Definition 6",
        success=success,
        report=report,
        data={case.name: case.preserved for case in result.cases},
    )


# --------------------------------------------------------------------------- #
# registry

_REGISTRY: dict[str, tuple[str, Callable[..., ExperimentOutcome]]] = {
    "T1": ("Table I: derived DPE schemes", run_t1),
    "F1": ("Figure 1: encryption-class taxonomy", run_f1),
    "E1": ("Preservation & mining equality: token distance", run_e1),
    "E2": ("Preservation & mining equality: structure distance", run_e2),
    "E3": ("Preservation & mining equality: result distance", run_e3),
    "E4": ("Preservation & mining equality: access-area distance", run_e4),
    "S1": ("Security comparison vs CryptDB", run_s1),
    "S2": ("Integrity: tamper & rollback detection", run_s2),
    "P1": ("Encryption & encrypted-execution throughput", run_p1),
    "P2": ("Distance-matrix cost plaintext vs encrypted", run_p2),
    "P3": ("Parallel & incremental mining pipeline", run_p3),
    "P4": ("Crypto fast paths vs scalar reference", run_p4),
    "P6": ("Sublinear pivot-pruned mining vs exact pipeline", run_p6),
    "R1": ("Resilience: seeded faults, retries, crash-safe recovery", run_r1),
    "A1": ("Ablation: non-appropriate classes", run_a1),
}


def list_experiments() -> list[tuple[str, str]]:
    """All registered experiment ids with their titles."""
    return [(experiment_id, title) for experiment_id, (title, _) in _REGISTRY.items()]


def registry_entries() -> list[tuple[str, str, Callable[..., ExperimentOutcome]]]:
    """All registered experiments as ``(id, title, runner)`` triples.

    Used by the documentation generator (``python -m repro docs``), which
    introspects runner docstrings and default parameters without executing
    anything.
    """
    return [
        (experiment_id, title, runner) for experiment_id, (title, runner) in _REGISTRY.items()
    ]


def experiment_parameters(experiment_id: str) -> tuple[str, ...]:
    """Keyword parameters accepted by an experiment's runner.

    Used by the CLI to pass cross-cutting axes (e.g. ``--backend``) only to
    the experiments that support them.
    """
    import inspect

    try:
        _, runner = _REGISTRY[experiment_id.upper()]
    except KeyError:
        raise AnalysisError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return tuple(inspect.signature(runner).parameters)


def run_experiment(experiment_id: str, **parameters) -> ExperimentOutcome:
    """Run one registered experiment by id."""
    try:
        _, runner = _REGISTRY[experiment_id.upper()]
    except KeyError:
        raise AnalysisError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return runner(**parameters)


def run_all_experiments() -> list[ExperimentOutcome]:
    """Run every registered experiment with default parameters."""
    return [run_experiment(experiment_id) for experiment_id in _REGISTRY]
