"""Experiment T1 / F1: regenerate Table I and Figure 1.

Table I of the paper maps each query-distance measure to the encryption
classes of its DPE scheme.  Rather than hard-coding the table, the
reproduction *derives* it: each measure declares what its equivalence notion
requires of EncRel/EncAttr/EncConst, and the KIT-DPE engine (Definition 6)
selects the appropriate classes against the Figure 1 taxonomy.  The test
suite and the ``bench_table1`` benchmark assert that the derived table equals
the published one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._utils import format_table
from repro.core.kitdpe import KitDpeEngine, SchemeDerivation
from repro.core.measures import standard_measures
from repro.crypto.taxonomy import EncryptionTaxonomy, default_taxonomy

#: The published Table I, as (measure, shared info, notion, EncRel, EncAttr, EncConst).
EXPECTED_TABLE1: tuple[tuple[str, str, str, str, str, str], ...] = (
    (
        "Token-Based Query-String Distance",
        "Log",
        "Token Equivalence",
        "DET",
        "DET",
        "DET",
    ),
    (
        "Query-Structure Distance",
        "Log",
        "Structural Equivalence",
        "DET",
        "DET",
        "PROB",
    ),
    (
        "Query-Result Distance",
        "Log + DB-Content",
        "Result Equivalence",
        "DET",
        "DET",
        "via CryptDB",
    ),
    (
        "Query-Access-Area Distance",
        "Log + Domains",
        "Access-Area Equivalence",
        "DET",
        "DET",
        "via CryptDB, except HOM",
    ),
)


@dataclass(frozen=True)
class Table1Row:
    """One derived row together with the matching expectation."""

    derived: tuple[str, str, str, str, str, str]
    expected: tuple[str, str, str, str, str, str]

    @property
    def matches(self) -> bool:
        """True if the derivation reproduces the published row."""
        return self.derived == self.expected


def expected_table1() -> tuple[tuple[str, str, str, str, str, str], ...]:
    """The published Table I rows."""
    return EXPECTED_TABLE1


def derive_table1(engine: KitDpeEngine | None = None) -> list[SchemeDerivation]:
    """Derive Table I from the measures' requirements (KIT-DPE steps 2–3)."""
    engine = engine or KitDpeEngine()
    return engine.derive_table(standard_measures())


def table1_matches_paper(engine: KitDpeEngine | None = None) -> list[Table1Row]:
    """Derive Table I and pair every row with the published expectation."""
    derivations = derive_table1(engine)
    rows = []
    for derivation, expected in zip(derivations, EXPECTED_TABLE1):
        rows.append(Table1Row(derived=derivation.as_row(), expected=expected))
    return rows


def format_table1(derivations: list[SchemeDerivation] | None = None) -> str:
    """Render the derived Table I as the paper prints it."""
    derivations = derivations if derivations is not None else derive_table1()
    headers = [
        "Distance Measure",
        "Shared Information",
        "Equivalence Notion",
        "EncRel",
        "EncAttr",
        "EncA.Const",
    ]
    return format_table(headers, [derivation.as_row() for derivation in derivations])


def render_figure1(taxonomy: EncryptionTaxonomy | None = None) -> str:
    """Render Figure 1 (the encryption-class taxonomy) as text."""
    return (taxonomy or default_taxonomy()).to_figure()
