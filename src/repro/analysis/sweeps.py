"""Parameter sweeps: preservation and cost as a function of workload size.

The paper's claims are size-independent (Definition 1 is universally
quantified), so the interesting "figure" for a reproduction is a sweep that
shows (a) preservation holding at every log size and (b) how the cost of
working over ciphertexts scales.  :func:`preservation_sweep` produces that
series for any measure/scheme pair; the P2 benchmark and the sweep tests are
built on it.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro._utils import format_table
from repro.core.dpe import DistanceMeasure, LogContext, verify_distance_preservation
from repro.core.schemes.base import QueryLogDpeScheme
from repro.exceptions import AnalysisError
from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import WorkloadProfile, populate_database


@dataclass(frozen=True)
class SweepPoint:
    """One point of a preservation/cost sweep."""

    log_size: int
    preserved: bool
    max_deviation: float
    plain_seconds: float
    encrypted_seconds: float
    encryption_seconds: float

    @property
    def overhead(self) -> float:
        """Ciphertext-side distance-matrix cost relative to the plaintext side."""
        if self.plain_seconds == 0:
            return float("inf")
        return self.encrypted_seconds / self.plain_seconds


@dataclass(frozen=True)
class SweepResult:
    """A full sweep: one :class:`SweepPoint` per log size."""

    measure: str
    points: tuple[SweepPoint, ...]

    @property
    def all_preserved(self) -> bool:
        """True if Definition 1 held at every swept size."""
        return all(point.preserved for point in self.points)

    def as_table(self) -> str:
        """Render the sweep as a text table (the 'figure' of the reproduction)."""
        rows = [
            (
                point.log_size,
                "yes" if point.preserved else "NO",
                f"{point.max_deviation:.1e}",
                f"{point.encryption_seconds * 1000:.1f} ms",
                f"{point.plain_seconds * 1000:.1f} ms",
                f"{point.encrypted_seconds * 1000:.1f} ms",
                f"{point.overhead:.2f}x",
            )
            for point in self.points
        ]
        return format_table(
            [
                "log size",
                "preserved",
                "max deviation",
                "log encryption",
                "plaintext matrix",
                "encrypted matrix",
                "overhead",
            ],
            rows,
        )


def preservation_sweep(
    *,
    profile: WorkloadProfile,
    measure: DistanceMeasure,
    scheme_factory: Callable[[], QueryLogDpeScheme],
    sizes: Sequence[int],
    mix: WorkloadMix | None = None,
    seed: int = 0,
    with_database: bool = False,
    with_domains: bool = False,
) -> SweepResult:
    """Sweep the log size and measure preservation plus cost at each point.

    A fresh scheme instance is created per point (via ``scheme_factory``) so
    workload-dependent schemes (access-area) are re-fitted for each log.
    """
    if not sizes:
        raise AnalysisError("sweep needs at least one log size")
    if any(size < 2 for size in sizes):
        raise AnalysisError("sweep sizes must be at least 2 (pairwise distances)")
    mix = mix or WorkloadMix()
    database = populate_database(profile, seed=seed) if with_database else None
    domains = profile.domain_catalog() if with_domains else None

    points: list[SweepPoint] = []
    for size in sizes:
        log = QueryLogGenerator(profile, mix, seed=f"{seed}/{size}").generate(size)
        plain_context = LogContext(log=log, database=database, domains=domains)
        scheme = scheme_factory()

        start = time.perf_counter()
        encrypted_context = scheme.encrypt_context(plain_context)
        encryption_seconds = time.perf_counter() - start

        start = time.perf_counter()
        plain_matrix = measure.distance_matrix(plain_context)
        plain_seconds = time.perf_counter() - start

        start = time.perf_counter()
        encrypted_matrix = measure.distance_matrix(encrypted_context)
        encrypted_seconds = time.perf_counter() - start

        deviation = float(abs(plain_matrix - encrypted_matrix).max())
        points.append(
            SweepPoint(
                log_size=size,
                preserved=deviation <= 1e-9,
                max_deviation=deviation,
                plain_seconds=plain_seconds,
                encrypted_seconds=encrypted_seconds,
                encryption_seconds=encryption_seconds,
            )
        )
    return SweepResult(measure=measure.name, points=tuple(points))
