"""Experiment A1: what happens with *non-appropriate* encryption classes.

Definition 6 picks, per component, a class that (1) ensures the equivalence
notion and (2) has the highest possible security.  The ablation shows that
both conditions matter by evaluating deliberately wrong choices:

* **PROB constants under the token measure** — condition (1) violated: the
  token sets of encrypted queries no longer match, distances change and the
  mining results diverge.
* **Per-attribute DET constant keys under the token measure** — the paper's
  literal high-level scheme; per-query c-equivalence still holds, but the
  same constant compared against different attributes encrypts differently,
  so *pairwise* distances across queries can change.  (This is the refinement
  discussed in :mod:`repro.core.schemes.token_scheme`.)
* **DET constants under the structure measure** — condition (1) still holds
  (features ignore constants), but condition (2) is violated: security drops
  from PROB to DET, measurable as a jump in the frequency-attack recovery
  rate with *no* gain in distance preservation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.query_only import extract_constants, query_only_attack
from repro.core.dpe import LogContext, verify_distance_preservation
from repro.core.measures.structure import StructureDistance
from repro.core.measures.token import TokenDistance
from repro.core.schemes.base import HighLevelSchemeTransformer, QueryLogDpeScheme
from repro.core.schemes.structure_scheme import StructureDpeScheme
from repro.core.schemes.token_scheme import TokenDpeScheme
from repro.crypto.det import DeterministicScheme
from repro.crypto.keys import KeyChain, MasterKey
from repro.crypto.prob import ProbabilisticScheme
from repro.exceptions import DpeError
from repro.sql.ast import Expression, Literal, Query
from repro.sql.log import QueryLog
from repro.sql.visitor import TransformContext
from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import webshop_profile


class ProbTokenScheme(QueryLogDpeScheme):
    """Deliberately wrong: PROB constants for the token measure (A1a)."""

    def __init__(self, keychain: KeyChain) -> None:
        super().__init__(keychain)
        self.measure = TokenDistance()
        self._constant_scheme = ProbabilisticScheme(keychain.key_for("ablation", "prob-token"))

    def _encrypt_literal(self, literal: Literal, context: TransformContext) -> Expression:
        _ = context
        return Literal(self._constant_scheme.encrypt(literal.value))

    def encrypt_query(self, query: Query) -> Query:
        transformer = HighLevelSchemeTransformer(
            query, self.relation_scheme, self.attribute_scheme, self._encrypt_literal
        )
        return transformer.transform_query(query)

    def encrypt_characteristic(self, query, characteristic, context):
        raise DpeError("PROB constants cannot commute with the token characteristic")


class DetStructureScheme(QueryLogDpeScheme):
    """Sub-optimal: DET constants for the structure measure (A1c).

    Preservation still holds (features ignore constants), but the scheme is
    needlessly less secure than the appropriate PROB choice.
    """

    def __init__(self, keychain: KeyChain) -> None:
        super().__init__(keychain)
        self.measure = StructureDistance()
        self._constant_scheme = DeterministicScheme(keychain.key_for("ablation", "det-structure"))

    def _encrypt_literal(self, literal: Literal, context: TransformContext) -> Expression:
        _ = context
        return Literal(self._constant_scheme.encrypt(literal.value))

    def encrypt_query(self, query: Query) -> Query:
        transformer = HighLevelSchemeTransformer(
            query, self.relation_scheme, self.attribute_scheme, self._encrypt_literal
        )
        return transformer.transform_query(query)

    def encrypt_characteristic(self, query, characteristic, context):
        # Same treatment as the proper structure scheme: identifiers only.
        helper = StructureDpeScheme(self.keychain)
        return helper.encrypt_characteristic(query, characteristic, context)


@dataclass(frozen=True)
class AblationCase:
    """One ablation configuration and its measured outcome."""

    name: str
    measure: str
    preservation_max_deviation: float
    preserved: bool
    attack_recovery_rate: float
    #: Distinct ciphertexts / constant occurrences in the encrypted log.
    #: 1.0 means no repetition is visible (PROB); lower values expose the
    #: plaintext frequency histogram (DET).
    distinct_ciphertext_ratio: float
    note: str


@dataclass(frozen=True)
class AblationResult:
    """All ablation cases plus the appropriate-scheme baselines."""

    cases: tuple[AblationCase, ...]

    def case(self, name: str) -> AblationCase:
        """Look up a case by name."""
        for case in self.cases:
            if case.name == name:
                return case
        raise DpeError(f"no ablation case named {name!r}")


def run_ablation(*, log_size: int = 60, seed: int = 11) -> AblationResult:
    """Run all ablation cases on a shared synthetic workload."""
    profile = webshop_profile(customer_rows=40, order_rows=80, product_rows=20)
    log = QueryLogGenerator(profile, WorkloadMix(), seed=seed).generate(log_size)
    context = LogContext(log=log)
    # Worst-case query-only attacker: knows the exact plaintext constant
    # distribution (e.g. last year's unencrypted log of the same system).
    auxiliary_constants = extract_constants(log)

    cases: list[AblationCase] = []

    def evaluate(name: str, scheme: QueryLogDpeScheme, measure, note: str) -> None:
        encrypted_context = LogContext(log=scheme.encrypt_log(log), labels={"encrypted": True})
        report = verify_distance_preservation(measure, context, encrypted_context)
        attack = query_only_attack(encrypted_context.log, auxiliary_constants, plaintext_log=log)
        distinct_ratio = (
            attack.distinct_ciphertexts / attack.constants_seen if attack.constants_seen else 1.0
        )
        cases.append(
            AblationCase(
                name=name,
                measure=measure.name,
                preservation_max_deviation=report.max_absolute_deviation,
                preserved=report.preserved,
                attack_recovery_rate=attack.recovery_rate,
                distinct_ciphertext_ratio=distinct_ratio,
                note=note,
            )
        )

    keychain = lambda label: KeyChain(MasterKey.from_passphrase(f"ablation/{seed}/{label}"))  # noqa: E731

    evaluate(
        "token/DET (appropriate)",
        TokenDpeScheme(keychain("token-det")),
        TokenDistance(),
        "baseline from Table I",
    )
    evaluate(
        "token/DET per-attribute keys",
        TokenDpeScheme(keychain("token-det-per-attr"), per_attribute_constants=True),
        TokenDistance(),
        "paper's literal per-attribute formulation; cross-query consistency lost",
    )
    evaluate(
        "token/PROB (not appropriate)",
        ProbTokenScheme(keychain("token-prob")),
        TokenDistance(),
        "violates token equivalence: condition (1) of Definition 6",
    )
    evaluate(
        "structure/PROB (appropriate)",
        StructureDpeScheme(keychain("structure-prob")),
        StructureDistance(),
        "baseline from Table I",
    )
    evaluate(
        "structure/DET (needlessly weak)",
        DetStructureScheme(keychain("structure-det")),
        StructureDistance(),
        "still preserves distances but violates condition (2): lower security",
    )
    return AblationResult(cases=tuple(cases))
