"""Experiments E1–E4: distance preservation and mining-result equality.

For every measure/scheme pair the experiment builds a plaintext context
(synthetic log, plus database or domains where required), encrypts it with
the scheme, and then checks the paper's two claims:

1. **Definition 1** — the pairwise distance matrices on plaintext and
   ciphertext are identical (``max |d_plain − d_enc| = 0``).
2. **Mining equality** — the distance-based mining algorithms (DBSCAN,
   k-medoids, complete-link clustering, distance-based outliers, k-NN)
   produce the same results on both matrices (ARI = 1, identical outlier
   sets, identical neighbour lists).

The c-equivalence of Definition 2 is checked along the way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dpe import (
    DistanceMeasure,
    LogContext,
    PreservationReport,
    verify_distance_preservation,
)
from repro.core.equivalence import EquivalenceReport, verify_c_equivalence
from repro.core.schemes.base import QueryLogDpeScheme
from repro.api import (
    adjusted_rand_index,
    clusterings_equivalent,
    complete_link,
    cut_dendrogram,
    dbscan,
    distance_based_outliers,
    k_medoids,
    k_nearest_neighbors,
    pairwise_view,
)


@dataclass(frozen=True)
class MiningComparison:
    """Agreement of the mining algorithms on the plaintext vs encrypted matrices."""

    dbscan_ari: float
    dbscan_identical: bool
    kmedoids_ari: float
    kmedoids_identical: bool
    hierarchical_ari: float
    hierarchical_identical: bool
    outliers_identical: bool
    knn_identical: bool

    @property
    def all_identical(self) -> bool:
        """True if every algorithm produced the same result on both sides."""
        return (
            self.dbscan_identical
            and self.kmedoids_identical
            and self.hierarchical_identical
            and self.outliers_identical
            and self.knn_identical
        )


@dataclass(frozen=True)
class PreservationExperiment:
    """Full outcome of one E-experiment."""

    measure: str
    log_size: int
    preservation: PreservationReport
    equivalence: EquivalenceReport
    mining: MiningComparison

    @property
    def reproduces_paper(self) -> bool:
        """True if all three claims hold (the paper's expected outcome)."""
        return self.preservation.preserved and self.equivalence.holds and self.mining.all_identical

    def summary_rows(self) -> list[tuple[str, str]]:
        """Key/value rows for report rendering."""
        return [
            ("measure", self.measure),
            ("log size", str(self.log_size)),
            ("max |d_plain - d_enc|", f"{self.preservation.max_absolute_deviation:.3g}"),
            ("c-equivalence", "holds" if self.equivalence.holds else "violated"),
            ("DBSCAN ARI", f"{self.mining.dbscan_ari:.3f}"),
            ("k-medoids ARI", f"{self.mining.kmedoids_ari:.3f}"),
            ("complete-link ARI", f"{self.mining.hierarchical_ari:.3f}"),
            ("outliers identical", str(self.mining.outliers_identical)),
            ("kNN identical", str(self.mining.knn_identical)),
        ]


def compare_mining(
    plain_matrix: np.ndarray,
    encrypted_matrix: np.ndarray,
    *,
    n_clusters: int = 3,
    knn_k: int = 3,
) -> MiningComparison:
    """Run the mining algorithms on both matrices and compare their outputs.

    Both inputs may be square arrays or condensed
    :class:`~repro.mining.matrix.CondensedDistanceMatrix` instances; the
    heuristics (eps, outlier threshold) are computed from the condensed
    values in a way that reproduces the square-form statistics exactly, so
    results are identical across representations.
    """
    plain_matrix = pairwise_view(plain_matrix)
    encrypted_matrix = pairwise_view(encrypted_matrix)
    n = plain_matrix.n_items
    n_clusters = max(1, min(n_clusters, n))
    knn_k = max(1, min(knn_k, n - 1)) if n > 1 else 1

    # The condensed form holds each off-diagonal value once; the square form
    # holds it twice plus n diagonal zeros.  Repeat/append reproduces the
    # square multiset so median/quantile match the seed's square-form values.
    condensed = plain_matrix.condensed()
    positive = np.repeat(condensed[condensed > 0], 2)
    eps = float(np.median(positive)) if positive.size else 0.5
    min_points = max(2, min(4, n // 5 + 2))

    plain_dbscan = dbscan(plain_matrix, eps=eps, min_points=min_points)
    encrypted_dbscan = dbscan(encrypted_matrix, eps=eps, min_points=min_points)

    plain_kmedoids = k_medoids(plain_matrix, k=n_clusters)
    encrypted_kmedoids = k_medoids(encrypted_matrix, k=n_clusters)

    plain_cut = cut_dendrogram(complete_link(plain_matrix), n_clusters=n_clusters)
    encrypted_cut = cut_dendrogram(complete_link(encrypted_matrix), n_clusters=n_clusters)

    full_multiset = np.concatenate([np.repeat(condensed, 2), np.zeros(n)])
    outlier_d = float(np.quantile(full_multiset, 0.9)) if n > 1 else 0.5
    plain_outliers = distance_based_outliers(plain_matrix, p=0.8, d=outlier_d)
    encrypted_outliers = distance_based_outliers(encrypted_matrix, p=0.8, d=outlier_d)

    knn_identical = True
    if n > 1:
        for index in range(n):
            plain_neighbors = k_nearest_neighbors(plain_matrix, index, k=knn_k)
            encrypted_neighbors = k_nearest_neighbors(encrypted_matrix, index, k=knn_k)
            if plain_neighbors != encrypted_neighbors:
                knn_identical = False
                break

    return MiningComparison(
        dbscan_ari=adjusted_rand_index(plain_dbscan.labels, encrypted_dbscan.labels),
        dbscan_identical=clusterings_equivalent(plain_dbscan.labels, encrypted_dbscan.labels),
        kmedoids_ari=adjusted_rand_index(plain_kmedoids.labels, encrypted_kmedoids.labels),
        kmedoids_identical=clusterings_equivalent(
            plain_kmedoids.labels, encrypted_kmedoids.labels
        ),
        hierarchical_ari=adjusted_rand_index(plain_cut, encrypted_cut),
        hierarchical_identical=clusterings_equivalent(plain_cut, encrypted_cut),
        outliers_identical=plain_outliers.outliers == encrypted_outliers.outliers,
        knn_identical=knn_identical,
    )


def run_preservation_experiment(
    scheme: QueryLogDpeScheme,
    measure: DistanceMeasure,
    plain_context: LogContext,
    *,
    n_clusters: int = 3,
) -> PreservationExperiment:
    """Run one E-experiment for ``scheme``/``measure`` on ``plain_context``."""
    encrypted_context = scheme.encrypt_context(plain_context)
    preservation = verify_distance_preservation(measure, plain_context, encrypted_context)
    equivalence = verify_c_equivalence(scheme, measure, plain_context, encrypted_context)
    # The condensed matrices are memoized by the measure's pipeline, so this
    # reuses the characteristics and distances the verification just computed
    # instead of recomputing the O(n²) loop.
    plain_matrix = measure.condensed_distance_matrix(plain_context)
    encrypted_matrix = measure.condensed_distance_matrix(encrypted_context)
    mining = compare_mining(plain_matrix, encrypted_matrix, n_clusters=n_clusters)
    return PreservationExperiment(
        measure=measure.name,
        log_size=len(plain_context),
        preservation=preservation,
        equivalence=equivalence,
        mining=mining,
    )
