"""Experiment harness: everything needed to regenerate the paper's artefacts.

* :mod:`~repro.analysis.table1` — derive Table I with the KIT-DPE engine and
  compare it against the published table; render Figure 1.
* :mod:`~repro.analysis.preservation` — end-to-end distance-preservation and
  mining-equality experiments (E1–E4).
* :mod:`~repro.analysis.security` — the security comparison between KIT-DPE
  schemes and CryptDB-as-is, backed by attack simulations (S1).
* :mod:`~repro.analysis.ablation` — what breaks when a non-appropriate
  encryption class is chosen (A1).
* :mod:`~repro.analysis.experiments` — the experiment registry mapping
  experiment ids (T1, F1, E1–E4, S1, P1, P2, A1) to runnable functions; the
  benchmark harness and EXPERIMENTS.md are generated from it.
"""

from repro.analysis.ablation import AblationResult, run_ablation
from repro.analysis.experiments import ExperimentOutcome, list_experiments, run_experiment
from repro.analysis.preservation import MiningComparison, PreservationExperiment, run_preservation_experiment
from repro.analysis.security import SecurityComparison, run_security_comparison
from repro.analysis.table1 import derive_table1, expected_table1, render_figure1, table1_matches_paper

__all__ = [
    "AblationResult",
    "ExperimentOutcome",
    "MiningComparison",
    "PreservationExperiment",
    "SecurityComparison",
    "derive_table1",
    "expected_table1",
    "list_experiments",
    "render_figure1",
    "run_ablation",
    "run_experiment",
    "run_preservation_experiment",
    "run_security_comparison",
    "table1_matches_paper",
]
