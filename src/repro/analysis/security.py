"""Experiment S1: security comparison — KIT-DPE schemes vs. CryptDB-as-is.

Section IV-C/IV-D argues that the KIT-DPE schemes are at least as secure as
what CryptDB would expose to serve the same workload, and strictly more
secure for the access-area measure (attributes used only inside aggregate
arguments stay probabilistically encrypted instead of carrying HOM/OPE/DET
onions).  This module makes the comparison concrete on a synthetic workload:

* per attribute, the encryption class an attacker at the provider can see
  under (a) CryptDB serving the workload and (b) the KIT-DPE access-area
  scheme, with the Figure 1 security level of each;
* attack success rates (frequency analysis on constants, sorting attack on
  OPE values) against logs encrypted with the token scheme (DET constants),
  the structure scheme (PROB constants) and the access-area scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._utils import format_table
from repro.api import (
    DEFAULT_BACKEND,
    CryptoConfig,
    EncryptedMiningService,
    ServiceConfig,
)
from repro.attacks.frequency import frequency_analysis_attack
from repro.attacks.order import sorting_attack
from repro.attacks.query_only import extract_constants, query_only_attack
from repro.core.dpe import LogContext
from repro.core.schemes.access_area_scheme import AccessAreaDpeScheme, AttributeUsage
from repro.core.schemes.structure_scheme import StructureDpeScheme
from repro.core.schemes.token_scheme import TokenDpeScheme
from repro.crypto.base import EncryptionClass
from repro.crypto.keys import KeyChain, MasterKey
from repro.crypto.taxonomy import SECURITY_LEVELS
from repro.sql.log import QueryLog
from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import WorkloadProfile, populate_database, webshop_profile

#: Class an attribute's shared content is exposed at under the KIT-DPE
#: access-area scheme, per fitted usage.
_KIT_DPE_CLASS_BY_USAGE: dict[AttributeUsage, EncryptionClass] = {
    AttributeUsage.RANGE: EncryptionClass.OPE,
    AttributeUsage.EQUALITY: EncryptionClass.DET,
    AttributeUsage.AGGREGATE_ONLY: EncryptionClass.PROB,
    AttributeUsage.OTHER: EncryptionClass.PROB,
}


@dataclass(frozen=True)
class AttributeExposure:
    """Per-attribute exposure under both systems."""

    table: str
    attribute: str
    cryptdb_class: EncryptionClass
    cryptdb_level: int
    kitdpe_class: EncryptionClass
    kitdpe_level: int

    @property
    def kitdpe_strictly_better(self) -> bool:
        """True if the KIT-DPE class reveals strictly less than the CryptDB one.

        "Reveals strictly less" is the capability-aware refinement of the
        Figure 1 levels (see
        :meth:`repro.crypto.taxonomy.EncryptionTaxonomy.reveals_strictly_less`):
        a higher level always counts, and within the top level PROB beats HOM
        because HOM ciphertexts additionally permit arithmetic — the paper's
        "via CryptDB, except HOM" argument.
        """
        from repro.crypto.taxonomy import default_taxonomy

        return default_taxonomy().reveals_strictly_less(self.kitdpe_class, self.cryptdb_class)


@dataclass(frozen=True)
class AttackSummary:
    """Recovery rates of the attacks against one scheme's encrypted log."""

    scheme: str
    constant_recovery_rate: float
    distinct_ciphertext_ratio: float


@dataclass(frozen=True)
class SecurityComparison:
    """Full outcome of the S1 experiment."""

    exposures: tuple[AttributeExposure, ...]
    attacks: tuple[AttackSummary, ...]
    ope_sorting_recovery: float

    @property
    def attributes_strictly_better(self) -> int:
        """Number of attributes where KIT-DPE beats CryptDB-as-is."""
        return sum(1 for exposure in self.exposures if exposure.kitdpe_strictly_better)

    @property
    def attributes_worse(self) -> int:
        """Number of attributes where KIT-DPE is less secure (expected: 0)."""
        return sum(
            1 for exposure in self.exposures if exposure.kitdpe_level < exposure.cryptdb_level
        )

    def exposure_table(self) -> str:
        """Render the per-attribute exposure comparison."""
        headers = ["attribute", "CryptDB class", "level", "KIT-DPE class", "level", "better?"]
        rows = [
            (
                f"{e.table}.{e.attribute}",
                e.cryptdb_class.value,
                e.cryptdb_level,
                e.kitdpe_class.value,
                e.kitdpe_level,
                "yes" if e.kitdpe_strictly_better else ("same" if e.kitdpe_level == e.cryptdb_level else "NO"),
            )
            for e in self.exposures
        ]
        return format_table(headers, rows)

    def attack_table(self) -> str:
        """Render the attack-success comparison."""
        headers = ["scheme (constants)", "frequency-attack recovery", "distinct ciphertexts / constants"]
        rows = [
            (a.scheme, f"{a.constant_recovery_rate:.2%}", f"{a.distinct_ciphertext_ratio:.2f}")
            for a in self.attacks
        ]
        return format_table(headers, rows)


def run_security_comparison(
    *,
    profile: WorkloadProfile | None = None,
    log_size: int = 120,
    seed: int = 7,
    passphrase: str = "s1-experiment",
    backend: str = DEFAULT_BACKEND,
) -> SecurityComparison:
    """Run the full S1 comparison on a synthetic analytical workload.

    ``backend`` selects the execution backend the CryptDB-side proxy session
    serves the workload on (``"memory"`` or ``"sqlite"``).  The exposure an
    attacker sees is a function of the *rewrites*, not of the engine, so the
    comparison result is identical across backends — which the differential
    tests assert.
    """
    profile = profile or webshop_profile(customer_rows=60, order_rows=150, product_rows=30)
    database = populate_database(profile, seed=seed)
    log = QueryLogGenerator(profile, WorkloadMix.analytical(), seed=seed).generate(log_size)

    exposures = _exposure_comparison(profile, database, log, passphrase, backend)
    attacks, ope_recovery = _attack_comparison(profile, log, passphrase, seed)
    return SecurityComparison(
        exposures=tuple(exposures), attacks=tuple(attacks), ope_sorting_recovery=ope_recovery
    )


# --------------------------------------------------------------------------- #
# exposure comparison


def _exposure_comparison(profile, database, log: QueryLog, passphrase: str, backend: str):
    # CryptDB-as-is: encrypt the database and *serve* the whole workload
    # through one batched service session; the onion adjustments triggered
    # while rewriting are what the provider sees.  Queries outside the
    # executable fragment are skipped (CryptDB would fall back to
    # client-side evaluation) — recorded under ``session.skipped``.
    service = EncryptedMiningService(
        ServiceConfig(
            crypto=CryptoConfig(passphrase=passphrase + "/cryptdb", paillier_bits=256)
        ),
        join_groups=profile.join_groups(),
    )
    service.encrypt(database)
    with service.open_session(backend=backend, on_unsupported="skip") as session:
        session.run(log.queries)
        cryptdb_report = session.exposure_report()

    # KIT-DPE access-area scheme: the exposed class per attribute follows the
    # fitted usage; nothing else about the attribute is shared.
    kitdpe_keychain = KeyChain(MasterKey.from_passphrase(passphrase + "/kitdpe"))
    scheme = AccessAreaDpeScheme(kitdpe_keychain)
    scheme.fit(log, profile.domain_catalog())

    exposure_by_column = {
        (entry.table, entry.column): entry for entry in cryptdb_report.columns
    }
    exposures = []
    for table in profile.tables:
        for column in table.columns:
            cryptdb_class = exposure_by_column[(table.name, column.name)].weakest_class
            usage = scheme.usage_of(column.name)
            kitdpe_class = _KIT_DPE_CLASS_BY_USAGE[usage]
            exposures.append(
                AttributeExposure(
                    table=table.name,
                    attribute=column.name,
                    cryptdb_class=cryptdb_class,
                    cryptdb_level=SECURITY_LEVELS[cryptdb_class],
                    kitdpe_class=kitdpe_class,
                    kitdpe_level=SECURITY_LEVELS[kitdpe_class],
                )
            )
    return exposures


# --------------------------------------------------------------------------- #
# attack comparison


def _attack_comparison(profile, log: QueryLog, passphrase: str, seed: int):
    # Worst-case query-only attacker: knows the exact plaintext constant
    # distribution (e.g. an older unencrypted log of the same system).  This
    # is the standard assumption under which DET's frequency leakage becomes
    # exploitable while PROB remains at guessing level.
    auxiliary_constants = extract_constants(log)

    summaries = []
    schemes = {
        "token scheme (DET constants)": TokenDpeScheme(
            KeyChain(MasterKey.from_passphrase(passphrase + "/token"))
        ),
        "structure scheme (PROB constants)": StructureDpeScheme(
            KeyChain(MasterKey.from_passphrase(passphrase + "/structure"))
        ),
    }
    access_area = AccessAreaDpeScheme(
        KeyChain(MasterKey.from_passphrase(passphrase + "/access-area"))
    )
    access_area.fit(log, profile.domain_catalog())
    schemes["access-area scheme (per-usage constants)"] = access_area

    for name, scheme in schemes.items():
        encrypted_log = scheme.encrypt_log(log)
        result = query_only_attack(encrypted_log, auxiliary_constants, plaintext_log=log)
        distinct_ratio = (
            result.distinct_ciphertexts / result.constants_seen if result.constants_seen else 0.0
        )
        summaries.append(
            AttackSummary(
                scheme=name,
                constant_recovery_rate=result.recovery_rate,
                distinct_ciphertext_ratio=distinct_ratio,
            )
        )

    # Sorting attack against an OPE-encrypted numeric column of the encrypted
    # database content (what the ORD onion / range constants expose).
    ope_recovery = _ope_sorting_recovery(profile, passphrase, seed)
    return summaries, ope_recovery


def _ope_sorting_recovery(profile, passphrase: str, seed: int) -> float:
    from repro.crypto.ope import OrderPreservingScheme

    numeric_column = None
    for table in profile.tables:
        for column in table.columns:
            if column.type.is_numeric and column.range_candidate:
                numeric_column = column
                break
        if numeric_column is not None:
            break
    if numeric_column is None:
        return 0.0

    rng_values = populate_database(profile, seed=seed)
    values: list[int] = []
    for table in profile.tables:
        if any(c.name == numeric_column.name for c in table.columns):
            values = [
                int(round(float(v) * 100))
                for v in rng_values.table(table.name).column_values(numeric_column.name)
                if v is not None
            ]
            break
    if not values:
        return 0.0
    ope = OrderPreservingScheme(
        KeyChain(MasterKey.from_passphrase(passphrase + "/ope")).key_for("s1", "ope"),
        domain_min=-(2**40),
        domain_max=2**40 - 1,
    )
    ciphertexts = [ope.encrypt(v) for v in values]
    auxiliary = [
        int(round(float(v) * 100))
        for v in populate_database(profile, seed=seed + 99)
        .table(table.name)
        .column_values(numeric_column.name)
        if v is not None
    ]
    result = sorting_attack(ciphertexts, auxiliary, ground_truth=values)
    return result.recovery_rate


__all__ = [
    "AttackSummary",
    "AttributeExposure",
    "SecurityComparison",
    "run_security_comparison",
]
