"""``determinism``: no ambient randomness, wall clocks or set-order leaks.

Bit-for-bit reproducibility is the repository's core oracle — every fast
path, backend and recovery path is tested *equal* to a reference, and that
only works when nothing samples ambient state.  Three sub-checks:

* **unseeded randomness** — calls to the module-level ``random.*``
  functions (the shared, unseeded global RNG) and ``random.Random()``
  without a seed argument are findings anywhere.  ``random.Random(seed)``
  is the sanctioned pattern (pivot selection, window eviction, chaos
  schedules all thread an explicit seed).
* **wall clocks** — ``time.time()`` and ``datetime.now()`` /
  ``utcnow()`` / ``today()`` are findings outside the configured clock-seam
  modules (``repro.reliability``, where the injectable-clock seams are
  *implemented*).  ``time.monotonic``/``time.perf_counter`` are always
  allowed: they measure, they never feed results.
* **set-order leaks** — inside the configured mining merge modules,
  iterating a raw ``set`` (a ``set(...)`` call, a set literal or a set
  comprehension as a ``for``/comprehension iterable) is a finding: CPython
  set order varies with insertion history and hash seeds, so a merge path
  iterating one cannot be bit-for-bit stable.  Sort it first.
"""

from __future__ import annotations

import ast

from repro.analysis.staticcheck.config import LintConfig
from repro.analysis.staticcheck.findings import Finding, finding_for
from repro.analysis.staticcheck.parsing import SourceFile

#: ``random`` module attributes that are fine to use (seeded constructors
#: and OS-entropy sources; everything else is the shared global RNG).
_ALLOWED_RANDOM_ATTRS = frozenset({"Random", "SystemRandom"})

#: ``datetime``/``date`` constructors that read the wall clock.
_WALL_CLOCK_METHODS = frozenset({"now", "utcnow", "today"})


def _dotted(node: ast.expr) -> str | None:
    """Render ``a.b.c`` attribute chains as a dotted string (else ``None``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class DeterminismRule:
    """Checker for unseeded randomness, wall clocks and set-order leaks."""

    name = "determinism"

    def check(self, source: SourceFile, config: LintConfig) -> list[Finding]:
        """Flag ambient-state reads that break bit-for-bit reproducibility."""
        findings: list[Finding] = []
        clock_exempt = config.in_scope(source.module, config.clock_seam_modules)
        check_sets = config.in_scope(source.module, config.ordered_merge_modules)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(node, source, clock_exempt))
            if check_sets:
                findings.extend(self._check_set_iteration(node, source))
        return findings

    # -- randomness and clocks ------------------------------------------- #

    def _check_call(
        self, node: ast.Call, source: SourceFile, clock_exempt: bool
    ) -> list[Finding]:
        dotted = _dotted(node.func)
        if dotted is None:
            return []
        if dotted.startswith("random."):
            attr = dotted.split(".", 1)[1]
            if attr == "Random" and not node.args and not node.keywords:
                return [
                    finding_for(
                        self.name,
                        source.path,
                        node.lineno,
                        "random.Random() without a seed is nondeterministic; "
                        "thread an explicit seed through the call",
                    )
                ]
            if "." not in attr and attr not in _ALLOWED_RANDOM_ATTRS:
                return [
                    finding_for(
                        self.name,
                        source.path,
                        node.lineno,
                        f"random.{attr}() uses the shared unseeded global RNG; "
                        "use a seeded random.Random instance instead",
                    )
                ]
        if clock_exempt:
            return []
        if dotted == "time.time":
            return [
                finding_for(
                    self.name,
                    source.path,
                    node.lineno,
                    "time.time() reads the wall clock; inject a clock through "
                    "the repro.reliability seams (or use time.perf_counter "
                    "for pure measurement)",
                )
            ]
        tail = dotted.rsplit(".", 1)
        if (
            len(tail) == 2
            and tail[1] in _WALL_CLOCK_METHODS
            and (
                tail[0] in ("datetime", "date")
                or tail[0].endswith(".datetime")
                or tail[0].endswith(".date")
            )
        ):
            return [
                finding_for(
                    self.name,
                    source.path,
                    node.lineno,
                    f"{dotted}() reads the wall clock; deterministic paths must "
                    "take timestamps as inputs (see the repro.reliability "
                    "clock-injection seams)",
                )
            ]
        return []

    # -- set-order leaks --------------------------------------------------- #

    @staticmethod
    def _is_raw_set(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def _check_set_iteration(self, node: ast.AST, source: SourceFile) -> list[Finding]:
        iterables: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            iterables.extend(generator.iter for generator in node.generators)
        return [
            finding_for(
                self.name,
                source.path,
                iterable.lineno,
                "iterating a raw set has arbitrary order, which breaks "
                "bit-for-bit merge equality; wrap it in sorted(...)",
            )
            for iterable in iterables
            if self._is_raw_set(iterable)
        ]


__all__ = ["DeterminismRule"]
