"""``layering``: the config-driven import-layer matrix.

Generalizes PR 5's hand-written AST import-ban test: each
:class:`~repro.analysis.staticcheck.config.LayerSpec` names the modules
forming a layer and the import prefixes that layer bans.  A file is checked
against every layer it belongs to, so one file can carry several contracts
(``repro.analysis`` is both an entry point and, transitively, whatever
future specs say about analysis code).

Imports inside ``if TYPE_CHECKING:`` blocks are exempt: they never execute,
so they cannot couple layers at runtime — banning them would only force
string annotations without an architectural gain.
"""

from __future__ import annotations

import ast

from repro.analysis.staticcheck.config import LintConfig
from repro.analysis.staticcheck.findings import Finding, finding_for
from repro.analysis.staticcheck.parsing import SourceFile


def _is_type_checking_test(test: ast.expr) -> bool:
    """True for ``TYPE_CHECKING`` / ``typing.TYPE_CHECKING`` conditions."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def imported_modules(tree: ast.Module) -> list[tuple[str, int]]:
    """Every runtime-imported module in ``tree`` as ``(name, line)`` pairs.

    Walks the full tree (imports inside functions count: a lazy import
    still couples the layers at runtime) but skips ``if TYPE_CHECKING:``
    bodies, which exist only for annotations.
    """
    type_checking_spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            last = node.body[-1]
            end = getattr(last, "end_lineno", None) or last.lineno
            type_checking_spans.append((node.lineno, end))

    def _static(line: int) -> bool:
        return any(start <= line <= end for start, end in type_checking_spans)

    modules: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if not _static(node.lineno):
                    modules.append((alias.name, node.lineno))
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            if not _static(node.lineno):
                modules.append((node.module, node.lineno))
    return modules


class LayeringRule:
    """Checker enforcing the import-layer matrix from the lint config."""

    name = "layering"

    def check(self, source: SourceFile, config: LintConfig) -> list[Finding]:
        """Flag every import of a banned prefix from a layered file."""
        layers = [spec for spec in config.layers if spec.applies_to(source.module)]
        if not layers:
            return []
        findings: list[Finding] = []
        for module, line in imported_modules(source.tree):
            for spec in layers:
                if spec.bans(module):
                    findings.append(
                        finding_for(
                            self.name,
                            source.path,
                            line,
                            f"layer {spec.name!r} must not import {module!r}: {spec.why}",
                        )
                    )
        return findings


__all__ = ["LayeringRule", "imported_modules"]
