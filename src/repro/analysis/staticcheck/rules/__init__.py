"""The five production lint rules, registered on import.

Each rule module defines one :class:`~repro.analysis.staticcheck.checker.Checker`
implementation and registers it under its public name:

* ``layering`` — the config-driven import-layer matrix (entry points →
  ``repro.api`` only; crypto imports nothing above it; reliability never
  reaches into backend internals);
* ``lock-discipline`` — attributes declared ``# guarded-by: <lock>`` may
  only be touched inside ``with self.<lock>`` (or in methods declared
  ``# holds: <lock>``, whose call sites are then checked instead);
* ``determinism`` — no unseeded randomness, no wall clocks outside the
  reliability clock seams, no raw-set iteration in mining merge paths;
* ``oracle-parity`` — every batched crypto fast path keeps its scalar
  ``*_reference`` equality oracle;
* ``exception-policy`` — no bare ``except:``; the ``repro.api`` boundary
  raises only ``ApiError`` subclasses.
"""

from __future__ import annotations

from repro.analysis.staticcheck.checker import register_checker
from repro.analysis.staticcheck.rules.determinism import DeterminismRule
from repro.analysis.staticcheck.rules.exception_policy import ExceptionPolicyRule
from repro.analysis.staticcheck.rules.layering import LayeringRule
from repro.analysis.staticcheck.rules.lock_discipline import LockDisciplineRule
from repro.analysis.staticcheck.rules.oracle_parity import OracleParityRule

_REGISTERED = False


def register_production_rules() -> None:
    """Register the five rules (idempotent; runs once on package import)."""
    global _REGISTERED
    if _REGISTERED:
        return
    register_checker(LayeringRule.name, LayeringRule)
    register_checker(LockDisciplineRule.name, LockDisciplineRule)
    register_checker(DeterminismRule.name, DeterminismRule)
    register_checker(OracleParityRule.name, OracleParityRule)
    register_checker(ExceptionPolicyRule.name, ExceptionPolicyRule)
    _REGISTERED = True


register_production_rules()

__all__ = [
    "DeterminismRule",
    "ExceptionPolicyRule",
    "LayeringRule",
    "LockDisciplineRule",
    "OracleParityRule",
    "register_production_rules",
]
