"""``exception-policy``: no bare excepts; the API boundary raises ApiError.

Two sub-checks:

* **bare except** — ``except:`` catches ``SystemExit``/``KeyboardInterrupt``
  and hides programming errors; it is a finding everywhere.  Catching a
  named exception (including the deliberate, commented
  ``except BaseException`` outcome-recording pattern in the serving layer)
  is untouched — the rule targets the silent catch-all, not broad handling.
* **boundary raises** — inside the configured boundary modules
  (``repro.api``, ``repro.server``), every ``raise Name(...)`` must name an
  :class:`~repro.api.errors.ApiError` subclass from the configured
  allowlist.  Raising a builtin (``ValueError``, ``RuntimeError``, ...)
  there would leak an untyped failure across the façade — exactly what the
  ``wrap_errors`` translation layer exists to prevent.  Bare re-raises
  (``raise``) and raising caught/local variables pass: the rule checks what
  the boundary *originates*, not what it propagates.
"""

from __future__ import annotations

import ast
import builtins

from repro.analysis.staticcheck.config import LintConfig
from repro.analysis.staticcheck.findings import Finding, finding_for
from repro.analysis.staticcheck.parsing import SourceFile

#: Builtin exception names (anything here raised at the boundary is a leak).
_BUILTIN_EXCEPTIONS = frozenset(
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
) - {"NotImplementedError"}  # abstract-seam raises are a documented idiom


class ExceptionPolicyRule:
    """Checker for bare excepts and non-ApiError raises at the API boundary."""

    name = "exception-policy"

    def check(self, source: SourceFile, config: LintConfig) -> list[Finding]:
        """Flag bare excepts everywhere and builtin raises in boundary modules."""
        findings: list[Finding] = []
        boundary = config.in_scope(source.module, config.boundary_modules)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                findings.append(
                    finding_for(
                        self.name,
                        source.path,
                        node.lineno,
                        "bare `except:` swallows SystemExit/KeyboardInterrupt and "
                        "programming errors; name the exception (or `Exception`) "
                        "explicitly",
                    )
                )
            elif boundary and isinstance(node, ast.Raise):
                findings.extend(self._check_boundary_raise(node, source, config))
        return findings

    def _check_boundary_raise(
        self, node: ast.Raise, source: SourceFile, config: LintConfig
    ) -> list[Finding]:
        raised = node.exc
        if raised is None:  # bare re-raise propagates, it does not originate
            return []
        name: str | None = None
        if isinstance(raised, ast.Call) and isinstance(raised.func, ast.Name):
            name = raised.func.id
        elif isinstance(raised, ast.Name):
            name = raised.id
        if name is None or name not in _BUILTIN_EXCEPTIONS:
            return []
        allowed = ", ".join(sorted(config.api_error_names)) or "ApiError subclasses"
        return [
            finding_for(
                self.name,
                source.path,
                node.lineno,
                f"the repro.api boundary must not raise builtin {name}; raise an "
                f"ApiError subclass instead ({allowed})",
            )
        ]


__all__ = ["ExceptionPolicyRule"]
