"""``oracle-parity``: every batched crypto fast path keeps its scalar oracle.

Since PR 1 the repository's discipline for optimizations has been
*differential*: a fast path ships together with a slow, obviously-correct
reference (``distance_matrix_reference``, the ``"memory"`` backend,
``encrypt_reference``), and tests assert bit-for-bit equality.  This rule
pins the convention for :mod:`repro.crypto`, where the fast paths are
hottest and the references easiest to delete by accident.  Two obligations
on every class in the configured crypto modules:

* a public ``*_many`` batch method that does **not** delegate to its scalar
  sibling (``encrypt_many`` calling ``self.encrypt``, or one of the shared
  ``_*_many_deduplicated`` helpers — those loop over the scalar path, so
  the scalar *is* the oracle) re-derives results with different math and
  must therefore have a matching ``*_reference`` sibling in the class
  (``encrypt_many`` -> some ``encrypt*_reference``);
* a class that advertises fast-path counters — it overrides
  ``fast_path_stats`` with a non-empty report — is declaring a fast path
  exists, and must expose at least one ``*_reference`` oracle method.
"""

from __future__ import annotations

import ast

from repro.analysis.staticcheck.config import LintConfig
from repro.analysis.staticcheck.findings import Finding, finding_for
from repro.analysis.staticcheck.parsing import SourceFile

#: Shared batch helpers that loop over the scalar path (delegation markers).
_DEDUP_HELPERS = frozenset(
    {"_encrypt_many_deduplicated", "_decrypt_many_deduplicated"}
)


def _self_calls(node: ast.AST) -> set[str]:
    """Names of every ``self.<name>(...)`` call inside ``node``."""
    calls: set[str] = set()
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and isinstance(child.func.value, ast.Name)
            and child.func.value.id == "self"
        ):
            calls.add(child.func.attr)
    return calls


def _returns_non_empty(function: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True if any ``return`` yields something other than an empty dict."""
    for node in ast.walk(function):
        if isinstance(node, ast.Return) and node.value is not None:
            value = node.value
            if isinstance(value, ast.Dict) and not value.keys:
                continue
            return True
    return False


class OracleParityRule:
    """Checker pairing batched crypto fast paths with ``*_reference`` oracles."""

    name = "oracle-parity"

    def check(self, source: SourceFile, config: LintConfig) -> list[Finding]:
        """Flag crypto classes whose fast paths lost their reference oracle."""
        if not config.in_scope(source.module, config.crypto_modules):
            return []
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(node, source))
        return findings

    def _check_class(self, class_node: ast.ClassDef, source: SourceFile) -> list[Finding]:
        methods = {
            item.name: item
            for item in class_node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        references = [name for name in methods if name.endswith("_reference")]
        findings: list[Finding] = []
        for name, method in methods.items():
            if name.startswith("_") or not name.endswith("_many"):
                continue
            scalar = name[: -len("_many")]
            calls = _self_calls(method)
            if scalar in calls or calls & _DEDUP_HELPERS:
                continue  # delegates to the scalar path: the scalar is the oracle
            if not any(ref.startswith(scalar) for ref in references):
                findings.append(
                    finding_for(
                        self.name,
                        source.path,
                        method.lineno,
                        f"{class_node.name}.{name} is a batched fast path that "
                        f"re-derives results without calling self.{scalar}; keep "
                        f"a scalar {scalar}*_reference equality oracle in the "
                        "class (the differential-testing contract)",
                    )
                )
        stats = methods.get("fast_path_stats")
        if stats is not None and _returns_non_empty(stats) and not references:
            findings.append(
                finding_for(
                    self.name,
                    source.path,
                    stats.lineno,
                    f"{class_node.name} advertises fast-path counters via "
                    "fast_path_stats but defines no *_reference oracle method; "
                    "every crypto fast path keeps its scalar equality oracle",
                )
            )
        return findings


__all__ = ["OracleParityRule"]
