"""``lock-discipline``: guarded attributes are only touched under their lock.

The thread-safety retrofit of PR 6 established a convention: every shared
hot-path attribute has exactly one lock, and every read or write happens
inside ``with self.<lock>:``.  This rule makes the convention checkable.
State is *declared* guarded with a comment on its initializing assignment::

    self._factors: list[int] = []  # guarded-by: _lock

and from then on any ``self._factors`` access outside a ``with self._lock:``
block is a finding.  Two escape hatches keep the rule precise rather than
noisy:

* ``__init__`` is exempt — construction happens-before publication, so the
  initializing writes need no lock;
* a helper that documents "call me with the lock held" declares it with
  ``# holds: <lock>`` on its ``def`` line.  Accesses inside such a method
  are allowed, and the obligation moves to its call sites: calling a
  ``holds`` method outside the lock (and outside ``__init__``) is itself a
  finding — the annotation shifts the proof, it does not drop it.

The analysis is lexical: code inside nested functions and lambdas does not
inherit the enclosing ``with`` (the closure may run on another thread), so
guarded access there is flagged; suppress the line if the closure is
provably same-thread.  The same annotations drive the *runtime*
:class:`~repro.analysis.staticcheck.witness.LockWitness`, which catches
what lexical analysis cannot (locks taken through aliases, cross-object
protocols).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.staticcheck.config import LintConfig
from repro.analysis.staticcheck.findings import Finding, finding_for
from repro.analysis.staticcheck.parsing import SourceFile

#: Comment declaring an attribute guarded: ``# guarded-by: _lock``.
GUARDED_BY_RE = re.compile(r"guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
#: Comment declaring a method that requires its caller to hold a lock.
HOLDS_RE = re.compile(r"holds:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: Methods whose bodies are lock-exempt (construction happens-before
#: publication; finalization happens-after the last reference).
_EXEMPT_METHODS = frozenset({"__init__", "__del__"})


@dataclass(frozen=True)
class ClassGuards:
    """The lock annotations of one class: guarded attrs and holds-methods."""

    #: attribute name -> lock attribute name (``_factors`` -> ``_lock``).
    guarded: dict[str, str] = field(default_factory=dict)
    #: method name -> lock its callers must hold.
    holds: dict[str, str] = field(default_factory=dict)


def _self_attribute(node: ast.expr) -> str | None:
    """The attribute name of a ``self.<name>`` expression, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def collect_guards(class_node: ast.ClassDef, comments: dict[int, str]) -> ClassGuards:
    """Extract ``guarded-by``/``holds`` annotations from one class body."""
    guards = ClassGuards()
    for node in ast.walk(class_node):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            comment = comments.get(node.lineno, "")
            match = GUARDED_BY_RE.search(comment)
            if match is None:
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                attr = _self_attribute(target)
                if attr is not None:
                    guards.guarded[attr] = match.group(1)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            match = HOLDS_RE.search(comments.get(node.lineno, ""))
            if match is not None:
                guards.holds[node.name] = match.group(1)
    return guards


class _MethodVisitor(ast.NodeVisitor):
    """Walk one method body tracking which ``self.<lock>`` locks are held."""

    def __init__(
        self,
        rule: "LockDisciplineRule",
        source: SourceFile,
        guards: ClassGuards,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        self.rule = rule
        self.source = source
        self.guards = guards
        self.method = method
        #: Locks the method body lexically holds at the current node.
        self.held: list[str] = []
        held_on_entry = guards.holds.get(method.name)
        if held_on_entry is not None:
            self.held.append(held_on_entry)
        self.findings: list[Finding] = []

    # -- lock tracking --------------------------------------------------- #

    def _with_locks(self, node: ast.With | ast.AsyncWith) -> list[str]:
        locks = []
        for item in node.items:
            attr = _self_attribute(item.context_expr)
            if attr is not None:
                locks.append(attr)
        return locks

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        locks = self._with_locks(node)
        self.held.extend(locks)
        self.generic_visit(node)
        del self.held[len(self.held) - len(locks) :]

    # -- nested scopes do not inherit the held set ------------------------ #

    def _visit_nested(self, node: ast.AST) -> None:
        outer = self.held
        self.held = []
        self.generic_visit(node)
        self.held = outer

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_nested(node)

    # -- the checks ------------------------------------------------------- #

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attribute(node)
        if attr is not None:
            lock = self.guards.guarded.get(attr)
            if lock is not None and lock not in self.held:
                self.findings.append(
                    finding_for(
                        self.rule.name,
                        self.source.path,
                        node.lineno,
                        f"self.{attr} is guarded-by {lock!r} but accessed in "
                        f"{self.method.name}() without holding it "
                        f"(wrap the access in `with self.{lock}:`)",
                    )
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        callee = _self_attribute(node.func)
        if callee is not None:
            required = self.guards.holds.get(callee)
            if required is not None and required not in self.held:
                self.findings.append(
                    finding_for(
                        self.rule.name,
                        self.source.path,
                        node.lineno,
                        f"self.{callee}() requires its caller to hold "
                        f"{required!r} (declared `# holds: {required}`) but is "
                        f"called in {self.method.name}() without it",
                    )
                )
            # visit arguments but not the already-checked func attribute
            for child in list(node.args) + [kw.value for kw in node.keywords]:
                self.visit(child)
            return
        self.generic_visit(node)


class LockDisciplineRule:
    """Checker enforcing ``# guarded-by`` / ``# holds`` lock annotations."""

    name = "lock-discipline"

    def check(self, source: SourceFile, config: LintConfig) -> list[Finding]:
        """Flag guarded-attribute access (and holds-method calls) outside the lock."""
        del config  # the annotations are the configuration
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            guards = collect_guards(node, source.comments)
            if not guards.guarded and not guards.holds:
                continue
            for method in node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name in _EXEMPT_METHODS:
                    continue
                visitor = _MethodVisitor(self, source, guards, method)
                for statement in method.body:
                    visitor.visit(statement)
                findings.extend(visitor.findings)
        return findings


__all__ = ["ClassGuards", "GUARDED_BY_RE", "HOLDS_RE", "LockDisciplineRule", "collect_guards"]
