"""Per-file parse cache shared by every rule.

Each checked file is read, parsed and comment-tokenized exactly once per
lint run; the resulting :class:`SourceFile` carries the AST, the raw text
and a line -> comment map, so five rules over one file cost one parse.  The
cache also derives the file's *module identity* (``repro.crypto.ope``,
``examples.quickstart``, ...), which is what the layer matrix and the
path-scoped rules match against — rules never re-derive paths themselves.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import AnalysisError


def module_identity(path: Path) -> str:
    """Derive the dotted module identity of a checked file.

    Files under a ``repro`` package directory map to their import path
    (``.../src/repro/crypto/ope.py`` -> ``repro.crypto.ope``); files under
    an ``examples`` directory map to ``examples.<stem>``; anything else is
    just its stem.  Package ``__init__.py`` files map to the package itself.
    The identity is what layer specs and rule scopes match by prefix, so a
    file's obligations follow it even when the repository checkout lives at
    an arbitrary absolute path.
    """
    parts = path.resolve().parts
    stem = path.stem
    for anchor in ("repro", "examples"):
        if anchor in parts[:-1]:
            index = len(parts) - 2 - parts[-2::-1].index(anchor)
            dotted = list(parts[index:-1])
            if stem != "__init__":
                dotted.append(stem)
            return ".".join(dotted)
    return stem


@dataclass(frozen=True)
class SourceFile:
    """One parsed source file: text, AST, comments and module identity."""

    path: Path
    text: str
    tree: ast.Module
    #: Mapping of 1-based line number -> comment text (without the ``#``).
    comments: dict[int, str] = field(repr=False)
    #: Dotted module identity (see :func:`module_identity`).
    module: str = ""

    @property
    def display_path(self) -> str:
        """The POSIX path used in findings."""
        return self.path.as_posix()


def _extract_comments(text: str, path: Path) -> dict[int, str]:
    """Tokenize ``text`` and return every comment keyed by line number."""
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string.lstrip("#").strip()
    except tokenize.TokenError as error:  # pragma: no cover - parse rejects first
        raise AnalysisError(f"cannot tokenize {path}: {error}") from error
    return comments


class SourceCache:
    """Parse each file once and hand the same :class:`SourceFile` to every rule."""

    def __init__(self) -> None:
        self._files: dict[Path, SourceFile] = {}

    def __len__(self) -> int:
        return len(self._files)

    def get(self, path: str | Path) -> SourceFile:
        """The parsed form of ``path`` (cached; a syntax error is a lint error)."""
        resolved = Path(path).resolve()
        cached = self._files.get(resolved)
        if cached is not None:
            return cached
        try:
            text = resolved.read_text(encoding="utf-8")
        except OSError as error:
            raise AnalysisError(f"cannot read {resolved}: {error}") from error
        try:
            tree = ast.parse(text, filename=str(resolved))
        except SyntaxError as error:
            raise AnalysisError(f"cannot parse {resolved}: {error}") from error
        source = SourceFile(
            path=resolved,
            text=text,
            tree=tree,
            comments=_extract_comments(text, resolved),
            module=module_identity(resolved),
        )
        self._files[resolved] = source
        return source


__all__ = ["SourceCache", "SourceFile", "module_identity"]
