"""The :class:`Checker` protocol and the rule registry.

Rules plug into a name -> factory registry exactly like execution backends
do in :mod:`repro.db.backend`: the runner, the CLI and the tests look rules
up by name, never by class, so a new rule is one ``register_checker`` call
away and an unknown rule name fails with the list of available ones.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.exceptions import AnalysisError

if TYPE_CHECKING:
    from repro.analysis.staticcheck.config import LintConfig
    from repro.analysis.staticcheck.findings import Finding
    from repro.analysis.staticcheck.parsing import SourceFile


@runtime_checkable
class Checker(Protocol):
    """One lint rule: a named check over one parsed source file.

    A checker is stateless across files — the runner calls :meth:`check`
    once per file and concatenates the findings, so rules cannot depend on
    file visit order (lint output must be a pure function of the tree).
    """

    #: Registry name of the rule (``"layering"``, ``"lock-discipline"``, ...).
    name: str

    def check(self, source: "SourceFile", config: "LintConfig") -> "list[Finding]":
        """Return every violation of this rule in ``source``."""


CheckerFactory = Callable[[], Checker]

_CHECKERS: dict[str, CheckerFactory] = {}


def register_checker(name: str, factory: CheckerFactory, *, replace: bool = False) -> None:
    """Register a checker factory under ``name``.

    Existing names are protected unless ``replace=True``, so a typo cannot
    silently shadow a production rule (the same contract as
    :func:`repro.db.backend.register_backend`).
    """
    if name in _CHECKERS and not replace:
        raise AnalysisError(f"lint rule {name!r} is already registered")
    _CHECKERS[name] = factory


def available_checkers() -> tuple[str, ...]:
    """Names of all registered rules, in registration order."""
    _ensure_rules_loaded()
    return tuple(_CHECKERS)


def create_checker(name: str) -> Checker:
    """Instantiate the rule registered under ``name``.

    An unknown name raises :class:`~repro.exceptions.AnalysisError` listing
    the registered rules, mirroring
    :func:`repro.db.backend.create_backend`'s actionable-failure contract.
    """
    _ensure_rules_loaded()
    try:
        factory = _CHECKERS[name]
    except KeyError:
        raise AnalysisError(
            f"unknown lint rule {name!r}; available rules: {sorted(_CHECKERS)}"
        ) from None
    return factory()


def _ensure_rules_loaded() -> None:
    """Import the production rules so the registry is populated on first use."""
    import repro.analysis.staticcheck.rules  # noqa: F401  (registers on import)


__all__ = ["Checker", "CheckerFactory", "available_checkers", "create_checker", "register_checker"]
