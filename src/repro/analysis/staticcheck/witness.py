"""Runtime lock witness: deterministic detection of races and deadlocks.

The static ``lock-discipline`` rule proves what it can see lexically; this
module catches the rest *at runtime* under the thread-stress suite.  A
:class:`LockWitness` observes a program through two instruments:

* :class:`WitnessedLock` — a transparent wrapper around a
  ``threading.Lock``/``RLock`` that records, per thread, which witnessed
  locks are held and in which order they nest.  Every time a thread
  acquires lock ``B`` while holding lock ``A``, the witness records the
  edge ``A -> B``; a cycle in the accumulated order graph means two
  threads can nest the same locks in opposite orders — a potential
  deadlock, reported deterministically even when the interleaving that
  would actually deadlock never fired during the run.
* **guarded-attribute watching** — :meth:`LockWitness.watch_instance`
  reads a class's ``# guarded-by:`` annotations (the same ones the static
  rule checks), wraps the named lock attributes and swaps the instance
  onto an instrumented subclass whose ``__getattribute__``/``__setattr__``
  verify the declared lock is held by the current thread on every guarded
  access.  An unguarded touch is recorded as a violation instead of
  raising mid-flight, so one bug cannot cascade into unrelated failures;
  :meth:`LockWitness.check` raises :class:`LockWitnessError` with the full
  list at the end of the run.

Enabled in CI by ``LOCK_WITNESS=1`` under the existing 5x thread-stress
job (see ``tests/conftest.py``), which turns the "run it five times and
hope the race fires" strategy into a deterministic detector: a guarded
access outside its lock is reported on *every* run it executes on, not
only on the runs where the interleaving corrupts state.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
import threading
from collections.abc import Callable, Iterable
from typing import Any

from repro.analysis.staticcheck.parsing import _extract_comments
from repro.analysis.staticcheck.rules.lock_discipline import ClassGuards, collect_guards
from repro.exceptions import AnalysisError


class LockWitnessError(AnalysisError):
    """Raised by :meth:`LockWitness.check` when the run violated lock discipline."""


class WitnessedLock:
    """A lock wrapper that reports acquisitions to its :class:`LockWitness`.

    Supports the context-manager protocol and ``acquire``/``release`` with
    the underlying lock's signature, so it can replace a ``Lock`` or
    ``RLock`` attribute in place.  Re-entrant acquisition is tracked by a
    per-thread depth; only the outermost acquire/release updates the
    witness's nesting state, so an ``RLock`` re-entry never fabricates an
    order edge.
    """

    def __init__(self, inner: Any, name: str, witness: "LockWitness") -> None:
        self._inner = inner
        self.name = name
        self._witness = witness
        #: thread id -> re-entrant hold depth (mutated only by the holding
        #: thread, read by the same thread's guard checks).
        self._depth: dict[int, int] = {}

    def held_by_current_thread(self) -> bool:
        """True if the calling thread currently holds this lock."""
        return self._depth.get(threading.get_ident(), 0) > 0

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        """Acquire the underlying lock, recording the nesting on success."""
        acquired = self._inner.acquire(*args, **kwargs)
        if acquired:
            ident = threading.get_ident()
            depth = self._depth.get(ident, 0)
            self._depth[ident] = depth + 1
            if depth == 0:
                self._witness._note_acquired(self)
        return acquired

    def release(self) -> None:
        """Release the underlying lock, popping the nesting state last."""
        ident = threading.get_ident()
        depth = self._depth.get(ident, 0)
        if depth <= 1:
            self._depth.pop(ident, None)
            self._witness._note_released(self)
        else:
            self._depth[ident] = depth - 1
        self._inner.release()

    def __enter__(self) -> "WitnessedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WitnessedLock({self.name!r})"


def class_guards(cls: type) -> ClassGuards:
    """The ``# guarded-by``/``# holds`` annotations of ``cls``, from source.

    Reuses the static rule's parser over ``inspect.getsource``, so runtime
    witnessing and static checking can never disagree about what is
    guarded.  A class without retrievable source raises
    :class:`~repro.exceptions.AnalysisError` (watching it silently would
    check nothing).
    """
    try:
        source = textwrap.dedent(inspect.getsource(cls))
    except (OSError, TypeError) as error:
        raise AnalysisError(f"cannot read source of {cls.__name__}: {error}") from error
    tree = ast.parse(source)
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == cls.__name__:
            return collect_guards(node, _extract_comments(source, None))  # type: ignore[arg-type]
    raise AnalysisError(f"no class definition found in source of {cls.__name__}")


class LockWitness:
    """Records lock-nesting edges and guarded-access violations per run."""

    def __init__(self) -> None:
        self._state_lock = threading.Lock()
        self._tls = threading.local()
        # Nesting edges (outer lock name, inner lock name) -> observation
        # count, accumulated across all threads.
        self._edges: dict[tuple[str, str], int] = {}  # guarded-by: _state_lock
        self._violations: list[str] = []  # guarded-by: _state_lock
        self._watched_classes: dict[type, type] = {}  # guarded-by: _state_lock

    # -- lock wrapping ----------------------------------------------------- #

    def wrap(self, lock: Any, name: str) -> WitnessedLock:
        """Wrap ``lock`` so its acquisitions are witnessed under ``name``."""
        if isinstance(lock, WitnessedLock):
            return lock
        return WitnessedLock(lock, name, self)

    def _held_stack(self) -> list[WitnessedLock]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _note_acquired(self, lock: WitnessedLock) -> None:
        stack = self._held_stack()
        if stack:
            with self._state_lock:
                for outer in stack:
                    if outer.name != lock.name:
                        edge = (outer.name, lock.name)
                        self._edges[edge] = self._edges.get(edge, 0) + 1
        stack.append(lock)

    def _note_released(self, lock: WitnessedLock) -> None:
        stack = self._held_stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                break

    # -- guarded-attribute watching ---------------------------------------- #

    def watch_instance(self, obj: object, guards: ClassGuards | None = None) -> object:
        """Instrument ``obj`` so guarded-attribute access is verified live.

        Reads the ``# guarded-by`` annotations of ``type(obj)`` (or takes
        them explicitly), replaces each named lock attribute with a
        :class:`WitnessedLock`, and swaps the instance onto an instrumented
        subclass.  Call *after* construction — the initializing writes are
        exempt by the happens-before argument, exactly as in the static
        rule.  Returns ``obj`` for chaining.
        """
        cls = type(obj)
        spec = guards if guards is not None else class_guards(cls)
        if not spec.guarded:
            raise AnalysisError(
                f"{cls.__name__} declares no `# guarded-by:` attributes; "
                "nothing to watch"
            )
        for lock_name in sorted(set(spec.guarded.values())):
            try:
                lock = object.__getattribute__(obj, lock_name)
            except AttributeError:
                continue
            if not isinstance(lock, WitnessedLock):
                object.__setattr__(
                    obj,
                    lock_name,
                    self.wrap(lock, f"{cls.__name__}.{lock_name}#{id(obj):x}"),
                )
        object.__setattr__(obj, "__class__", self._instrumented_class(cls, spec))
        return obj

    def watch_classes(self, classes: Iterable[type]) -> Callable[[], None]:
        """Auto-watch every future exact-type instance of ``classes``.

        Patches each class's ``__init__`` to call :meth:`watch_instance` on
        completion (subclasses are skipped: their own ``__init__`` may
        still be mutating state, and they can be watched separately).
        Returns an uninstaller restoring the original constructors.
        """
        patched: list[tuple[type, Any]] = []
        for cls in classes:
            guards = class_guards(cls)  # fail at install time, not first use
            if not guards.guarded:
                raise AnalysisError(
                    f"{cls.__name__} declares no `# guarded-by:` attributes; "
                    "nothing to watch"
                )
            original_init = cls.__init__
            cls.__init__ = _watching_init(self, cls, original_init, guards)  # type: ignore[method-assign]
            patched.append((cls, original_init))

        def uninstall() -> None:
            for klass, original in patched:
                klass.__init__ = original  # type: ignore[method-assign]

        return uninstall

    def _instrumented_class(self, cls: type, spec: ClassGuards) -> type:
        with self._state_lock:
            cached = self._watched_classes.get(cls)
        if cached is not None:
            return cached
        witness = self
        guarded = dict(spec.guarded)

        def __getattribute__(obj: object, name: str) -> Any:
            if name in guarded:
                witness._check_guard(obj, name, guarded[name])
            return object.__getattribute__(obj, name)

        def __setattr__(obj: object, name: str, value: Any) -> None:
            if name in guarded:
                witness._check_guard(obj, name, guarded[name])
            object.__setattr__(obj, name, value)

        instrumented = type(
            cls.__name__,
            (cls,),
            {
                "__getattribute__": __getattribute__,
                "__setattr__": __setattr__,
                "__module__": cls.__module__,
                "__qualname__": cls.__qualname__,
            },
        )
        with self._state_lock:
            existing = self._watched_classes.setdefault(cls, instrumented)
        return existing

    def _check_guard(self, obj: object, attr: str, lock_name: str) -> None:
        try:
            lock = object.__getattribute__(obj, lock_name)
        except AttributeError:
            return
        if isinstance(lock, WitnessedLock) and not lock.held_by_current_thread():
            cls_name = type(obj).__name__
            self.record_violation(
                f"{cls_name}.{attr} (guarded-by {lock_name}) accessed on thread "
                f"{threading.current_thread().name!r} without holding the lock"
            )

    # -- reporting ---------------------------------------------------------- #

    def record_violation(self, message: str) -> None:
        """Append one violation (deduplicated at :meth:`check` time)."""
        with self._state_lock:
            self._violations.append(message)

    @property
    def violations(self) -> tuple[str, ...]:
        """Every guarded-access violation recorded so far."""
        with self._state_lock:
            return tuple(self._violations)

    def lock_order_edges(self) -> dict[tuple[str, str], int]:
        """The accumulated nesting edges (outer name, inner name) -> count."""
        with self._state_lock:
            return dict(self._edges)

    def find_cycle(self) -> list[str] | None:
        """A lock-order cycle as a name list (``[A, B, A]``), or ``None``.

        Edges are compared by *instance-independent* names (the ``#id``
        suffix stripped), so two code paths nesting the same two lock
        attributes in opposite orders form a cycle even when the stress run
        touched different instances.
        """
        adjacency: dict[str, set[str]] = {}
        for (outer, inner), _count in sorted(self.lock_order_edges().items()):
            adjacency.setdefault(_strip_instance(outer), set()).add(_strip_instance(inner))
        visiting: list[str] = []
        visited: set[str] = set()

        def visit(node: str) -> list[str] | None:
            if node in visiting:
                return visiting[visiting.index(node) :] + [node]
            if node in visited:
                return None
            visiting.append(node)
            for successor in sorted(adjacency.get(node, ())):
                cycle = visit(successor)
                if cycle is not None:
                    return cycle
            visiting.pop()
            visited.add(node)
            return None

        for start in sorted(adjacency):
            cycle = visit(start)
            if cycle is not None:
                return cycle
        return None

    def check(self) -> None:
        """Raise :class:`LockWitnessError` on any violation or order cycle."""
        problems: list[str] = []
        unique = sorted(set(self.violations))
        if unique:
            problems.append(
                f"{len(unique)} distinct guarded-access violations:\n  "
                + "\n  ".join(unique)
            )
        cycle = self.find_cycle()
        if cycle is not None:
            problems.append(
                "lock-order cycle (potential deadlock): " + " -> ".join(cycle)
            )
        if problems:
            raise LockWitnessError("lock witness failed:\n" + "\n".join(problems))

    def reset(self) -> None:
        """Drop every recorded edge and violation (watched classes stay)."""
        with self._state_lock:
            self._edges.clear()
            self._violations.clear()


def _strip_instance(name: str) -> str:
    """Remove the per-instance ``#<id>`` suffix from a witnessed-lock name."""
    return name.split("#", 1)[0]


def _watching_init(
    witness: LockWitness, cls: type, original_init: Any, guards: ClassGuards
) -> Any:
    """Build an ``__init__`` wrapper that watches exact-type instances."""

    def __init__(obj: Any, *args: Any, **kwargs: Any) -> None:
        original_init(obj, *args, **kwargs)
        if type(obj) is cls:
            witness.watch_instance(obj, guards)

    __init__.__wrapped__ = original_init  # type: ignore[attr-defined]
    return __init__


__all__ = ["LockWitness", "LockWitnessError", "WitnessedLock", "class_guards"]
