"""The lint runner behind ``repro lint`` (and the pytest-importable API).

:func:`run_lint` walks the given paths, parses each Python file once, runs
every registered rule over it, applies the inline suppressions and returns
a :class:`LintReport`.  The report is a pure function of the source tree —
findings are sorted, paths normalized — so two runs over the same tree are
byte-identical, and a test can assert on findings exactly.
"""

from __future__ import annotations

import sys
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.staticcheck.checker import available_checkers, create_checker
from repro.analysis.staticcheck.config import LintConfig, default_config
from repro.analysis.staticcheck.findings import Finding, Severity
from repro.analysis.staticcheck.parsing import SourceCache, SourceFile
from repro.analysis.staticcheck.suppress import apply_suppressions
from repro.exceptions import AnalysisError

#: Directory names never descended into when expanding paths.
_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files and directories into a sorted list of ``.py`` files.

    A path that does not exist raises :class:`~repro.exceptions.AnalysisError`
    — a lint run that silently checks nothing is itself a bug.
    """
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIPPED_DIRS.intersection(candidate.parts):
                    files.add(candidate.resolve())
        elif path.is_file():
            files.add(path.resolve())
        else:
            raise AnalysisError(f"lint path {path} does not exist")
    return sorted(files)


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run: findings plus what was checked."""

    findings: tuple[Finding, ...]
    files_checked: int
    rules: tuple[str, ...]

    @property
    def errors(self) -> tuple[Finding, ...]:
        """Findings that fail the run regardless of ``--strict``."""
        return tuple(f for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Finding, ...]:
        """Findings that fail the run only under ``--strict``."""
        return tuple(f for f in self.findings if f.severity is Severity.WARNING)

    def exit_code(self, *, strict: bool = False) -> int:
        """0 when clean, 1 when findings fail under the given strictness."""
        failing = self.findings if strict else self.errors
        return 1 if failing else 0


def run_lint(
    paths: Sequence[str | Path],
    *,
    config: LintConfig | None = None,
    rules: Sequence[str] | None = None,
    cache: SourceCache | None = None,
) -> LintReport:
    """Run the registered rules over ``paths`` and return the report.

    ``rules`` selects a subset by registry name (default: all registered);
    ``config`` defaults to the repository invariant matrix
    (:func:`~repro.analysis.staticcheck.config.default_config`).  Tests
    import this directly — the CLI adds nothing but argument parsing.
    """
    lint_config = config if config is not None else default_config()
    rule_names = tuple(rules) if rules is not None else available_checkers()
    checkers = [create_checker(name) for name in rule_names]
    source_cache = cache if cache is not None else SourceCache()
    sources: list[SourceFile] = []
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        source = source_cache.get(path)
        sources.append(source)
        for checker in checkers:
            findings.extend(checker.check(source, lint_config))
    findings = apply_suppressions(findings, sources)
    return LintReport(
        findings=tuple(sorted(findings)),
        files_checked=len(sources),
        rules=rule_names,
    )


def format_report(report: LintReport, *, strict: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.format() for finding in report.findings]
    errors, warnings = len(report.errors), len(report.warnings)
    mode = " (strict)" if strict else ""
    if report.findings:
        lines.append("")
    lines.append(
        f"repro lint{mode}: {report.files_checked} files checked, "
        f"{errors} errors, {warnings} warnings"
    )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point used by ``repro lint`` (returns the exit code)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Check the project invariants statically (layering, "
        "lock discipline, determinism, oracle parity, exception policy).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "examples"],
        help="files or directories to check (default: src examples)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on warnings too (the CI mode)",
    )
    parser.add_argument(
        "--rule", action="append", dest="rules", metavar="NAME",
        help="run only the named rule (repeatable; default: every rule)",
    )
    arguments = parser.parse_args(argv)
    report = run_lint(arguments.paths, rules=arguments.rules)
    print(format_report(report, strict=arguments.strict))
    return report.exit_code(strict=arguments.strict)


__all__ = ["LintReport", "format_report", "iter_python_files", "main", "run_lint"]


if __name__ == "__main__":  # pragma: no cover - exercised via `repro lint`
    raise SystemExit(main(sys.argv[1:]))
