"""Structured lint results: :class:`Finding` and :class:`Severity`.

Rules never print — they return findings, and the runner decides how to
render and whether to fail.  A finding is identified by ``(rule, path,
line)`` plus a human message; ordering is deterministic (path, line, rule)
so lint output is stable across runs and machines, the same property the
docs generator relies on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from pathlib import Path


class Severity(enum.Enum):
    """How serious a finding is.

    ``ERROR`` findings fail ``repro lint`` unconditionally; ``WARNING``
    findings fail only under ``--strict`` (the CI mode).
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    The dataclass orders by ``(path, line, rule, message)`` so reports are
    deterministic; ``severity`` is excluded from the sort key (it is derived
    from the rule, not part of the location).
    """

    path: str
    line: int
    rule: str
    message: str
    severity: Severity = field(default=Severity.ERROR, compare=False)

    def format(self) -> str:
        """Render as the canonical ``path:line: severity [rule] message`` line."""
        return f"{self.path}:{self.line}: {self.severity.value} [{self.rule}] {self.message}"


def finding_for(
    rule: str,
    path: str | Path,
    line: int,
    message: str,
    *,
    severity: Severity = Severity.ERROR,
) -> Finding:
    """Build a :class:`Finding`, normalizing the path to a POSIX string."""
    return Finding(
        path=Path(path).as_posix(), line=line, rule=rule, message=message, severity=severity
    )


__all__ = ["Finding", "Severity", "finding_for"]
