"""Project-invariant static analysis: the ``repro lint`` checker framework.

PRs 5-9 built a stack whose correctness rests on conventions — entry points
import only :mod:`repro.api`, batched crypto fast paths keep scalar
``*_reference`` oracles, shared hot-path state is only touched under its
lock, deterministic paths never reach for unseeded randomness or wall
clocks.  This subpackage checks those invariants *statically* on every run
instead of hoping a hand-written test or a 5x thread-stress rerun catches a
regression:

* :mod:`~repro.analysis.staticcheck.checker` — the :class:`Checker`
  protocol and its name -> factory registry (the same pattern as
  :mod:`repro.db.backend`), so rules are pluggable and the CLI can list
  them;
* :mod:`~repro.analysis.staticcheck.parsing` — a per-file parse cache
  (AST + comments tokenized once, shared by every rule);
* :mod:`~repro.analysis.staticcheck.findings` — structured
  :class:`Finding` results with rule, path, line, message and severity;
* :mod:`~repro.analysis.staticcheck.suppress` — inline
  ``# repro: ignore[rule]`` suppressions that themselves error when unused;
* :mod:`~repro.analysis.staticcheck.rules` — the five production rules:
  ``layering``, ``lock-discipline``, ``determinism``, ``oracle-parity``
  and ``exception-policy``;
* :mod:`~repro.analysis.staticcheck.runner` — :func:`run_lint`, the
  pytest-importable entry point behind ``repro lint``;
* :mod:`~repro.analysis.staticcheck.witness` — the *runtime* complement:
  a :class:`LockWitness` that records lock-acquisition orders per thread
  and fails on cycles (potential deadlock) and on guarded-attribute access
  without the declared lock held (enabled by ``LOCK_WITNESS=1`` under the
  thread-stress CI job).
"""

from __future__ import annotations

from repro.analysis.staticcheck.checker import (
    Checker,
    available_checkers,
    create_checker,
    register_checker,
)
from repro.analysis.staticcheck.config import LayerSpec, LintConfig, default_config
from repro.analysis.staticcheck.findings import Finding, Severity
from repro.analysis.staticcheck.parsing import SourceCache, SourceFile
from repro.analysis.staticcheck.runner import LintReport, format_report, run_lint
from repro.analysis.staticcheck.witness import LockWitness, LockWitnessError, WitnessedLock

__all__ = [
    "Checker",
    "Finding",
    "LayerSpec",
    "LintConfig",
    "LintReport",
    "LockWitness",
    "LockWitnessError",
    "Severity",
    "SourceCache",
    "SourceFile",
    "WitnessedLock",
    "available_checkers",
    "create_checker",
    "default_config",
    "format_report",
    "register_checker",
    "run_lint",
]
