"""Lint configuration: the project's invariant matrix as data.

The rules are generic AST walkers; *what* they enforce — which modules form
a layer, which imports a layer bans, where wall clocks are legitimate —
lives here as frozen dataclasses, so the invariants are reviewable in one
place and the tests can run the same rules under synthetic configurations.

:func:`default_config` encodes the repository's actual contract:

* **entry points** (``repro.cli``, ``repro.analysis``, ``examples/``) drive
  the stack through :mod:`repro.api` only — the PR 5 import ban, generalized;
* **crypto** is the bottom layer: it imports nothing from the rest of the
  package (in particular never ``repro.mining`` or ``repro.server``);
* **reliability** wraps backends through the
  :mod:`repro.db.backend` registry seam and the public mining/crypto
  surfaces, never through backend internals (executor, sqlite engine,
  database storage);
* wall clocks are confined to the clock-injection seams in
  ``repro.reliability`` (plus ``time.perf_counter`` for measurement, which
  is always allowed — it never feeds results);
* set-iteration order must not leak into the mining merge paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LayerSpec:
    """One row of the import-layer matrix.

    ``members`` are dotted module-identity prefixes (see
    :func:`~repro.analysis.staticcheck.parsing.module_identity`); a file
    belonging to the layer may not import any module matching a ``banned``
    prefix.  ``why`` is echoed in findings so a violation explains the
    architecture rule it broke, not just the import it used.
    """

    name: str
    members: tuple[str, ...]
    banned: tuple[str, ...]
    why: str

    def applies_to(self, module: str) -> bool:
        """True if ``module`` belongs to this layer."""
        return any(module == m or module.startswith(m + ".") for m in self.members)

    def bans(self, imported: str) -> bool:
        """True if importing ``imported`` violates this layer's contract."""
        return any(imported == b or imported.startswith(b + ".") for b in self.banned)


@dataclass(frozen=True)
class LintConfig:
    """Everything the production rules need, as one immutable value."""

    #: The import-layer matrix (the ``layering`` rule).
    layers: tuple[LayerSpec, ...] = ()
    #: Module prefixes where wall clocks are the *implementation* of the
    #: clock-injection seams and therefore legitimate (``determinism``).
    clock_seam_modules: tuple[str, ...] = ()
    #: Module prefixes whose merge paths must not iterate raw sets
    #: (``determinism``).
    ordered_merge_modules: tuple[str, ...] = ()
    #: Module prefixes forming the crypto fast-path layer (``oracle-parity``).
    crypto_modules: tuple[str, ...] = ()
    #: Module prefixes forming the public-API boundary: everything raised
    #: there must derive from ``ApiError`` (``exception-policy``).
    boundary_modules: tuple[str, ...] = ()
    #: Exception names that are known ``ApiError`` subclasses (the
    #: ``exception-policy`` rule's allowlist for boundary raises).
    api_error_names: frozenset[str] = field(default_factory=frozenset)

    def in_scope(self, module: str, prefixes: tuple[str, ...]) -> bool:
        """True if ``module`` matches any of the given dotted prefixes."""
        return any(module == p or module.startswith(p + ".") for p in prefixes)


#: Exception classes exported by ``repro.api.errors`` — the only names the
#: boundary modules may raise (kept in sync by ``tests/staticcheck``).
API_ERROR_NAMES = frozenset(
    {
        "ApiError",
        "CircuitOpen",
        "ConfigError",
        "DeadlineExceeded",
        "QueryRejected",
        "ServerError",
        "ServerOverloaded",
        "ServiceError",
        "SessionError",
        "TamperDetected",
    }
)


def default_config() -> LintConfig:
    """The repository's invariant matrix (what ``repro lint`` enforces)."""
    return LintConfig(
        layers=(
            LayerSpec(
                name="entry-points",
                members=("repro.cli", "repro.__main__", "repro.analysis", "examples"),
                banned=("repro.cryptdb", "repro.db", "repro.mining", "repro.server"),
                why="entry points drive the stack through the repro.api façade only",
            ),
            LayerSpec(
                name="crypto",
                members=("repro.crypto",),
                banned=(
                    "repro.analysis",
                    "repro.api",
                    "repro.attacks",
                    "repro.core",
                    "repro.cryptdb",
                    "repro.db",
                    "repro.mining",
                    "repro.reliability",
                    "repro.server",
                    "repro.sql",
                    "repro.workloads",
                ),
                why="crypto is the bottom layer; it never imports mining, serving "
                "or any other subsystem",
            ),
            LayerSpec(
                name="reliability",
                members=("repro.reliability",),
                banned=(
                    "repro.cryptdb",
                    "repro.db.aggregates",
                    "repro.db.database",
                    "repro.db.executor",
                    "repro.db.expressions",
                    "repro.db.schema",
                    "repro.db.sqlite_backend",
                    "repro.db.table",
                ),
                why="reliability wraps execution backends via the repro.db.backend "
                "registry seam, never their internals",
            ),
        ),
        clock_seam_modules=("repro.reliability",),
        ordered_merge_modules=("repro.mining",),
        crypto_modules=("repro.crypto",),
        boundary_modules=("repro.api", "repro.server"),
        api_error_names=API_ERROR_NAMES,
    )


__all__ = ["API_ERROR_NAMES", "LayerSpec", "LintConfig", "default_config"]
