"""Inline suppressions: ``# repro: ignore[rule]``.

A finding can be silenced *at its line* with a comment naming the rule::

    frobnicate(self._cache)  # repro: ignore[lock-discipline]

Several rules are silenced with one comma-separated comment
(``# repro: ignore[determinism, lock-discipline]``).  Suppressions are
themselves checked: one that silences nothing — the violation was fixed, or
the rule name is misspelled — produces an ``unused-suppression`` error, so
stale escapes cannot accumulate (the linter's own docs-drift contract).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.analysis.staticcheck.findings import Finding, Severity, finding_for
from repro.analysis.staticcheck.parsing import SourceFile

#: The rule name emitted for suppressions that silence nothing.
UNUSED_SUPPRESSION = "unused-suppression"

_IGNORE_RE = re.compile(r"repro:\s*ignore\[([^\]]*)\]")


@dataclass(frozen=True)
class Suppression:
    """One ``# repro: ignore[...]`` comment: its line and the rules it names."""

    path: str
    line: int
    rules: tuple[str, ...]


def suppressions_in(source: SourceFile) -> list[Suppression]:
    """Every suppression comment in ``source``, in line order."""
    found: list[Suppression] = []
    for line, comment in sorted(source.comments.items()):
        match = _IGNORE_RE.search(comment)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        found.append(Suppression(path=source.display_path, line=line, rules=rules))
    return found


def apply_suppressions(
    findings: list[Finding], sources: list[SourceFile]
) -> list[Finding]:
    """Drop suppressed findings; turn unused suppressions into findings.

    A suppression is *used* when at least one finding of a named rule sits
    on its exact line.  Every named rule must earn its keep individually: a
    comment naming two rules where only one fires still errors for the
    other, so a suppression never silently widens.
    """
    suppressions = [s for source in sources for s in suppressions_in(source)]
    by_site = {(s.path, s.line): s for s in suppressions}
    kept: list[Finding] = []
    used: set[tuple[str, int, str]] = set()
    for finding in findings:
        suppression = by_site.get((finding.path, finding.line))
        if suppression is not None and finding.rule in suppression.rules:
            used.add((finding.path, finding.line, finding.rule))
            continue
        kept.append(finding)
    for suppression in suppressions:
        for rule in suppression.rules:
            if (suppression.path, suppression.line, rule) not in used:
                kept.append(
                    finding_for(
                        UNUSED_SUPPRESSION,
                        suppression.path,
                        suppression.line,
                        f"suppression of {rule!r} silences nothing on this line; "
                        "remove it (or fix the rule name)",
                        severity=Severity.ERROR,
                    )
                )
    return kept


__all__ = ["UNUSED_SUPPRESSION", "Suppression", "apply_suppressions", "suppressions_in"]
