"""JOIN and JOIN-OPE: usage modes of DET / OPE for cross-column joins.

The paper (following CryptDB) treats JOIN not as a new cipher but as a
*usage mode*: two columns can be joined over encrypted data iff their values
are encrypted deterministically **under the same key**.  A :class:`JoinGroup`
names such a set of columns; the :class:`JoinScheme` wraps a DET (or OPE, for
JOIN-OPE) scheme whose key is derived from the group name, so every member
column produces compatible ciphertexts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.base import CiphertextKind, EncryptionClass, EncryptionScheme
from repro.crypto.det import DeterministicScheme
from repro.crypto.keys import KeyChain
from repro.crypto.ope import OrderPreservingScheme
from repro.crypto.primitives import SqlValue
from repro.exceptions import EncryptionError


@dataclass
class JoinGroup:
    """A named set of columns that must remain joinable after encryption."""

    name: str
    columns: set[tuple[str, str]] = field(default_factory=set)

    def add(self, table: str, column: str) -> None:
        """Add ``table.column`` to the group."""
        self.columns.add((table, column))

    def contains(self, table: str, column: str) -> bool:
        """Return True if ``table.column`` is a member."""
        return (table, column) in self.columns


class JoinScheme(EncryptionScheme):
    """DET encryption keyed per join group (class JOIN).

    With ``order_preserving=True`` the underlying cipher is OPE instead of
    DET, which yields the JOIN-OPE class (joins plus range predicates across
    the joined columns).
    """

    def __init__(
        self,
        keychain: KeyChain,
        group: JoinGroup,
        *,
        order_preserving: bool = False,
        domain_min: int = -(2**31),
        domain_max: int = 2**31 - 1,
    ) -> None:
        self.group = group
        self._order_preserving = order_preserving
        key = keychain.join_key(group.name)
        if order_preserving:
            self._inner: EncryptionScheme = OrderPreservingScheme(
                key, domain_min=domain_min, domain_max=domain_max
            )
            self.encryption_class = EncryptionClass.JOIN_OPE
            self.preserves_order = True
            self.ciphertext_kind = CiphertextKind.INTEGER
        else:
            self._inner = DeterministicScheme(key)
            self.encryption_class = EncryptionClass.JOIN
            self.preserves_order = False
            self.ciphertext_kind = CiphertextKind.STRING
        self.preserves_equality = True
        self.supports_addition = False
        self.is_probabilistic = False

    def encrypt(self, value: SqlValue) -> object:
        return self._inner.encrypt(value)

    def decrypt(self, ciphertext: object) -> SqlValue:
        return self._inner.decrypt(ciphertext)

    def encrypt_for(self, table: str, column: str, value: SqlValue) -> object:
        """Encrypt a value for a specific member column, validating membership."""
        if not self.group.contains(table, column):
            raise EncryptionError(
                f"column {table}.{column} is not part of join group {self.group.name!r}"
            )
        return self._inner.encrypt(value)
