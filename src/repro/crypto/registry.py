"""Scheme registry: instantiate a concrete scheme for an encryption class.

Step 3 of KIT-DPE ("ensuring the equivalence notions") picks an encryption
*class*; to actually encrypt anything an *instance* of that class is needed.
The registry maps classes to factories so that the DPE schemes and the
CryptDB layer can obtain schemes uniformly, and so that experiments can swap
instances (e.g. a toy Paillier key for fast tests vs. a 2048-bit one).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.crypto.base import EncryptionClass, EncryptionScheme, IdentityScheme
from repro.crypto.det import DeterministicScheme
from repro.crypto.hom import PaillierKeyPair, PaillierScheme
from repro.crypto.keys import KeyChain
from repro.crypto.ope import OrderPreservingScheme
from repro.crypto.prob import ProbabilisticScheme
from repro.exceptions import CryptoError

SchemeFactory = Callable[[bytes], EncryptionScheme]


class SchemeRegistry:
    """Maps encryption classes to scheme factories taking a key."""

    def __init__(self) -> None:
        self._factories: dict[EncryptionClass, SchemeFactory] = {}

    def register(self, encryption_class: EncryptionClass, factory: SchemeFactory) -> None:
        """Register (or replace) the factory for ``encryption_class``."""
        self._factories[encryption_class] = factory

    def supports(self, encryption_class: EncryptionClass) -> bool:
        """Return True if a factory is registered for ``encryption_class``."""
        return encryption_class in self._factories

    def create(self, encryption_class: EncryptionClass, key: bytes) -> EncryptionScheme:
        """Instantiate a scheme of ``encryption_class`` with ``key``."""
        try:
            factory = self._factories[encryption_class]
        except KeyError:
            raise CryptoError(f"no scheme registered for class {encryption_class}") from None
        return factory(key)

    def create_for(
        self, encryption_class: EncryptionClass, keychain: KeyChain, *path: str
    ) -> EncryptionScheme:
        """Instantiate a scheme with a key derived from ``keychain`` at ``path``."""
        return self.create(encryption_class, keychain.key_for(*path, encryption_class.value))


def default_registry(
    *,
    paillier_keypair: PaillierKeyPair | None = None,
    paillier_bits: int = 512,
    paillier_pool_size: int = PaillierScheme.DEFAULT_POOL_SIZE,
    ope_domain: tuple[int, int] = (-(2**31), 2**31 - 1),
) -> SchemeRegistry:
    """Build the default registry with one instance per class of Figure 1.

    Parameters
    ----------
    paillier_keypair:
        Reuse an existing Paillier key pair (key generation dominates set-up
        time); if None a fresh pair with ``paillier_bits`` is generated lazily
        on first use of the HOM class.
    paillier_bits:
        Modulus size for lazily generated Paillier keys.
    paillier_pool_size:
        Blinding factors (``r^n mod n²``) precomputed eagerly when the HOM
        instance is created; size it to the expected batch so
        ``encrypt_many`` stays one multiplication per value.
    ope_domain:
        Inclusive plaintext domain for OPE instances.
    """
    registry = SchemeRegistry()
    registry.register(EncryptionClass.PLAIN, lambda key: IdentityScheme())
    registry.register(EncryptionClass.PROB, ProbabilisticScheme)
    registry.register(EncryptionClass.DET, DeterministicScheme)
    registry.register(
        EncryptionClass.OPE,
        lambda key: OrderPreservingScheme(
            key, domain_min=ope_domain[0], domain_max=ope_domain[1]
        ),
    )
    registry.register(EncryptionClass.JOIN, DeterministicScheme)
    registry.register(
        EncryptionClass.JOIN_OPE,
        lambda key: OrderPreservingScheme(
            key, domain_min=ope_domain[0], domain_max=ope_domain[1]
        ),
    )

    paillier_cache: dict[str, PaillierScheme] = {}

    def make_paillier(key: bytes) -> EncryptionScheme:
        # The HOM scheme is asymmetric: the key argument is ignored and a
        # single key pair is shared across uses, which matches how CryptDB
        # provisions its HOM onion (one Paillier key per principal).
        _ = key
        if "scheme" not in paillier_cache:
            keypair = paillier_keypair or PaillierKeyPair.generate(paillier_bits)
            paillier_cache["scheme"] = PaillierScheme(keypair, pool_size=paillier_pool_size)
        return paillier_cache["scheme"]

    registry.register(EncryptionClass.HOM, make_paillier)
    return registry
