"""The encryption-class taxonomy of Figure 1, as an executable artefact.

Figure 1 of the paper arranges the property-preserving encryption classes on
security levels (higher is better) with subclass arrows::

    level 3 (most secure):  PROB      HOM  (HOM -> PROB)
    level 2:                DET       JOIN (JOIN is a usage mode of DET)
    level 1 (least secure): OPE       JOIN-OPE (OPE -> DET, JOIN-OPE -> JOIN)

Definition 6 ("appropriate encryption class") selects, among the classes that
ensure a given equivalence notion, one with the *highest possible security*
according to this taxonomy.  :class:`EncryptionTaxonomy` encodes the levels
and subclass edges (as a :mod:`networkx` DiGraph) and provides exactly that
selection primitive, plus the comparisons the security-assessment step and
the experiments need.
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx

from repro.crypto.base import EncryptionClass
from repro.exceptions import TaxonomyError

#: Security level per class; higher numbers mean "more secure" (Figure 1 rows).
SECURITY_LEVELS: dict[EncryptionClass, int] = {
    EncryptionClass.PROB: 3,
    EncryptionClass.HOM: 3,
    EncryptionClass.DET: 2,
    EncryptionClass.JOIN: 2,
    EncryptionClass.OPE: 1,
    EncryptionClass.JOIN_OPE: 1,
    EncryptionClass.PLAIN: 0,
}

#: What an adversary holding only ciphertexts of a class can do with them.
#: This "revealed capability" view refines the coarse level ranking: within a
#: level the paper declines to rank classes, but a class whose capability set
#: is a strict subset of another's reveals strictly less (e.g. PROB vs HOM —
#: the basis of the "via CryptDB, except HOM" security argument).
REVEALED_CAPABILITIES: dict[EncryptionClass, frozenset[str]] = {
    EncryptionClass.PROB: frozenset(),
    EncryptionClass.HOM: frozenset({"addition"}),
    EncryptionClass.DET: frozenset({"equality"}),
    EncryptionClass.JOIN: frozenset({"equality", "cross-column equality"}),
    EncryptionClass.OPE: frozenset({"equality", "order"}),
    EncryptionClass.JOIN_OPE: frozenset({"equality", "cross-column equality", "order"}),
    EncryptionClass.PLAIN: frozenset({"equality", "order", "addition", "plaintext"}),
}

#: Subclass edges (child, parent): child is a subclass / usage mode of parent.
SUBCLASS_EDGES: tuple[tuple[EncryptionClass, EncryptionClass], ...] = (
    (EncryptionClass.HOM, EncryptionClass.PROB),
    (EncryptionClass.OPE, EncryptionClass.DET),
    (EncryptionClass.JOIN, EncryptionClass.DET),
    (EncryptionClass.JOIN_OPE, EncryptionClass.JOIN),
    (EncryptionClass.JOIN_OPE, EncryptionClass.OPE),
)


class EncryptionTaxonomy:
    """Security levels and subclass relation over encryption classes."""

    def __init__(
        self,
        levels: dict[EncryptionClass, int] | None = None,
        subclass_edges: Iterable[tuple[EncryptionClass, EncryptionClass]] | None = None,
    ) -> None:
        self._levels = dict(SECURITY_LEVELS if levels is None else levels)
        edges = tuple(SUBCLASS_EDGES if subclass_edges is None else subclass_edges)
        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(self._levels)
        for child, parent in edges:
            if child not in self._levels or parent not in self._levels:
                raise TaxonomyError(f"subclass edge {child} -> {parent} uses unknown class")
            self._graph.add_edge(child, parent)
        if not nx.is_directed_acyclic_graph(self._graph):
            raise TaxonomyError("subclass relation must be acyclic")

    # -- structure ----------------------------------------------------------- #

    @property
    def classes(self) -> tuple[EncryptionClass, ...]:
        """All classes known to the taxonomy."""
        return tuple(self._levels)

    def security_level(self, encryption_class: EncryptionClass) -> int:
        """The security level (Figure 1 row) of ``encryption_class``."""
        try:
            return self._levels[encryption_class]
        except KeyError:
            raise TaxonomyError(f"unknown encryption class {encryption_class}") from None

    def is_subclass(self, child: EncryptionClass, parent: EncryptionClass) -> bool:
        """True if ``child`` is (transitively) a subclass/usage mode of ``parent``."""
        if child == parent:
            return True
        return nx.has_path(self._graph, child, parent)

    def superclasses(self, encryption_class: EncryptionClass) -> frozenset[EncryptionClass]:
        """All classes that ``encryption_class`` is a subclass of (including itself)."""
        return frozenset({encryption_class} | nx.descendants(self._graph, encryption_class))

    def subclasses(self, encryption_class: EncryptionClass) -> frozenset[EncryptionClass]:
        """All subclasses of ``encryption_class`` (including itself)."""
        return frozenset({encryption_class} | nx.ancestors(self._graph, encryption_class))

    # -- comparisons ---------------------------------------------------------- #

    def more_secure(self, a: EncryptionClass, b: EncryptionClass) -> bool:
        """True if class ``a`` sits on a strictly higher security level than ``b``.

        Classes on the same level are incomparable ("a security ranking is
        not possible", Section II-2), so this is a strict partial order on
        levels.
        """
        return self.security_level(a) > self.security_level(b)

    def at_least_as_secure(self, a: EncryptionClass, b: EncryptionClass) -> bool:
        """True if ``a``'s level is greater than or equal to ``b``'s."""
        return self.security_level(a) >= self.security_level(b)

    def revealed_capabilities(self, encryption_class: EncryptionClass) -> frozenset[str]:
        """The operations an adversary can perform on ciphertexts of this class."""
        try:
            return REVEALED_CAPABILITIES[encryption_class]
        except KeyError:
            raise TaxonomyError(f"unknown encryption class {encryption_class}") from None

    def reveals_strictly_less(self, a: EncryptionClass, b: EncryptionClass) -> bool:
        """True if ``a`` reveals strictly less to an adversary than ``b``.

        Holds when ``a`` sits on a strictly higher security level, or when the
        two are on the same level but ``a``'s revealed-capability set is a
        strict subset of ``b``'s (e.g. PROB reveals strictly less than HOM).
        """
        if self.more_secure(a, b):
            return True
        if self.security_level(a) != self.security_level(b):
            return False
        capabilities_a = self.revealed_capabilities(a)
        capabilities_b = self.revealed_capabilities(b)
        return capabilities_a < capabilities_b

    def most_secure(self, candidates: Iterable[EncryptionClass]) -> list[EncryptionClass]:
        """Return the candidates with the maximal security level.

        This is the core of Definition 6: among the classes that ensure an
        equivalence notion, the appropriate ones are those providing the
        highest possible security.  Several classes can tie (e.g. PROB and
        HOM), in which case all of them are returned and the caller picks by
        secondary criteria (functionality needed by the query workload).
        """
        candidate_list = list(candidates)
        if not candidate_list:
            raise TaxonomyError("cannot pick the most secure class from an empty set")
        best = max(self.security_level(c) for c in candidate_list)
        return [c for c in candidate_list if self.security_level(c) == best]

    def to_figure(self) -> str:
        """Render the taxonomy as the text diagram of Figure 1."""
        by_level: dict[int, list[EncryptionClass]] = {}
        for encryption_class, level in self._levels.items():
            if encryption_class is EncryptionClass.PLAIN:
                continue
            by_level.setdefault(level, []).append(encryption_class)
        lines = ["security (higher is better)"]
        for level in sorted(by_level, reverse=True):
            names = "   ".join(sorted(c.value for c in by_level[level]))
            lines.append(f"  level {level}:  {names}")
        lines.append("subclass edges: " + ", ".join(
            f"{child.value} -> {parent.value}" for child, parent in SUBCLASS_EDGES
        ))
        return "\n".join(lines)


_DEFAULT = EncryptionTaxonomy()


def default_taxonomy() -> EncryptionTaxonomy:
    """Return the shared default taxonomy instance (Figure 1 as published)."""
    return _DEFAULT
