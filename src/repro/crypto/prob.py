"""PROB: randomized (probabilistic) symmetric encryption.

The scheme is AES-256-CTR with a fresh random 16-byte nonce per encryption
plus an HMAC-SHA256 authentication tag (encrypt-then-MAC).  Two encryptions
of the same value therefore produce different ciphertexts, which is exactly
the PROB property of Figure 1: nothing beyond (approximate) length leaks.

Ciphertext layout: ``nonce (16) || body || tag (16)`` hex-encoded with an
``prob:`` prefix so ciphertexts are printable and can be embedded in
encrypted query strings / encrypted tables as opaque string values.
"""

from __future__ import annotations

import hmac
import hashlib

from repro.crypto.base import CiphertextKind, EncryptionClass, EncryptionScheme
from repro.crypto.primitives import (
    SqlValue,
    aes_ctr_transform,
    decode_value,
    derive_key,
    encode_value,
    random_bytes,
)
from repro.exceptions import DecryptionError, KeyError_

_PREFIX = "prob:"
_TAG_LENGTH = 16


class ProbabilisticScheme(EncryptionScheme):
    """Randomized AES-CTR + HMAC encryption of SQL values (class PROB)."""

    encryption_class = EncryptionClass.PROB
    preserves_equality = False
    preserves_order = False
    supports_addition = False
    is_probabilistic = True
    ciphertext_kind = CiphertextKind.STRING

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise KeyError_("PROB key must be at least 16 bytes")
        self._enc_key = derive_key(key, "prob-enc", 32)
        self._mac_key = derive_key(key, "prob-mac", 32)

    def encrypt(self, value: SqlValue) -> str:
        nonce = random_bytes(16)
        body = aes_ctr_transform(self._enc_key, nonce, encode_value(value))
        tag = self._tag(nonce + body)
        return _PREFIX + (nonce + body + tag).hex()

    def decrypt(self, ciphertext: object) -> SqlValue:
        raw = _unwrap(ciphertext)
        if len(raw) < 16 + _TAG_LENGTH:
            raise DecryptionError("PROB ciphertext too short")
        nonce, body, tag = raw[:16], raw[16:-_TAG_LENGTH], raw[-_TAG_LENGTH:]
        if not hmac.compare_digest(tag, self._tag(nonce + body)):
            raise DecryptionError("PROB ciphertext failed authentication")
        return decode_value(aes_ctr_transform(self._enc_key, nonce, body))

    def _tag(self, data: bytes) -> bytes:
        return hmac.new(self._mac_key, data, hashlib.sha256).digest()[:_TAG_LENGTH]


def _unwrap(ciphertext: object) -> bytes:
    if not isinstance(ciphertext, str) or not ciphertext.startswith(_PREFIX):
        raise DecryptionError("not a PROB ciphertext")
    try:
        return bytes.fromhex(ciphertext[len(_PREFIX) :])
    except ValueError as exc:
        raise DecryptionError("malformed PROB ciphertext") from exc
