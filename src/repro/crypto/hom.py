"""HOM: additively homomorphic encryption (Paillier), batch-first.

Implemented from scratch (the environment has no Paillier library): key
generation with Miller–Rabin prime search, encryption ``c = (n+1)^m · r^n
mod n²`` and decryption via the standard ``L`` function.  The scheme is
probabilistic (HOM is a subclass of PROB in Figure 1) and supports

* addition of two ciphertexts (``Enc(a) ⊕ Enc(b) = Enc(a + b)``),
* addition of a plaintext constant, and
* multiplication by a plaintext constant,

which is what CryptDB's HOM onion uses to evaluate ``SUM``/``AVG`` over
encrypted data.  Negative integers and fixed-point reals are supported by
encoding into ``Z_n`` with a configurable scaling factor.

The hot paths use the classic CryptDB-era optimizations, each kept honest by
a scalar ``*_reference`` oracle (the seed implementation, bit-for-bit):

* **binomial shortcut** — with ``g = n + 1``, the expensive
  ``pow(g, m, n²)`` collapses to ``(1 + m·n) mod n²`` (all higher binomial
  terms vanish mod ``n²``), so the message part of a ciphertext is one
  multiplication;
* **noise pool** — the blinding factors ``r^n mod n²`` do not depend on the
  message, so :class:`PaillierNoisePool` precomputes them (eagerly at scheme
  construction, refillable in the background for streaming sessions) and
  :meth:`PaillierScheme.encrypt_raw` becomes a single modular
  multiplication;
* **CRT decryption** — the private key keeps the factors ``p``/``q``, so
  decryption works mod ``p²`` and ``q²`` (half-size exponents *and* moduli)
  and recombines with Garner's formula, ~4× over the one-big-``pow``
  ``L``-function path.

``encrypt_many``/``decrypt_many`` batch the column-wise database-encryption
and result-decryption paths on top of these shortcuts.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.crypto.base import CiphertextKind, EncryptionClass, EncryptionScheme
from repro.crypto.primitives import SqlValue, generate_prime, modular_inverse, random_bytes
from repro.exceptions import DecryptionError, EncryptionError


@dataclass(frozen=True)
class PaillierPublicKey:
    """Paillier public key (modulus ``n`` and generator ``g = n + 1``)."""

    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def g(self) -> int:
        return self.n + 1

    @property
    def bits(self) -> int:
        """Size of the modulus in bits."""
        return self.n.bit_length()


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Paillier private key (``λ = lcm(p-1, q-1)`` and ``µ = L(g^λ)^-1``).

    When the prime factors ``p``/``q`` are present (they are for every key
    produced by :meth:`PaillierKeyPair.generate`), decryption takes the CRT
    fast path; a key carrying only ``(λ, µ)`` still decrypts through the
    reference ``L``-function path.
    """

    lam: int
    mu: int
    p: int = 0
    q: int = 0

    @property
    def has_crt(self) -> bool:
        """True if the factors are available for CRT decryption."""
        return self.p > 1 and self.q > 1


@dataclass(frozen=True)
class PaillierKeyPair:
    """A public/private Paillier key pair."""

    public: PaillierPublicKey
    private: PaillierPrivateKey

    @classmethod
    def generate(cls, bits: int = 1024) -> "PaillierKeyPair":
        """Generate a key pair with an (approximately) ``bits``-bit modulus.

        1024 bits is adequate for the reproduction experiments; tests use
        smaller moduli for speed.  The private key keeps ``p`` and ``q`` so
        decryption can run mod ``p²``/``q²`` and recombine (CRT).
        """
        if bits < 64:
            raise EncryptionError("Paillier modulus must be at least 64 bits")
        half = bits // 2
        while True:
            p = generate_prime(half)
            q = generate_prime(bits - half)
            if p != q:
                n = p * q
                if n.bit_length() >= bits - 1:
                    break
        lam = _lcm(p - 1, q - 1)
        public = PaillierPublicKey(n)
        mu = modular_inverse(_l_function(pow(public.g, lam, public.n_squared), n), n)
        return cls(public, PaillierPrivateKey(lam, mu, p, q))


@dataclass(frozen=True)
class PaillierCiphertext:
    """A Paillier ciphertext bound to its public key."""

    value: int
    public_key: PaillierPublicKey

    def __add__(self, other: "PaillierCiphertext | int") -> "PaillierCiphertext":
        """Homomorphic addition with another ciphertext or a plaintext integer."""
        n_sq = self.public_key.n_squared
        if isinstance(other, PaillierCiphertext):
            if other.public_key != self.public_key:
                raise EncryptionError("cannot add ciphertexts under different keys")
            return PaillierCiphertext((self.value * other.value) % n_sq, self.public_key)
        if isinstance(other, int) and not isinstance(other, bool):
            n = self.public_key.n
            # Binomial shortcut: g^m = (n+1)^m = 1 + m·n (mod n²).
            factor = (1 + (other % n) * n) % n_sq
            return PaillierCiphertext((self.value * factor) % n_sq, self.public_key)
        return NotImplemented

    __radd__ = __add__

    def __mul__(self, scalar: int) -> "PaillierCiphertext":
        """Homomorphic multiplication by a plaintext integer."""
        if isinstance(scalar, bool) or not isinstance(scalar, int):
            return NotImplemented
        encoded = scalar % self.public_key.n
        return PaillierCiphertext(
            pow(self.value, encoded, self.public_key.n_squared), self.public_key
        )

    __rmul__ = __mul__


class NoiseRefillHandle:
    """A joinable handle to one background noise-pool refill.

    :meth:`PaillierNoisePool.refill_async` used to hand back the raw daemon
    ``threading.Thread``, which made failures invisible: an exception inside
    the refill died with the thread, and tests had no deterministic way to
    tell "finished" from "still running" (``Thread.join`` returns ``None``
    either way).  The handle fixes both — it records the refill's exception,
    and :meth:`join` returns whether the refill actually completed within the
    timeout — while keeping the ``join``/``is_alive`` names existing callers
    use on the thread object.

    The worker auto-retries failed refills up to ``retries`` times (with a
    small linear backoff through the injectable ``sleep``) before recording
    the error, so a single transient fault — a blip in the entropy source,
    an injected I/O error — no longer poisons the *next* ``stream`` call
    that joins the handle.  Only exhausted budgets surface.
    """

    def __init__(
        self,
        target: Callable[[], None],
        *,
        retries: int = 2,
        backoff: float = 0.01,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if retries < 0:
            raise EncryptionError("refill retries must not be negative")
        self._error: BaseException | None = None
        self._attempts = 0

        def run() -> None:
            for attempt in range(retries + 1):
                self._attempts = attempt + 1
                try:
                    target()
                except BaseException as exc:  # noqa: BLE001 - recorded, re-raised via raise_if_failed
                    if attempt >= retries:
                        self._error = exc
                        return
                    if backoff > 0:
                        sleep(backoff * (attempt + 1))
                else:
                    return

        self._thread = threading.Thread(target=run, name="paillier-noise-refill", daemon=True)

    @property
    def attempts(self) -> int:
        """How many refill attempts the worker has made so far."""
        return self._attempts

    def start(self) -> None:
        """Start the underlying daemon thread (called once by the pool)."""
        self._thread.start()

    def join(self, timeout: float | None = None) -> bool:
        """Wait for the refill; ``True`` iff it finished within ``timeout``.

        Unlike ``Thread.join`` (which returns ``None``), the boolean makes
        timeout-based tests deterministic: ``assert handle.join(timeout=30)``
        fails loudly instead of silently proceeding against a live refill.
        """
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def is_alive(self) -> bool:
        """Whether the refill thread is still running."""
        return self._thread.is_alive()

    @property
    def error(self) -> BaseException | None:
        """The exception the refill died with, or ``None``."""
        return self._error

    def raise_if_failed(self) -> None:
        """Re-raise the refill's exception, if it recorded one.

        Callers that scheduled a refill fire-and-forget (streaming sessions)
        call this at their next synchronization point so background failures
        surface on the foreground thread instead of being swallowed.
        """
        if self._error is not None:
            raise self._error


class PaillierNoisePool:
    """A pool of precomputed Paillier blinding factors ``r^n mod n²``.

    The blinding factor of a Paillier ciphertext is independent of the
    message, so the expensive ``pow(r, n, n²)`` can be paid ahead of time:
    the pool is filled eagerly when a :class:`PaillierScheme` is constructed
    and can be refilled — synchronously via :meth:`ensure`/:meth:`refill`,
    or in a background thread via :meth:`refill_async` while a streaming
    session is busy elsewhere.  Each factor is served exactly once
    (:meth:`take` pops), preserving the probabilistic-encryption guarantee;
    an empty pool falls back to computing a fresh factor on demand.

    The pool is thread-safe (one lock around the free list *and* the
    counters — ``precomputed``, ``served_from_pool``, ``served_on_demand``
    are all updated under it, so concurrent tenant threads never lose
    increments) and exposes the counters through :meth:`stats`.
    """

    def __init__(self, public_key: PaillierPublicKey, *, size: int = 64, eager: bool = True) -> None:
        if size < 0:
            raise EncryptionError("noise pool size must not be negative")
        self._public = public_key
        self._target_size = size
        self._factors: list[int] = []  # guarded-by: _lock
        self._lock = threading.Lock()
        self._refill_handle: NoiseRefillHandle | None = None  # guarded-by: _lock
        self.precomputed = 0  # guarded-by: _lock
        self.served_from_pool = 0  # guarded-by: _lock
        self.served_on_demand = 0  # guarded-by: _lock
        if eager:
            self.refill()

    @property
    def target_size(self) -> int:
        """The size :meth:`refill` fills back up to."""
        return self._target_size

    def __len__(self) -> int:
        with self._lock:
            return len(self._factors)

    def _fresh_factor(self) -> int:
        n, n_sq = self._public.n, self._public.n_squared
        while True:
            r = int.from_bytes(random_bytes((n.bit_length() + 7) // 8), "big") % n
            if r != 0 and _gcd(r, n) == 1:
                return pow(r, n, n_sq)

    def take(self) -> int:
        """Pop one blinding factor (falls back to on-demand computation)."""
        with self._lock:
            if self._factors:
                self.served_from_pool += 1
                return self._factors.pop()
            # Count the fallback under the same lock; the (slow) modular
            # exponentiation itself runs outside it.
            self.served_on_demand += 1
        return self._fresh_factor()

    def ensure(self, count: int) -> None:
        """Precompute factors until at least ``count`` are pooled."""
        while True:
            with self._lock:
                missing = count - len(self._factors)
            if missing <= 0:
                return
            fresh = [self._fresh_factor() for _ in range(missing)]
            with self._lock:
                self._factors.extend(fresh)
                self.precomputed += len(fresh)

    def refill(self) -> None:
        """Fill the pool back up to its target size (synchronously)."""
        self.ensure(self._target_size)

    def refill_async(self, *, retries: int = 2) -> NoiseRefillHandle:
        """Refill up to the target size in a daemon thread.

        Streaming sessions call this between batches so blinding factors are
        regenerated while the proxy is rewriting/mining; repeated calls while
        a refill is already running return the running handle.  The returned
        :class:`NoiseRefillHandle` supports ``join(timeout=...) -> bool`` for
        deterministic tests and records the refill's exception so callers can
        surface it (:meth:`NoiseRefillHandle.raise_if_failed`) instead of it
        dying silently in the daemon thread.  The worker retries a failed
        refill up to ``retries`` times before recording the error, so one
        transient fault does not poison the next stream batch.
        """
        with self._lock:
            if self._refill_handle is not None and self._refill_handle.is_alive():
                return self._refill_handle
            handle = NoiseRefillHandle(self.refill, retries=retries)
            self._refill_handle = handle
            # Start under the lock: a created-but-unstarted thread reports
            # is_alive() == False, so a concurrent caller would spawn a
            # duplicate refill if we released first.
            handle.start()
        return handle

    def stats(self) -> dict[str, int]:
        """Pool counters (pooled now, precomputed/served totals).

        Read under the lock so a snapshot taken while other threads encrypt
        is internally consistent.
        """
        with self._lock:
            return {
                "pooled": len(self._factors),
                "target_size": self._target_size,
                "precomputed": self.precomputed,
                "served_from_pool": self.served_from_pool,
                "served_on_demand": self.served_on_demand,
            }


class PaillierScheme(EncryptionScheme):
    """Paillier encryption of SQL numeric values (class HOM ⊂ PROB).

    Encryption takes the binomial + noise-pool fast path (one modular
    multiplication per value once the pool is warm) and decryption the CRT
    fast path; :meth:`encrypt_raw_reference`/:meth:`decrypt_raw_reference`
    keep the seed's scalar implementations as equality oracles, mirroring
    ``distance_matrix_reference`` and the ``"memory"`` backend.
    """

    encryption_class = EncryptionClass.HOM
    preserves_equality = False
    preserves_order = False
    supports_addition = True
    is_probabilistic = True
    ciphertext_kind = CiphertextKind.OPAQUE

    #: Fixed-point scaling factor used to encode reals.
    DEFAULT_PRECISION = 10**6
    #: Blinding factors precomputed at construction (and per refill).
    DEFAULT_POOL_SIZE = 64

    def __init__(
        self,
        keypair: PaillierKeyPair | None = None,
        *,
        bits: int = 1024,
        precision: int = DEFAULT_PRECISION,
        pool_size: int = DEFAULT_POOL_SIZE,
        eager_pool: bool = True,
    ) -> None:
        self._keypair = keypair if keypair is not None else PaillierKeyPair.generate(bits)
        self._precision = precision
        public, private = self._keypair.public, self._keypair.private
        self._n = public.n
        self._n_squared = public.n_squared
        # CRT precomputation (decrypt mod p²/q², recombine with Garner).
        self._crt = None
        if private.has_crt:
            p, q = private.p, private.q
            p_squared, q_squared = p * p, q * q
            hp = modular_inverse(_l_function(pow(public.g, p - 1, p_squared), p), p)
            hq = modular_inverse(_l_function(pow(public.g, q - 1, q_squared), q), q)
            p_inverse_mod_q = modular_inverse(p, q)
            self._crt = (p, q, p_squared, q_squared, hp, hq, p_inverse_mod_q)
        self._pool = PaillierNoisePool(public, size=pool_size, eager=eager_pool)

    @property
    def public_key(self) -> PaillierPublicKey:
        """The public key (shareable with the service provider)."""
        return self._keypair.public

    @property
    def noise_pool(self) -> PaillierNoisePool:
        """The precomputed blinding-factor pool feeding :meth:`encrypt_raw`."""
        return self._pool

    # -- EncryptionScheme interface ----------------------------------------- #

    def encrypt(self, value: SqlValue) -> PaillierCiphertext:
        if value is None or isinstance(value, (str, bool)):
            raise EncryptionError(f"HOM can only encrypt numeric values, got {value!r}")
        return self.encrypt_raw(self._encode(value))

    def decrypt(self, ciphertext: object) -> SqlValue:
        if not isinstance(ciphertext, PaillierCiphertext):
            raise DecryptionError("not a Paillier ciphertext")
        return self._decode(self.decrypt_raw(ciphertext))

    def encrypt_many(self, values: list[SqlValue]) -> list[PaillierCiphertext]:
        """Batch encryption: encode all, pool the blinding, multiply once each.

        This is the column-wise fast path :meth:`CryptDBProxy.encrypt_database
        <repro.cryptdb.proxy.CryptDBProxy.encrypt_database>` hits for HOM
        onions: the pool is topped up to the batch size first (no per-value
        fallback), then every ciphertext is one modular multiplication.
        """
        encoded = [self._require_numeric(value) for value in values]
        self._pool.ensure(len(encoded))
        n, n_sq = self._n, self._n_squared
        return [
            PaillierCiphertext(((1 + message * n) * self._pool.take()) % n_sq, self._keypair.public)
            for message in encoded
        ]

    def decrypt_many(self, ciphertexts: list[object]) -> list[SqlValue]:
        """Batch decryption with repeated-ciphertext deduplication.

        Decryption is a deterministic function of the ciphertext, so repeated
        ciphertext values (e.g. a HOM column restored from a backup, or the
        same aggregate decrypted per group) pay the CRT exponentiations once.
        """
        return self._decrypt_many_deduplicated(
            ciphertexts,
            # The key pair is part of the cache key so a same-value ciphertext
            # under a different public key still raises like scalar decrypt.
            cache_key=lambda ciphertext: (ciphertext.value, ciphertext.public_key.n)
            if isinstance(ciphertext, PaillierCiphertext)
            else ciphertext,
        )

    def precompute(self, count: int) -> None:
        """Top the noise pool up to ``count`` blinding factors."""
        self._pool.ensure(count)

    def fast_path_stats(self) -> dict[str, object]:
        """Noise-pool counters and whether CRT decryption is active."""
        return {"noise_pool": self._pool.stats(), "crt_decrypt": self._crt is not None}

    # -- raw integer interface (used by the HOM onion) ----------------------- #

    def encrypt_raw(self, message: int) -> PaillierCiphertext:
        """Encrypt an already-encoded residue ``message ∈ Z_n`` (fast path).

        ``g = n + 1`` makes ``g^m mod n² = 1 + m·n``, and the blinding factor
        ``r^n mod n²`` comes from the pool, so a warm encryption is a single
        modular multiplication.
        """
        message %= self._n
        ciphertext = ((1 + message * self._n) * self._pool.take()) % self._n_squared
        return PaillierCiphertext(ciphertext, self._keypair.public)

    def encrypt_raw_reference(self, message: int) -> PaillierCiphertext:
        """The seed's scalar encryption (two ``pow``s; equality oracle).

        Fast-path and reference ciphertexts differ only in their random
        blinding: both decrypt to the same residue through either decryption
        path, which the property-based tests assert.
        """
        public = self._keypair.public
        n, n_sq = public.n, public.n_squared
        message %= n
        while True:
            r = int.from_bytes(random_bytes((n.bit_length() + 7) // 8), "big") % n
            if r != 0 and _gcd(r, n) == 1:
                break
        ciphertext = (pow(public.g, message, n_sq) * pow(r, n, n_sq)) % n_sq
        return PaillierCiphertext(ciphertext, public)

    def decrypt_raw(self, ciphertext: PaillierCiphertext) -> int:
        """Decrypt to the residue ``m ∈ Z_n`` via CRT (no sign/precision decoding).

        Works mod ``p²`` and ``q²`` — half-size exponents *and* moduli — and
        recombines with Garner's formula; falls back to the reference
        ``L``-function path for keys without stored factors.
        """
        if self._crt is None:
            return self.decrypt_raw_reference(ciphertext)
        self._check_key(ciphertext)
        p, q, p_squared, q_squared, hp, hq, p_inverse_mod_q = self._crt
        value = ciphertext.value
        m_p = (_l_function(pow(value % p_squared, p - 1, p_squared), p) * hp) % p
        m_q = (_l_function(pow(value % q_squared, q - 1, q_squared), q) * hq) % q
        return (m_p + ((m_q - m_p) * p_inverse_mod_q % q) * p) % self._n

    def decrypt_raw_reference(self, ciphertext: PaillierCiphertext) -> int:
        """The seed's scalar ``L``-function decryption (equality oracle)."""
        self._check_key(ciphertext)
        public, private = self._keypair.public, self._keypair.private
        u = pow(ciphertext.value, private.lam, public.n_squared)
        return (_l_function(u, public.n) * private.mu) % public.n

    def _check_key(self, ciphertext: PaillierCiphertext) -> None:
        if ciphertext.public_key != self._keypair.public:
            raise DecryptionError("ciphertext was encrypted under a different key")

    def add(self, *ciphertexts: PaillierCiphertext) -> PaillierCiphertext:
        """Homomorphically sum one or more ciphertexts."""
        if not ciphertexts:
            raise EncryptionError("cannot sum zero ciphertexts")
        total = ciphertexts[0]
        for ciphertext in ciphertexts[1:]:
            total = total + ciphertext
        return total

    # -- value encoding ------------------------------------------------------ #

    def _require_numeric(self, value: SqlValue) -> int:
        if value is None or isinstance(value, (str, bool)):
            raise EncryptionError(f"HOM can only encrypt numeric values, got {value!r}")
        return self._encode(value)

    def _encode(self, value: int | float) -> int:
        n = self._n
        if isinstance(value, float):
            scaled = round(value * self._precision)
        else:
            scaled = value * self._precision
        if abs(scaled) >= n // 2:
            raise EncryptionError(f"value {value!r} too large for the Paillier modulus")
        return scaled % n

    def _decode(self, residue: int) -> float | int:
        n = self._n
        signed = residue if residue < n // 2 else residue - n
        if signed % self._precision == 0:
            return signed // self._precision
        return signed / self._precision

    def decode_sum(self, ciphertext: PaillierCiphertext) -> float | int:
        """Decrypt and decode a homomorphically computed sum."""
        return self._decode(self.decrypt_raw(ciphertext))


def _l_function(u: int, n: int) -> int:
    return (u - 1) // n


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def _lcm(a: int, b: int) -> int:
    return a // _gcd(a, b) * b
