"""HOM: additively homomorphic encryption (Paillier).

Implemented from scratch (the environment has no Paillier library): key
generation with Miller–Rabin prime search, encryption ``c = (n+1)^m · r^n
mod n²`` and decryption via the standard ``L`` function.  The scheme is
probabilistic (HOM is a subclass of PROB in Figure 1) and supports

* addition of two ciphertexts (``Enc(a) ⊕ Enc(b) = Enc(a + b)``),
* addition of a plaintext constant, and
* multiplication by a plaintext constant,

which is what CryptDB's HOM onion uses to evaluate ``SUM``/``AVG`` over
encrypted data.  Negative integers and fixed-point reals are supported by
encoding into ``Z_n`` with a configurable scaling factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.base import CiphertextKind, EncryptionClass, EncryptionScheme
from repro.crypto.primitives import SqlValue, generate_prime, modular_inverse, random_bytes
from repro.exceptions import DecryptionError, EncryptionError


@dataclass(frozen=True)
class PaillierPublicKey:
    """Paillier public key (modulus ``n`` and generator ``g = n + 1``)."""

    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def g(self) -> int:
        return self.n + 1

    @property
    def bits(self) -> int:
        """Size of the modulus in bits."""
        return self.n.bit_length()


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Paillier private key (``λ = lcm(p-1, q-1)`` and ``µ = L(g^λ)^-1``)."""

    lam: int
    mu: int


@dataclass(frozen=True)
class PaillierKeyPair:
    """A public/private Paillier key pair."""

    public: PaillierPublicKey
    private: PaillierPrivateKey

    @classmethod
    def generate(cls, bits: int = 1024) -> "PaillierKeyPair":
        """Generate a key pair with an (approximately) ``bits``-bit modulus.

        1024 bits is adequate for the reproduction experiments; tests use
        smaller moduli for speed.
        """
        if bits < 64:
            raise EncryptionError("Paillier modulus must be at least 64 bits")
        half = bits // 2
        while True:
            p = generate_prime(half)
            q = generate_prime(bits - half)
            if p != q:
                n = p * q
                if n.bit_length() >= bits - 1:
                    break
        lam = _lcm(p - 1, q - 1)
        public = PaillierPublicKey(n)
        mu = modular_inverse(_l_function(pow(public.g, lam, public.n_squared), n), n)
        return cls(public, PaillierPrivateKey(lam, mu))


@dataclass(frozen=True)
class PaillierCiphertext:
    """A Paillier ciphertext bound to its public key."""

    value: int
    public_key: PaillierPublicKey

    def __add__(self, other: "PaillierCiphertext | int") -> "PaillierCiphertext":
        """Homomorphic addition with another ciphertext or a plaintext integer."""
        n_sq = self.public_key.n_squared
        if isinstance(other, PaillierCiphertext):
            if other.public_key != self.public_key:
                raise EncryptionError("cannot add ciphertexts under different keys")
            return PaillierCiphertext((self.value * other.value) % n_sq, self.public_key)
        if isinstance(other, int) and not isinstance(other, bool):
            encoded = other % self.public_key.n
            factor = pow(self.public_key.g, encoded, n_sq)
            return PaillierCiphertext((self.value * factor) % n_sq, self.public_key)
        return NotImplemented

    __radd__ = __add__

    def __mul__(self, scalar: int) -> "PaillierCiphertext":
        """Homomorphic multiplication by a plaintext integer."""
        if isinstance(scalar, bool) or not isinstance(scalar, int):
            return NotImplemented
        encoded = scalar % self.public_key.n
        return PaillierCiphertext(
            pow(self.value, encoded, self.public_key.n_squared), self.public_key
        )

    __rmul__ = __mul__


class PaillierScheme(EncryptionScheme):
    """Paillier encryption of SQL numeric values (class HOM ⊂ PROB)."""

    encryption_class = EncryptionClass.HOM
    preserves_equality = False
    preserves_order = False
    supports_addition = True
    is_probabilistic = True
    ciphertext_kind = CiphertextKind.OPAQUE

    #: Fixed-point scaling factor used to encode reals.
    DEFAULT_PRECISION = 10**6

    def __init__(
        self,
        keypair: PaillierKeyPair | None = None,
        *,
        bits: int = 1024,
        precision: int = DEFAULT_PRECISION,
    ) -> None:
        self._keypair = keypair if keypair is not None else PaillierKeyPair.generate(bits)
        self._precision = precision

    @property
    def public_key(self) -> PaillierPublicKey:
        """The public key (shareable with the service provider)."""
        return self._keypair.public

    # -- EncryptionScheme interface ----------------------------------------- #

    def encrypt(self, value: SqlValue) -> PaillierCiphertext:
        if value is None or isinstance(value, (str, bool)):
            raise EncryptionError(f"HOM can only encrypt numeric values, got {value!r}")
        encoded = self._encode(value)
        return self.encrypt_raw(encoded)

    def decrypt(self, ciphertext: object) -> SqlValue:
        if not isinstance(ciphertext, PaillierCiphertext):
            raise DecryptionError("not a Paillier ciphertext")
        return self._decode(self.decrypt_raw(ciphertext))

    # -- raw integer interface (used by the HOM onion) ----------------------- #

    def encrypt_raw(self, message: int) -> PaillierCiphertext:
        """Encrypt an already-encoded residue ``message ∈ Z_n``."""
        public = self._keypair.public
        n, n_sq = public.n, public.n_squared
        message %= n
        while True:
            r = int.from_bytes(random_bytes((n.bit_length() + 7) // 8), "big") % n
            if r != 0 and _gcd(r, n) == 1:
                break
        ciphertext = (pow(public.g, message, n_sq) * pow(r, n, n_sq)) % n_sq
        return PaillierCiphertext(ciphertext, public)

    def decrypt_raw(self, ciphertext: PaillierCiphertext) -> int:
        """Decrypt to the residue ``m ∈ Z_n`` (no sign/precision decoding)."""
        if ciphertext.public_key != self._keypair.public:
            raise DecryptionError("ciphertext was encrypted under a different key")
        public, private = self._keypair.public, self._keypair.private
        u = pow(ciphertext.value, private.lam, public.n_squared)
        return (_l_function(u, public.n) * private.mu) % public.n

    def add(self, *ciphertexts: PaillierCiphertext) -> PaillierCiphertext:
        """Homomorphically sum one or more ciphertexts."""
        if not ciphertexts:
            raise EncryptionError("cannot sum zero ciphertexts")
        total = ciphertexts[0]
        for ciphertext in ciphertexts[1:]:
            total = total + ciphertext
        return total

    # -- value encoding ------------------------------------------------------ #

    def _encode(self, value: int | float) -> int:
        n = self._keypair.public.n
        if isinstance(value, float):
            scaled = round(value * self._precision)
        else:
            scaled = value * self._precision
        if abs(scaled) >= n // 2:
            raise EncryptionError(f"value {value!r} too large for the Paillier modulus")
        return scaled % n

    def _decode(self, residue: int) -> float | int:
        n = self._keypair.public.n
        signed = residue if residue < n // 2 else residue - n
        if signed % self._precision == 0:
            return signed // self._precision
        return signed / self._precision

    def decode_sum(self, ciphertext: PaillierCiphertext) -> float | int:
        """Decrypt and decode a homomorphically computed sum."""
        return self._decode(self.decrypt_raw(ciphertext))


def _l_function(u: int, n: int) -> int:
    return (u - 1) // n


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def _lcm(a: int, b: int) -> int:
    return a // _gcd(a, b) * b
