"""OPE: order-preserving encryption with a cached keyed descent.

The construction follows the *lazy-sampling binary descent* of Boldyreva et
al. (CRYPTO 2011 / the scheme CryptDB uses for its ORD onion): the domain
``[domain_min, domain_max]`` is mapped into a much larger ciphertext range by
recursively splitting both domain and range and descending towards the
plaintext.  All random choices are derived from a keyed PRF of the current
recursion node, so the mapping is a *deterministic, strictly increasing*
function of the plaintext for a fixed key — exactly the OPE property of
Figure 1 — without keeping any per-value state.

Because the PRF makes every node's range split a pure function of the key
and the node, the descent tree can be *memoized*: a per-key node cache
stores each visited ``(dlo, dhi, rlo, rhi) -> left-range-width`` decision,
so values that share a descent prefix (every value in a realistic column —
ids, prices, timestamps cluster in a narrow slice of the 2⁴⁰-wide domain)
reuse the common prefix nodes instead of re-deriving ~40 PRF evaluations
each.  :meth:`OrderPreservingScheme.encrypt_many` sorts the distinct values
so neighbouring descents are walked back to back, and
:meth:`OrderPreservingScheme.cache_stats` exposes hit/miss counters; the
uncached scalar descent is kept as :meth:`OrderPreservingScheme.encrypt_reference`,
the bit-for-bit equality oracle of the fast path.

The node cache is shared mutable state, so it is guarded by a lock: concurrent
``encrypt``/``decrypt``/``clear_cache`` calls from multi-tenant serving
threads interleave safely, and the hit/miss/eviction counters stay exact (an
unguarded ``+=`` loses updates under the interpreter's thread switching).
The lock protects *bookkeeping*, not correctness of ciphertexts — every node
value is a pure function of the key, so even a racy cache could only ever
have re-derived the same number.

Compared to the original construction we use a uniform range-split instead of
hypergeometric sampling at the inner nodes.  This changes the ciphertext
*distribution* slightly (security is still "reveals order and nothing else
beyond what an ideal order-preserving function reveals") but none of the
functional properties: determinism, injectivity and strict monotonicity all
hold and are verified by property-based tests.

Only integers can be OPE-encrypted; callers encrypt reals by fixed-point
scaling (the access-area and CryptDB layers do this explicitly).
"""

from __future__ import annotations

import threading

from repro.crypto.base import CiphertextKind, EncryptionClass, EncryptionScheme
from repro.crypto.primitives import DeterministicStream, SqlValue, derive_key
from repro.exceptions import DecryptionError, EncryptionError, KeyError_


class OrderPreservingScheme(EncryptionScheme):
    """Stateless, deterministic order-preserving encryption (class OPE)."""

    encryption_class = EncryptionClass.OPE
    preserves_equality = True
    preserves_order = True
    supports_addition = False
    is_probabilistic = False
    ciphertext_kind = CiphertextKind.INTEGER

    def __init__(
        self,
        key: bytes,
        *,
        domain_min: int = -(2**31),
        domain_max: int = 2**31 - 1,
        expansion_bits: int = 16,
        cache_max_nodes: int = 250_000,
    ) -> None:
        """Create an OPE instance.

        Parameters
        ----------
        key:
            Secret key (at least 16 bytes).
        domain_min, domain_max:
            Inclusive plaintext domain.  Values outside raise
            :class:`EncryptionError`.
        expansion_bits:
            The ciphertext range is ``2**expansion_bits`` times larger than
            the domain; larger values make the order-preserving function
            "more random" at the cost of bigger ciphertexts.
        cache_max_nodes:
            Upper bound on memoized descent nodes; reaching it flushes the
            cache (counted under ``evictions`` in :meth:`cache_stats`), so a
            long-lived streaming column cannot grow the cache without limit.
            Correctness never depends on the cache — a flush only costs
            recomputation.
        """
        if len(key) < 16:
            raise KeyError_("OPE key must be at least 16 bytes")
        if domain_min >= domain_max:
            raise EncryptionError("OPE domain must contain at least two values")
        if expansion_bits < 1:
            raise EncryptionError("OPE expansion must be at least 1 bit")
        if cache_max_nodes < 1:
            raise EncryptionError("OPE node cache must hold at least one node")
        self._key = derive_key(key, "ope", 32)
        self.domain_min = domain_min
        self.domain_max = domain_max
        domain_size = domain_max - domain_min + 1
        self.range_size = domain_size << expansion_bits
        # Memoized descent tree: node -> left-range-width.  The split at a
        # node is a pure function of (key, node), so the cache is shared by
        # every encrypt *and* decrypt under this instance's key.  The lock
        # serializes cache and counter updates against concurrent
        # encrypt/decrypt/clear_cache callers (multi-tenant serving threads).
        self._node_cache: dict[tuple[int, int, int, int], int] = {}  # guarded-by: _cache_lock
        self._cache_lock = threading.Lock()
        self._cache_max_nodes = cache_max_nodes
        self._cache_hits = 0  # guarded-by: _cache_lock
        self._cache_misses = 0  # guarded-by: _cache_lock
        self._cache_evictions = 0  # guarded-by: _cache_lock

    # -- public API --------------------------------------------------------- #

    def encrypt(self, value: SqlValue) -> int:
        """Encrypt one integer via the (cached) keyed binary descent."""
        self._check_plaintext(value)
        dlo, dhi = self.domain_min, self.domain_max
        rlo, rhi = 0, self.range_size - 1
        while dlo < dhi:
            dlo, dhi, rlo, rhi = self._descend(value, dlo, dhi, rlo, rhi)
        return self._leaf_ciphertext(dlo, rlo, rhi)

    def encrypt_reference(self, value: SqlValue) -> int:
        """The seed's scalar descent, bypassing the node cache (equality oracle).

        Every PRF evaluation is re-derived, exactly as the seed implementation
        did per value; the fast path must produce bit-for-bit identical
        ciphertexts (the descent is deterministic, caching only skips
        recomputation).
        """
        self._check_plaintext(value)
        dlo, dhi = self.domain_min, self.domain_max
        rlo, rhi = 0, self.range_size - 1
        while dlo < dhi:
            left_width = self._derive_left_range_width(dlo, dhi, rlo, rhi)
            middle = self._domain_midpoint(dlo, dhi)
            if value <= middle:
                dhi, rhi = middle, rlo + left_width - 1
            else:
                dlo, rlo = middle + 1, rlo + left_width
        return self._leaf_ciphertext(dlo, rlo, rhi)

    def encrypt_many(self, values: list[SqlValue]) -> list[int]:
        """Sorted-batch encryption: dedup repeats, amortize the tree walk.

        The scheme is deterministic, so repeated integers reuse one descent;
        the distinct values are encrypted in sorted order so neighbouring
        descents — which share all prefix nodes above their divergence point
        — walk the memoized tree back to back while it is hot.  A realistic
        10k-value column costs a few uncached levels per distinct value
        instead of the full ~40-level descent each.
        """
        distinct = sorted({value for value in values if self._check_plaintext(value)})
        ciphertexts = {value: self.encrypt(value) for value in distinct}
        return [ciphertexts[value] for value in values]

    def decrypt(self, ciphertext: object) -> int:
        if isinstance(ciphertext, bool) or not isinstance(ciphertext, int):
            raise DecryptionError(f"OPE ciphertexts are integers, got {ciphertext!r}")
        if not 0 <= ciphertext < self.range_size:
            raise DecryptionError(f"ciphertext {ciphertext} outside OPE range")
        dlo, dhi = self.domain_min, self.domain_max
        rlo, rhi = 0, self.range_size - 1
        while dlo < dhi:
            left_width = self._left_range_width(dlo, dhi, rlo, rhi)
            middle = self._domain_midpoint(dlo, dhi)
            if ciphertext <= rlo + left_width - 1:
                dhi, rhi = middle, rlo + left_width - 1
            else:
                dlo, rlo = middle + 1, rlo + left_width
        if self._leaf_ciphertext(dlo, rlo, rhi) != ciphertext:
            raise DecryptionError(f"ciphertext {ciphertext} was not produced by this OPE key")
        return dlo

    def decrypt_many(self, ciphertexts: list[object]) -> list[SqlValue]:
        """Batch decryption: repeated ciphertexts descend once (OPE is
        deterministic), and distinct ones share the memoized descent tree."""
        return self._decrypt_many_deduplicated(ciphertexts)

    def cache_stats(self) -> dict[str, int | float]:
        """Descent-node cache counters (size, hits, misses, hit rate, evictions).

        Taken under the cache lock, so the snapshot is internally consistent
        even while other threads encrypt: ``hits + misses`` always equals the
        number of node lookups performed so far.
        """
        with self._cache_lock:
            hits, misses = self._cache_hits, self._cache_misses
            nodes, evictions = len(self._node_cache), self._cache_evictions
        lookups = hits + misses
        return {
            "nodes": nodes,
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / lookups if lookups else 0.0,
            "evictions": evictions,
        }

    def fast_path_stats(self) -> dict[str, object]:
        """The node cache, under the shared fast-path protocol name."""
        return {"node_cache": self.cache_stats()}

    def clear_cache(self) -> None:
        """Drop the memoized descent tree (counters included).

        Safe to call while other threads are mid-descent: the lock means a
        concurrent encrypt either sees the cache before or after the flush,
        never a half-reset counter set, and its ciphertext is unaffected
        either way (node values are pure functions of the key).
        """
        with self._cache_lock:
            self._node_cache.clear()
            self._cache_hits = 0
            self._cache_misses = 0
            self._cache_evictions = 0

    # -- recursion ----------------------------------------------------------- #

    def _check_plaintext(self, value: SqlValue) -> bool:
        if isinstance(value, bool) or not isinstance(value, int):
            raise EncryptionError(f"OPE can only encrypt integers, got {value!r}")
        if not self.domain_min <= value <= self.domain_max:
            raise EncryptionError(
                f"value {value} outside OPE domain [{self.domain_min}, {self.domain_max}]"
            )
        return True

    @staticmethod
    def _domain_midpoint(dlo: int, dhi: int) -> int:
        return dlo + (dhi - dlo) // 2

    def _derive_left_range_width(self, dlo: int, dhi: int, rlo: int, rhi: int) -> int:
        """Width of the range assigned to the left half of the domain.

        The split is the left-domain size plus a PRF-derived share of the
        slack, which keeps both halves large enough for their domain halves
        (strict monotonicity) while randomising the shape of the function.
        """
        middle = self._domain_midpoint(dlo, dhi)
        left_domain = middle - dlo + 1
        right_domain = dhi - middle
        range_size = rhi - rlo + 1
        slack = range_size - (left_domain + right_domain)
        stream = DeterministicStream(
            self._key, "node", str(dlo), str(dhi), str(rlo), str(rhi)
        )
        extra = stream.uniform_int(0, slack) if slack > 0 else 0
        return left_domain + extra

    def _left_range_width(self, dlo: int, dhi: int, rlo: int, rhi: int) -> int:
        """Memoized :meth:`_derive_left_range_width` (the node cache).

        The PRF derivation runs *outside* the lock — it is a pure function of
        (key, node), so two racing threads at worst derive the same width
        twice; the lock only guards the dict and the counters.
        """
        node = (dlo, dhi, rlo, rhi)
        with self._cache_lock:
            width = self._node_cache.get(node)
            if width is not None:
                self._cache_hits += 1
                return width
            self._cache_misses += 1
        width = self._derive_left_range_width(dlo, dhi, rlo, rhi)
        with self._cache_lock:
            if node not in self._node_cache:
                if len(self._node_cache) >= self._cache_max_nodes:
                    # Bound the memory of long-lived (streaming) instances; the
                    # descent is deterministic, so a flush only re-derives nodes.
                    self._node_cache.clear()
                    self._cache_evictions += 1
                self._node_cache[node] = width
        return width

    def _descend(
        self, value: int, dlo: int, dhi: int, rlo: int, rhi: int
    ) -> tuple[int, int, int, int]:
        left_width = self._left_range_width(dlo, dhi, rlo, rhi)
        middle = self._domain_midpoint(dlo, dhi)
        if value <= middle:
            return dlo, middle, rlo, rlo + left_width - 1
        return middle + 1, dhi, rlo + left_width, rhi

    def _leaf_ciphertext(self, value: int, rlo: int, rhi: int) -> int:
        stream = DeterministicStream(self._key, "leaf", str(value), str(rlo), str(rhi))
        return stream.uniform_int(rlo, rhi)
