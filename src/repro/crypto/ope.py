"""OPE: order-preserving encryption.

The construction follows the *lazy-sampling binary descent* of Boldyreva et
al. (CRYPTO 2011 / the scheme CryptDB uses for its ORD onion): the domain
``[domain_min, domain_max]`` is mapped into a much larger ciphertext range by
recursively splitting both domain and range and descending towards the
plaintext.  All random choices are derived from a keyed PRF of the current
recursion node, so the mapping is a *deterministic, strictly increasing*
function of the plaintext for a fixed key — exactly the OPE property of
Figure 1 — without keeping any per-value state.

Compared to the original construction we use a uniform range-split instead of
hypergeometric sampling at the inner nodes.  This changes the ciphertext
*distribution* slightly (security is still "reveals order and nothing else
beyond what an ideal order-preserving function reveals") but none of the
functional properties: determinism, injectivity and strict monotonicity all
hold and are verified by property-based tests.

Only integers can be OPE-encrypted; callers encrypt reals by fixed-point
scaling (the access-area and CryptDB layers do this explicitly).
"""

from __future__ import annotations

from repro.crypto.base import CiphertextKind, EncryptionClass, EncryptionScheme
from repro.crypto.primitives import DeterministicStream, SqlValue, derive_key
from repro.exceptions import DecryptionError, EncryptionError, KeyError_


class OrderPreservingScheme(EncryptionScheme):
    """Stateless, deterministic order-preserving encryption (class OPE)."""

    encryption_class = EncryptionClass.OPE
    preserves_equality = True
    preserves_order = True
    supports_addition = False
    is_probabilistic = False
    ciphertext_kind = CiphertextKind.INTEGER

    def __init__(
        self,
        key: bytes,
        *,
        domain_min: int = -(2**31),
        domain_max: int = 2**31 - 1,
        expansion_bits: int = 16,
    ) -> None:
        """Create an OPE instance.

        Parameters
        ----------
        key:
            Secret key (at least 16 bytes).
        domain_min, domain_max:
            Inclusive plaintext domain.  Values outside raise
            :class:`EncryptionError`.
        expansion_bits:
            The ciphertext range is ``2**expansion_bits`` times larger than
            the domain; larger values make the order-preserving function
            "more random" at the cost of bigger ciphertexts.
        """
        if len(key) < 16:
            raise KeyError_("OPE key must be at least 16 bytes")
        if domain_min >= domain_max:
            raise EncryptionError("OPE domain must contain at least two values")
        if expansion_bits < 1:
            raise EncryptionError("OPE expansion must be at least 1 bit")
        self._key = derive_key(key, "ope", 32)
        self.domain_min = domain_min
        self.domain_max = domain_max
        domain_size = domain_max - domain_min + 1
        self.range_size = domain_size << expansion_bits

    # -- public API --------------------------------------------------------- #

    def encrypt(self, value: SqlValue) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise EncryptionError(f"OPE can only encrypt integers, got {value!r}")
        if not self.domain_min <= value <= self.domain_max:
            raise EncryptionError(
                f"value {value} outside OPE domain [{self.domain_min}, {self.domain_max}]"
            )
        dlo, dhi = self.domain_min, self.domain_max
        rlo, rhi = 0, self.range_size - 1
        while dlo < dhi:
            dlo, dhi, rlo, rhi = self._descend(value, dlo, dhi, rlo, rhi)
        return self._leaf_ciphertext(dlo, rlo, rhi)

    def encrypt_many(self, values: list[SqlValue]) -> list[int]:
        """Batch encryption with repeated-plaintext deduplication (the
        binary descent costs ~40 PRF evaluations per value, and the scheme
        is deterministic, so repeated integers reuse one descent)."""
        return self._encrypt_many_deduplicated(values)  # type: ignore[return-value]

    def decrypt(self, ciphertext: object) -> int:
        if isinstance(ciphertext, bool) or not isinstance(ciphertext, int):
            raise DecryptionError(f"OPE ciphertexts are integers, got {ciphertext!r}")
        if not 0 <= ciphertext < self.range_size:
            raise DecryptionError(f"ciphertext {ciphertext} outside OPE range")
        dlo, dhi = self.domain_min, self.domain_max
        rlo, rhi = 0, self.range_size - 1
        while dlo < dhi:
            left_width = self._left_range_width(dlo, dhi, rlo, rhi)
            middle = self._domain_midpoint(dlo, dhi)
            if ciphertext <= rlo + left_width - 1:
                dhi, rhi = middle, rlo + left_width - 1
            else:
                dlo, rlo = middle + 1, rlo + left_width
        if self._leaf_ciphertext(dlo, rlo, rhi) != ciphertext:
            raise DecryptionError(f"ciphertext {ciphertext} was not produced by this OPE key")
        return dlo

    # -- recursion ----------------------------------------------------------- #

    @staticmethod
    def _domain_midpoint(dlo: int, dhi: int) -> int:
        return dlo + (dhi - dlo) // 2

    def _left_range_width(self, dlo: int, dhi: int, rlo: int, rhi: int) -> int:
        """Width of the range assigned to the left half of the domain.

        The split is the left-domain size plus a PRF-derived share of the
        slack, which keeps both halves large enough for their domain halves
        (strict monotonicity) while randomising the shape of the function.
        """
        middle = self._domain_midpoint(dlo, dhi)
        left_domain = middle - dlo + 1
        right_domain = dhi - middle
        range_size = rhi - rlo + 1
        slack = range_size - (left_domain + right_domain)
        stream = DeterministicStream(
            self._key, "node", str(dlo), str(dhi), str(rlo), str(rhi)
        )
        extra = stream.uniform_int(0, slack) if slack > 0 else 0
        return left_domain + extra

    def _descend(
        self, value: int, dlo: int, dhi: int, rlo: int, rhi: int
    ) -> tuple[int, int, int, int]:
        left_width = self._left_range_width(dlo, dhi, rlo, rhi)
        middle = self._domain_midpoint(dlo, dhi)
        if value <= middle:
            return dlo, middle, rlo, rlo + left_width - 1
        return middle + 1, dhi, rlo + left_width, rhi

    def _leaf_ciphertext(self, value: int, rlo: int, rhi: int) -> int:
        stream = DeterministicStream(self._key, "leaf", str(value), str(rlo), str(rhi))
        return stream.uniform_int(rlo, rhi)
