"""Key management.

The data owner holds a single :class:`MasterKey`; every scheme instance used
by a DPE scheme (relation-name encryption, attribute-name encryption, one
constant-encryption function *per attribute*, per-onion-layer keys in the
CryptDB layer) derives its own sub-key from it via a labelled PRF.  This
mirrors how CryptDB and similar systems manage keys and guarantees that two
different purposes never share key material by accident.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.crypto.primitives import derive_key, random_bytes
from repro.exceptions import KeyError_


@dataclass(frozen=True)
class MasterKey:
    """The data owner's master secret."""

    material: bytes

    def __post_init__(self) -> None:
        if len(self.material) < 16:
            raise KeyError_("master key must be at least 16 bytes")

    @classmethod
    def generate(cls) -> "MasterKey":
        """Generate a fresh random 32-byte master key."""
        return cls(random_bytes(32))

    @classmethod
    def from_passphrase(cls, passphrase: str) -> "MasterKey":
        """Derive a master key deterministically from a passphrase.

        Only intended for tests and examples that need reproducible keys;
        real deployments should use :meth:`generate`.
        """
        return cls(derive_key(passphrase.encode("utf-8"), "repro-master-key", 32))


class KeyChain:
    """Derives and caches purpose-specific sub-keys from a master key.

    Keys are addressed by a hierarchical label path, e.g.
    ``("constants", "orders", "price", "det")``.  The same path always yields
    the same key; different paths yield (computationally) independent keys.
    """

    def __init__(self, master: MasterKey) -> None:
        self._master = master
        self._cache: dict[tuple[str, ...], bytes] = {}
        # Concurrent tenant sessions derive keys through one shared chain;
        # the lock keeps the check-then-insert on the cache atomic (the
        # derivation itself is deterministic, so a duplicate derivation
        # would be wasteful, not wrong — but a dict mutated mid-resize by
        # another thread is neither).
        self._lock = threading.Lock()

    def key_for(self, *path: str, length: int = 32) -> bytes:
        """Return the sub-key for ``path`` (derived on first use, then cached)."""
        if not path:
            raise KeyError_("key path must not be empty")
        cache_key = tuple(path) + (str(length),)
        with self._lock:
            cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        # Length-prefix every component so that distinct paths can never
        # collapse to the same derivation label (("a", "b") vs ("a/b")).
        label = "|".join(f"{len(component)}:{component}" for component in path)
        key = derive_key(self._master.material, label, length)
        with self._lock:
            return self._cache.setdefault(cache_key, key)

    def fingerprint(self) -> str:
        """A short public identifier for this chain's master key.

        Derived through the same labelled PRF as every sub-key, so it reveals
        nothing about the master material but is stable per key chain —
        tenant-isolation tests and the server's per-tenant metrics use it to
        assert that two tenants never end up sharing key material.
        """
        return derive_key(self._master.material, "keychain-fingerprint", 16).hex()

    def keys_for(self, paths: Iterable[Sequence[str]], *, length: int = 32) -> list[bytes]:
        """Derive (and cache) the sub-keys for many paths in one call.

        The bulk counterpart of :meth:`key_for` — the same per-path HKDF
        derivation, not an amortized one — so callers that know every key
        they will need (the CryptDB proxy needs three per column when
        encrypting a schema) can warm the cache up front and state that
        intent in one call.  Returns the keys in ``paths`` order.
        """
        return [self.key_for(*path, length=length) for path in paths]

    # Convenience accessors matching the paper's high-level encryption scheme
    # (EncRel, EncAttr, {EncA.Const : Attribute A}).

    def relation_key(self) -> bytes:
        """Key for encrypting relation names (EncRel)."""
        return self.key_for("relations")

    def attribute_key(self) -> bytes:
        """Key for encrypting attribute names (EncAttr)."""
        return self.key_for("attributes")

    def constant_key(self, table: str, attribute: str, scheme: str) -> bytes:
        """Key for encrypting constants of one attribute under one scheme (EncA.Const)."""
        return self.key_for("constants", table, attribute, scheme)

    def onion_key(self, table: str, column: str, onion: str, layer: str) -> bytes:
        """Key for one onion layer of one column (CryptDB layer)."""
        return self.key_for("onion", table, column, onion, layer)

    def join_key(self, group: str) -> bytes:
        """Shared key for a JOIN group (columns that must be joinable)."""
        return self.key_for("join-group", group)
