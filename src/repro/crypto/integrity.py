"""Authenticated onions and log commitments (the integrity layer).

The paper's threat model is honest-but-curious, but a deployed proxy must
also survive a provider that *tampers* with what it stores: flipping
ciphertext bytes, swapping rows, replaying stale snapshots, or rolling the
query log back to an earlier state.  The PROB layer is already
encrypt-then-MAC and DET is SIV-authenticated, but the OPE and HOM onions
are bare malleable integers and nothing binds a ciphertext to its row or
snapshot.  This module closes those gaps without changing a single stored
ciphertext byte, so authenticated runs stay bit-for-bit identical to
unauthenticated runs on honest providers:

* :class:`ColumnAuthenticator` — a per-physical-column MAC (HMAC-SHA256
  through :func:`repro.crypto.primitives.prf`) whose key is derived through
  the owner's :class:`~repro.crypto.keys.KeyChain`.  The proxy keeps the
  resulting tags in an owner-side *manifest* (detached MACs): a per-row tag
  list that binds each ciphertext to its row index and snapshot version,
  plus a per-column tag set for O(1) membership checks on decrypted result
  cells.
* :class:`LogHashChain` — an incremental SHA-256 hash chain over query-log
  appends, committed by HMAC-signed :class:`ChainCheckpoint` values.  A
  provider can recompute the unkeyed chain after truncating the log, but it
  cannot forge the owner's checkpoint signature, so
  :func:`verify_log_entries` detects any rollback past a checkpoint.

All verification failures raise :class:`~repro.exceptions.IntegrityError`.
"""

from __future__ import annotations

import hashlib
import hmac
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.crypto.primitives import SqlValue, encode_value, prf
from repro.exceptions import IntegrityError

__all__ = [
    "ChainCheckpoint",
    "ColumnAuthenticator",
    "GENESIS_HEAD",
    "LogHashChain",
    "sign_checkpoint",
    "verify_checkpoint",
    "verify_log_entries",
]

#: Head of the empty hash chain (a domain-separated constant, hex encoded).
GENESIS_HEAD = hashlib.sha256(b"repro.integrity/genesis").hexdigest()


class ColumnAuthenticator:
    """Detached MAC for one physical (encrypted) column.

    Two tag flavours cover the two verification paths:

    * :meth:`row_tag` binds a stored value to its row index and the proxy's
      snapshot version — checked by the storage audit, where it detects
      byte flips, swapped rows and replayed stale snapshots;
    * :meth:`value_tag` binds only the value — collected into a per-column
      set so individual result cells can be checked in O(1) on the decrypt
      path, where row identity is no longer available.
    """

    __slots__ = ("_key",)

    def __init__(self, key: bytes) -> None:
        self._key = key

    def value_tag(self, value: SqlValue) -> bytes:
        """Tag a stored value independent of its position."""
        return prf(self._key, b"value", encode_value(value))

    def row_tag(self, row_index: int, version: int, value: SqlValue) -> bytes:
        """Tag a stored value bound to its row index and snapshot version."""
        return prf(
            self._key,
            b"row",
            str(row_index),
            str(version),
            encode_value(value),
        )

    def manifest(
        self, values: Iterable[SqlValue], version: int
    ) -> "ColumnManifest":
        """Build the owner-side manifest for a full column of stored values."""
        stored = list(values)
        row_tags = tuple(
            self.row_tag(index, version, value) for index, value in enumerate(stored)
        )
        value_tags = frozenset(
            prf(self._key, b"value", encoded)
            for encoded in {encode_value(value) for value in stored}
        )
        return ColumnManifest(row_tags=row_tags, value_tags=value_tags, version=version)


@dataclass(frozen=True)
class ColumnManifest:
    """Owner-side detached tags for one physical column of one snapshot."""

    #: One tag per row, bound to (row index, snapshot version, value).
    row_tags: tuple[bytes, ...]
    #: Position-independent tags of every distinct stored value.
    value_tags: frozenset[bytes]
    #: Snapshot version the row tags were computed under.
    version: int


class LogHashChain:
    """Incremental SHA-256 hash chain over query-log appends.

    Each appended entry's SQL text is folded into the running head as
    ``sha256(previous_head_bytes || len(sql) || sql)``, so the head after
    ``n`` appends commits to the exact ordered sequence of the first ``n``
    entries.  Heads are exposed hex encoded.
    """

    __slots__ = ("_head", "_length")

    def __init__(self) -> None:
        self._head = GENESIS_HEAD
        self._length = 0

    @property
    def head(self) -> str:
        """Current chain head (hex)."""
        return self._head

    @property
    def length(self) -> int:
        """Number of entries folded into the chain."""
        return self._length

    def extend(self, sql: str) -> str:
        """Fold one entry's SQL text into the chain; returns the new head."""
        payload = sql.encode("utf-8")
        digest = hashlib.sha256()
        digest.update(bytes.fromhex(self._head))
        digest.update(len(payload).to_bytes(8, "big"))
        digest.update(payload)
        self._head = digest.hexdigest()
        self._length += 1
        return self._head

    def copy(self) -> "LogHashChain":
        """Return an independent chain with the same head and length."""
        clone = LogHashChain()
        clone._head = self._head
        clone._length = self._length
        return clone


@dataclass(frozen=True)
class ChainCheckpoint:
    """A signed commitment to a hash-chain prefix.

    ``length`` and ``head`` pin the chain state at signing time; the
    ``signature`` is an HMAC over both under the owner's checkpoint key, so
    a provider can neither forge a checkpoint nor move one to a different
    chain position.
    """

    #: Number of log entries the checkpoint commits to.
    length: int
    #: Chain head (hex) after ``length`` entries.
    head: str
    #: HMAC-SHA256 signature (hex) over ``(length, head)``.
    signature: str


def _checkpoint_mac(key: bytes, length: int, head: str) -> str:
    return prf(key, b"checkpoint", str(length), head).hex()


def sign_checkpoint(key: bytes, length: int, head: str) -> ChainCheckpoint:
    """Sign a chain state, producing a :class:`ChainCheckpoint`."""
    return ChainCheckpoint(length=length, head=head, signature=_checkpoint_mac(key, length, head))


def verify_checkpoint(key: bytes, checkpoint: ChainCheckpoint) -> None:
    """Check a checkpoint's signature; raises :class:`IntegrityError` if forged."""
    expected = _checkpoint_mac(key, checkpoint.length, checkpoint.head)
    if not hmac.compare_digest(expected, checkpoint.signature):
        raise IntegrityError(
            f"log checkpoint signature invalid (length={checkpoint.length})"
        )
    if checkpoint.length == 0 and checkpoint.head != GENESIS_HEAD:
        raise IntegrityError("length-0 checkpoint does not commit to the genesis head")


def verify_log_entries(
    sql_entries: Sequence[str], checkpoint: ChainCheckpoint, key: bytes
) -> str:
    """Verify that a log is an exact prefix-extension of a signed checkpoint.

    Recomputes the hash chain over ``sql_entries`` from the genesis head and
    accepts iff the checkpoint signature is valid, the log is at least
    ``checkpoint.length`` entries long, and the recomputed head after
    exactly ``checkpoint.length`` entries equals ``checkpoint.head``.  Any
    truncation (rollback) past the checkpoint, or any mutation of an entry
    at or before it, is rejected with :class:`IntegrityError`.

    Returns the recomputed head over the full log on success.
    """
    verify_checkpoint(key, checkpoint)
    if len(sql_entries) < checkpoint.length:
        raise IntegrityError(
            f"log rollback detected: checkpoint commits to {checkpoint.length} "
            f"entries but the log holds only {len(sql_entries)}"
        )
    chain = LogHashChain()
    head_at_checkpoint = GENESIS_HEAD
    for index, sql in enumerate(sql_entries):
        head = chain.extend(sql)
        if index + 1 == checkpoint.length:
            head_at_checkpoint = head
    if head_at_checkpoint != checkpoint.head:
        raise IntegrityError(
            f"log history mutated: head after {checkpoint.length} entries "
            "does not match the signed checkpoint"
        )
    return chain.head
