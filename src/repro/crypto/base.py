"""Scheme interface and the encryption-class enumeration.

:class:`EncryptionClass` names the classes of Figure 1; every concrete scheme
declares which class it instantiates.  :class:`EncryptionScheme` is the
minimal interface the DPE layer relies on: encrypt/decrypt of SQL values plus
a declaration of the properties the scheme preserves (equality, order,
additivity), which the KIT-DPE engine uses to check that a class *ensures*
an equivalence notion.
"""

from __future__ import annotations

import abc
import enum
from collections.abc import Callable

from repro.crypto.primitives import SqlValue


class EncryptionClass(enum.Enum):
    """Property-preserving encryption classes from Figure 1 of the paper."""

    PROB = "PROB"
    HOM = "HOM"
    DET = "DET"
    OPE = "OPE"
    JOIN = "JOIN"
    JOIN_OPE = "JOIN-OPE"
    #: The identity "encryption" (no protection).  Not part of Figure 1 but
    #: useful as the weakest baseline in ablation experiments.
    PLAIN = "PLAIN"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class CiphertextKind(enum.Enum):
    """What a ciphertext looks like syntactically.

    The query rewriter needs to know whether a ciphertext can stand in for an
    identifier (relation/attribute name), a string literal, or a numeric
    literal in the encrypted query text.
    """

    IDENTIFIER = "identifier"
    STRING = "string"
    INTEGER = "integer"
    OPAQUE = "opaque"


class EncryptionScheme(abc.ABC):
    """Abstract interface of a property-preserving encryption scheme."""

    #: The class of Figure 1 this scheme instantiates.
    encryption_class: EncryptionClass = EncryptionClass.PLAIN

    #: True if equal plaintexts always map to equal ciphertexts.
    preserves_equality: bool = False

    #: True if the numeric order of plaintexts is preserved by ciphertexts.
    preserves_order: bool = False

    #: True if ciphertexts support additive homomorphism.
    supports_addition: bool = False

    #: True if encryption is randomized (two encryptions of the same value
    #: are different with overwhelming probability).
    is_probabilistic: bool = False

    #: Syntactic shape of ciphertexts produced by :meth:`encrypt`.
    ciphertext_kind: CiphertextKind = CiphertextKind.OPAQUE

    @abc.abstractmethod
    def encrypt(self, value: SqlValue) -> object:
        """Encrypt a single SQL value."""

    @abc.abstractmethod
    def decrypt(self, ciphertext: object) -> SqlValue:
        """Decrypt a ciphertext produced by :meth:`encrypt`."""

    def encrypt_many(self, values: list[SqlValue]) -> list[object]:
        """Encrypt a batch of values (default: element-wise)."""
        return [self.encrypt(value) for value in values]

    def _encrypt_many_deduplicated(self, values: list[SqlValue]) -> list[object]:
        """Batch encryption reusing the ciphertext of repeated plaintexts.

        Only valid for deterministic schemes (equal plaintexts must map to
        equal ciphertexts); such schemes expose it as their
        :meth:`encrypt_many`.  Real columns repeat values heavily
        (categories, cities, flags), so column-wise database encryption pays
        the cipher cost once per distinct value.  The cache key includes the
        value's runtime type because SQL equality is type-sensitive here
        (``1``, ``1.0`` and ``True`` encode differently).
        """
        cache: dict[tuple[type, SqlValue], object] = {}
        ciphertexts: list[object] = []
        for value in values:
            key = (type(value), value)
            ciphertext = cache.get(key)
            if ciphertext is None:
                ciphertext = self.encrypt(value)
                cache[key] = ciphertext
            ciphertexts.append(ciphertext)
        return ciphertexts

    def decrypt_many(self, ciphertexts: list[object]) -> list[SqlValue]:
        """Decrypt a batch of ciphertexts (default: element-wise)."""
        return [self.decrypt(ciphertext) for ciphertext in ciphertexts]

    def _decrypt_many_deduplicated(
        self,
        ciphertexts: list[object],
        *,
        cache_key: Callable[[object], object] | None = None,
    ) -> list[SqlValue]:
        """Batch decryption reusing the plaintext of repeated ciphertexts.

        Decryption is a deterministic function of the ciphertext for every
        scheme here, so — dual to :meth:`_encrypt_many_deduplicated` — a
        repeated ciphertext pays the cipher cost once.  This matters exactly
        where the encrypt-side dedup mattered: decrypting a column that was
        batch-encrypted with dedup contains one distinct ciphertext per
        distinct plaintext.  ``cache_key`` maps a ciphertext to its hashable
        cache key (schemes with unhashable ciphertext objects key on the
        underlying value); unhashable keys fall back to direct decryption so
        malformed inputs still raise the scheme's own error.
        """
        cache: dict[object, SqlValue] = {}
        plaintexts: list[SqlValue] = []
        for ciphertext in ciphertexts:
            key = cache_key(ciphertext) if cache_key is not None else ciphertext
            try:
                cached = key in cache
            except TypeError:
                plaintexts.append(self.decrypt(ciphertext))
                continue
            if not cached:
                cache[key] = self.decrypt(ciphertext)
            plaintexts.append(cache[key])
        return plaintexts

    def precompute(self, count: int) -> None:
        """Precompute per-value material for ``count`` upcoming encryptions.

        Default: no-op.  Schemes with precomputable per-value work override
        it (Paillier tops up its blinding-factor pool); callers that know a
        batch size — column-wise database encryption, streaming sessions —
        call it ahead of :meth:`encrypt_many` so the hot loop stays free of
        expensive operations.
        """
        _ = count

    def fast_path_stats(self) -> dict[str, object]:
        """Counters describing the scheme's precomputation/caching fast paths.

        Default: empty (no fast path).  Paillier reports its noise pool, OPE
        its descent-node cache; the proxy aggregates these per column so
        experiments can report cache effectiveness.
        """
        return {}

    def describe(self) -> dict[str, object]:
        """Return a machine-readable description of the scheme's properties."""
        return {
            "class": self.encryption_class.value,
            "preserves_equality": self.preserves_equality,
            "preserves_order": self.preserves_order,
            "supports_addition": self.supports_addition,
            "is_probabilistic": self.is_probabilistic,
            "ciphertext_kind": self.ciphertext_kind.value,
        }


class IdentityScheme(EncryptionScheme):
    """The identity function as an "encryption scheme".

    The paper mentions it explicitly as the trivial way to ensure any
    equivalence notion, offering *no* security.  It is the lowest element of
    the security order and only used as an ablation baseline.
    """

    encryption_class = EncryptionClass.PLAIN
    preserves_equality = True
    preserves_order = True
    supports_addition = True
    is_probabilistic = False
    ciphertext_kind = CiphertextKind.OPAQUE

    def encrypt(self, value: SqlValue) -> SqlValue:
        return value

    def decrypt(self, ciphertext: object) -> SqlValue:
        return ciphertext  # type: ignore[return-value]
