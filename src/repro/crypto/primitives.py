"""Low-level cryptographic primitives and value (de)serialization.

Everything in :mod:`repro.crypto` builds on the helpers here: keyed PRFs
(HMAC-SHA256), AES-CTR as the block-cipher workhorse, deterministic
pseudo-random streams for lazily-sampled schemes (OPE), prime generation for
Paillier, and a typed value codec that turns SQL values (int, float, str,
bool, NULL) into bytes and back without ambiguity.
"""

from __future__ import annotations

import hmac
import hashlib
import os
import struct

from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes

from repro.exceptions import CryptoError, DecryptionError

#: Supported plaintext value types for the value codec.
SqlValue = int | float | str | bool | None

_TYPE_TAGS = {
    "null": b"\x00",
    "bool": b"\x01",
    "int": b"\x02",
    "float": b"\x03",
    "str": b"\x04",
}
_TAG_TYPES = {tag: name for name, tag in _TYPE_TAGS.items()}


def random_bytes(length: int) -> bytes:
    """Return ``length`` cryptographically secure random bytes."""
    return os.urandom(length)


def prf(key: bytes, *parts: bytes | str) -> bytes:
    """Keyed PRF: HMAC-SHA256 of the length-prefixed concatenation of ``parts``.

    Length-prefixing makes the encoding injective, so distinct part tuples
    can never collide (``("ab","c")`` vs ``("a","bc")``).
    """
    mac = hmac.new(key, digestmod=hashlib.sha256)
    for part in parts:
        if isinstance(part, str):
            part = part.encode("utf-8")
        mac.update(struct.pack(">I", len(part)))
        mac.update(part)
    return mac.digest()


def prf_int(key: bytes, *parts: bytes | str, bits: int = 64) -> int:
    """Return :func:`prf` truncated/expanded to an unsigned ``bits``-bit integer."""
    nbytes = (bits + 7) // 8
    output = b""
    counter = 0
    while len(output) < nbytes:
        output += prf(key, struct.pack(">I", counter), *parts)
        counter += 1
    return int.from_bytes(output[:nbytes], "big") % (1 << bits)


def derive_key(master: bytes, label: str, length: int = 32) -> bytes:
    """Derive a sub-key from ``master`` for the given ``label`` (HKDF-like expand)."""
    output = b""
    counter = 1
    previous = b""
    while len(output) < length:
        previous = hmac.new(
            master, previous + label.encode("utf-8") + bytes([counter]), hashlib.sha256
        ).digest()
        output += previous
        counter += 1
    return output[:length]


def aes_ctr_transform(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Encrypt/decrypt ``data`` with AES-CTR (the operation is its own inverse)."""
    if len(nonce) != 16:
        raise CryptoError("AES-CTR nonce must be 16 bytes")
    cipher = Cipher(algorithms.AES(key), modes.CTR(nonce))
    encryptor = cipher.encryptor()
    return encryptor.update(data) + encryptor.finalize()


class DeterministicStream:
    """A deterministic pseudo-random byte/number stream seeded by a PRF.

    Lazily-sampled schemes (the OPE construction, deterministic nonce
    derivation) need "random" choices that are a pure function of the key and
    the position in the scheme's recursion tree.  This class wraps a
    counter-mode PRF and exposes convenience samplers.
    """

    def __init__(self, key: bytes, *seed_parts: bytes | str) -> None:
        self._key = key
        self._seed = prf(key, "stream-seed", *seed_parts)
        self._counter = 0
        self._buffer = b""

    def read(self, length: int) -> bytes:
        """Return the next ``length`` bytes of the stream."""
        while len(self._buffer) < length:
            block = prf(self._key, "stream-block", self._seed, struct.pack(">Q", self._counter))
            self._buffer += block
            self._counter += 1
        result, self._buffer = self._buffer[:length], self._buffer[length:]
        return result

    def uniform_int(self, low: int, high: int) -> int:
        """Return a uniformly distributed integer in the inclusive range [low, high]."""
        if low > high:
            raise CryptoError(f"empty range [{low}, {high}]")
        span = high - low + 1
        # Rejection sampling over the smallest sufficient number of bytes to
        # avoid modulo bias.
        nbytes = max(1, (span.bit_length() + 7) // 8 + 1)
        limit = (1 << (8 * nbytes)) - ((1 << (8 * nbytes)) % span)
        while True:
            candidate = int.from_bytes(self.read(nbytes), "big")
            if candidate < limit:
                return low + (candidate % span)

    def uniform_float(self) -> float:
        """Return a uniformly distributed float in [0, 1)."""
        return int.from_bytes(self.read(8), "big") / float(1 << 64)


# --------------------------------------------------------------------------- #
# value codec


def encode_value(value: SqlValue) -> bytes:
    """Encode an SQL value into a self-describing byte string."""
    if value is None:
        return _TYPE_TAGS["null"]
    if isinstance(value, bool):
        return _TYPE_TAGS["bool"] + (b"\x01" if value else b"\x00")
    if isinstance(value, int):
        return _TYPE_TAGS["int"] + _encode_signed_int(value)
    if isinstance(value, float):
        return _TYPE_TAGS["float"] + struct.pack(">d", value)
    if isinstance(value, str):
        return _TYPE_TAGS["str"] + value.encode("utf-8")
    raise CryptoError(f"cannot encode value of type {type(value).__name__}")


def decode_value(data: bytes) -> SqlValue:
    """Decode a byte string produced by :func:`encode_value`."""
    if not data:
        raise DecryptionError("empty value encoding")
    tag, payload = data[:1], data[1:]
    kind = _TAG_TYPES.get(tag)
    if kind is None:
        raise DecryptionError(f"unknown value type tag {tag!r}")
    if kind == "null":
        return None
    if kind == "bool":
        return payload == b"\x01"
    if kind == "int":
        return _decode_signed_int(payload)
    if kind == "float":
        return struct.unpack(">d", payload)[0]
    return payload.decode("utf-8")


def _encode_signed_int(value: int) -> bytes:
    sign = b"\x01" if value >= 0 else b"\x00"
    magnitude = abs(value)
    length = max(1, (magnitude.bit_length() + 7) // 8)
    return sign + magnitude.to_bytes(length, "big")


def _decode_signed_int(payload: bytes) -> int:
    if not payload:
        raise DecryptionError("truncated integer encoding")
    sign, magnitude = payload[:1], payload[1:]
    value = int.from_bytes(magnitude, "big")
    return value if sign == b"\x01" else -value


# --------------------------------------------------------------------------- #
# prime generation (for Paillier)


def _sieve_of_eratosthenes(limit: int) -> tuple[int, ...]:
    """All primes below ``limit`` (classic sieve, computed once at import)."""
    flags = bytearray([1]) * limit
    flags[0:2] = b"\x00\x00"
    for i in range(2, int(limit**0.5) + 1):
        if flags[i]:
            flags[i * i :: i] = b"\x00" * len(range(i * i, limit, i))
    return tuple(i for i in range(limit) if flags[i])


#: Trial-division primes: rejecting a candidate divisible by any prime below
#: 2048 is ~100x cheaper than one Miller–Rabin round and filters ~86% of
#: random odd candidates before the expensive test runs.
_SMALL_PRIMES = _sieve_of_eratosthenes(2048)

#: Odd candidates sieved per random base in :func:`generate_prime`.
_PRIME_WINDOW = 1024


def is_probable_prime(n: int, rounds: int = 40) -> bool:
    """Miller–Rabin primality test with ``rounds`` random witnesses.

    A small-prime trial-division pre-check (primes below 2048) rejects most
    composites before any modular exponentiation runs.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if p * p > n:
            return True
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = int.from_bytes(os.urandom((n.bit_length() + 7) // 8), "big") % (n - 3) + 2
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int) -> int:
    """Generate a random prime with exactly ``bits`` bits.

    Instead of testing independent random candidates, a random odd base is
    drawn and a window of ``base, base+2, …`` is sieved against the small
    primes in one pass (one modulo per prime per *window*, not per
    candidate); only the survivors — ~14% of the window — reach
    Miller–Rabin.  This amortizes the trial division that dominated the
    seed's rejection loop and typically finds a prime within the first
    window (a 1024-candidate window around ``2^512`` contains ~6 primes).
    """
    if bits < 8:
        raise CryptoError("prime size must be at least 8 bits")
    while True:
        base = int.from_bytes(os.urandom((bits + 7) // 8), "big")
        base |= (1 << (bits - 1)) | 1  # force bit length and oddness
        base &= (1 << bits) - 1
        composite = bytearray(_PRIME_WINDOW)
        for p in _SMALL_PRIMES[1:]:  # candidates are odd; skip p = 2
            # base + 2i ≡ 0 (mod p)  →  i ≡ -base · 2⁻¹ (mod p), 2⁻¹ = (p+1)/2
            first = (-base * ((p + 1) // 2)) % p
            if p < base:
                composite[first::p] = b"\x01" * len(range(first, _PRIME_WINDOW, p))
            else:
                # Tiny bit sizes only: p itself may be in the window and must
                # not be marked out by its own multiple chain.
                for index in range(first, _PRIME_WINDOW, p):
                    if base + 2 * index != p:
                        composite[index] = 1
        for index in range(_PRIME_WINDOW):
            if composite[index]:
                continue
            candidate = base + 2 * index
            if candidate.bit_length() != bits:
                break  # window crossed the 2^bits boundary; draw a new base
            if is_probable_prime(candidate):
                return candidate


def modular_inverse(a: int, modulus: int) -> int:
    """Return the modular inverse of ``a`` modulo ``modulus``."""
    try:
        return pow(a, -1, modulus)
    except ValueError as exc:
        raise CryptoError(f"{a} has no inverse modulo {modulus}") from exc
