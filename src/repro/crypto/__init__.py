"""Property-preserving encryption classes (Figure 1 of the paper).

The paper realises distance-preserving encryption by *combining existing
property-preserving encryption schemes with known security characteristics*
(Section II-2).  This package provides one concrete, from-scratch
implementation per class of the taxonomy in Figure 1:

* :class:`~repro.crypto.prob.ProbabilisticScheme` — randomized AES-CTR (PROB),
* :class:`~repro.crypto.hom.PaillierScheme` — additively homomorphic
  Paillier encryption (HOM ⊂ PROB),
* :class:`~repro.crypto.det.DeterministicScheme` — SIV-style deterministic
  AES (DET),
* :class:`~repro.crypto.ope.OrderPreservingScheme` — Boldyreva-style
  order-preserving encryption (OPE ⊂ DET),
* :mod:`~repro.crypto.join` — JOIN / JOIN-OPE usage modes of DET / OPE
  (shared keys across join groups),

plus key management (:mod:`~repro.crypto.keys`), the encryption-class
taxonomy with its security partial order (:mod:`~repro.crypto.taxonomy`), and
a registry mapping classes to default scheme factories
(:mod:`~repro.crypto.registry`).
"""

from repro.crypto.base import CiphertextKind, EncryptionClass, EncryptionScheme, IdentityScheme
from repro.crypto.det import DeterministicScheme
from repro.crypto.hom import PaillierCiphertext, PaillierKeyPair, PaillierScheme
from repro.crypto.integrity import (
    ChainCheckpoint,
    ColumnAuthenticator,
    LogHashChain,
    sign_checkpoint,
    verify_checkpoint,
    verify_log_entries,
)
from repro.crypto.join import JoinGroup, JoinScheme
from repro.crypto.keys import KeyChain, MasterKey
from repro.crypto.ope import OrderPreservingScheme
from repro.crypto.prob import ProbabilisticScheme
from repro.crypto.registry import SchemeRegistry, default_registry
from repro.crypto.taxonomy import (
    SECURITY_LEVELS,
    EncryptionTaxonomy,
    default_taxonomy,
)

__all__ = [
    "ChainCheckpoint",
    "CiphertextKind",
    "ColumnAuthenticator",
    "DeterministicScheme",
    "EncryptionClass",
    "EncryptionScheme",
    "EncryptionTaxonomy",
    "IdentityScheme",
    "JoinGroup",
    "JoinScheme",
    "KeyChain",
    "LogHashChain",
    "MasterKey",
    "OrderPreservingScheme",
    "PaillierCiphertext",
    "PaillierKeyPair",
    "PaillierScheme",
    "ProbabilisticScheme",
    "SchemeRegistry",
    "SECURITY_LEVELS",
    "default_registry",
    "default_taxonomy",
    "sign_checkpoint",
    "verify_checkpoint",
    "verify_log_entries",
]
