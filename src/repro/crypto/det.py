"""DET: deterministic symmetric encryption.

Deterministic encryption maps equal plaintexts to equal ciphertexts, which is
precisely the property needed for *token equivalence* and for equality
predicates/joins over encrypted data.  We use an SIV-style construction
(synthetic IV): the nonce is a PRF of the plaintext, so encryption is
deterministic yet still IND-secure up to equality leakage.

Ciphertext layout: ``siv (16) || body`` hex-encoded.  Two public encodings
are provided:

* :meth:`DeterministicScheme.encrypt` — ``det:<hex>`` string ciphertext, used
  for constants (string literals in encrypted queries, cell values in
  encrypted tables);
* :meth:`DeterministicScheme.encrypt_identifier` — ``enc_<hex>`` ciphertext
  that is a valid SQL identifier, used for relation and attribute names
  (EncRel / EncAttr in the paper's high-level scheme).
"""

from __future__ import annotations

from repro.crypto.base import CiphertextKind, EncryptionClass, EncryptionScheme
from repro.crypto.primitives import (
    SqlValue,
    aes_ctr_transform,
    decode_value,
    derive_key,
    encode_value,
    prf,
)
from repro.exceptions import DecryptionError, KeyError_

_VALUE_PREFIX = "det:"
_IDENTIFIER_PREFIX = "enc_"


class DeterministicScheme(EncryptionScheme):
    """SIV-style deterministic AES encryption of SQL values (class DET)."""

    encryption_class = EncryptionClass.DET
    preserves_equality = True
    preserves_order = False
    supports_addition = False
    is_probabilistic = False
    ciphertext_kind = CiphertextKind.STRING

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise KeyError_("DET key must be at least 16 bytes")
        self._siv_key = derive_key(key, "det-siv", 32)
        self._enc_key = derive_key(key, "det-enc", 32)

    # -- value ciphertexts ------------------------------------------------ #

    def encrypt(self, value: SqlValue) -> str:
        return _VALUE_PREFIX + self._encrypt_raw(encode_value(value)).hex()

    def decrypt(self, ciphertext: object) -> SqlValue:
        if not isinstance(ciphertext, str) or not ciphertext.startswith(_VALUE_PREFIX):
            raise DecryptionError("not a DET ciphertext")
        return decode_value(self._decrypt_raw(_from_hex(ciphertext[len(_VALUE_PREFIX) :])))

    def encrypt_many(self, values: list[SqlValue]) -> list[str]:
        """Batch encryption with repeated-plaintext deduplication (DET is
        deterministic, so repeated values reuse one AES/PRF evaluation)."""
        return self._encrypt_many_deduplicated(values)  # type: ignore[return-value]

    def decrypt_many(self, ciphertexts: list[object]) -> list[SqlValue]:
        """Batch decryption with repeated-ciphertext deduplication (the dual
        of :meth:`encrypt_many`: a column batch-encrypted with dedup repeats
        its ciphertexts, so each distinct one pays AES/PRF once)."""
        return self._decrypt_many_deduplicated(ciphertexts)

    # -- identifier ciphertexts ------------------------------------------- #

    def encrypt_identifier(self, name: str) -> str:
        """Encrypt an identifier (relation or attribute name).

        The result is itself a valid SQL identifier (``enc_`` followed by hex
        characters), so encrypted queries remain parseable SQL.
        """
        return _IDENTIFIER_PREFIX + self._encrypt_raw(encode_value(name)).hex()

    def decrypt_identifier(self, ciphertext: str) -> str:
        """Decrypt an identifier produced by :meth:`encrypt_identifier`."""
        if not ciphertext.startswith(_IDENTIFIER_PREFIX):
            raise DecryptionError("not a DET identifier ciphertext")
        value = decode_value(self._decrypt_raw(_from_hex(ciphertext[len(_IDENTIFIER_PREFIX) :])))
        if not isinstance(value, str):
            raise DecryptionError("identifier ciphertext did not decrypt to a string")
        return value

    def is_identifier_ciphertext(self, text: str) -> bool:
        """Return True if ``text`` looks like an identifier ciphertext."""
        return text.startswith(_IDENTIFIER_PREFIX)

    # -- internals --------------------------------------------------------- #

    def _encrypt_raw(self, plaintext: bytes) -> bytes:
        siv = prf(self._siv_key, "siv", plaintext)[:16]
        body = aes_ctr_transform(self._enc_key, siv, plaintext)
        return siv + body

    def _decrypt_raw(self, raw: bytes) -> bytes:
        if len(raw) < 16:
            raise DecryptionError("DET ciphertext too short")
        siv, body = raw[:16], raw[16:]
        plaintext = aes_ctr_transform(self._enc_key, siv, body)
        expected = prf(self._siv_key, "siv", plaintext)[:16]
        if expected != siv:
            raise DecryptionError("DET ciphertext failed integrity check")
        return plaintext


def _from_hex(text: str) -> bytes:
    try:
        return bytes.fromhex(text)
    except ValueError as exc:
        raise DecryptionError("malformed DET ciphertext") from exc
