"""SQL lexer.

The lexer turns a query string into a stream of :class:`Token` objects.  It
supports the SQL subset required by the paper's case study: SELECT queries
with projections, aggregates, joins, WHERE predicates (comparisons, BETWEEN,
IN, LIKE, IS NULL), GROUP BY / HAVING, ORDER BY and LIMIT.

The lexer is deliberately independent of the parser so that the *token-based
query-string distance* (Definition 3 in the paper) can be computed on raw
token streams, exactly as the measure prescribes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import SqlSyntaxError


class TokenType(enum.Enum):
    """Lexical category of a :class:`Token`."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    STAR = "star"
    EOF = "eof"


#: Reserved words recognised as keywords (upper-cased).
KEYWORDS: frozenset[str] = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "ASC",
        "DESC",
        "LIMIT",
        "AND",
        "OR",
        "NOT",
        "IN",
        "BETWEEN",
        "LIKE",
        "IS",
        "NULL",
        "AS",
        "JOIN",
        "INNER",
        "LEFT",
        "RIGHT",
        "OUTER",
        "CROSS",
        "ON",
        "COUNT",
        "SUM",
        "AVG",
        "MIN",
        "MAX",
        "HOMSUM",
        "TRUE",
        "FALSE",
    }
)

#: Names treated as aggregate functions by the parser.  HOMSUM is the
#: homomorphic summation aggregate emitted by the CryptDB-style rewriter
#: (it never appears in plaintext queries, but encrypted query strings must
#: remain parseable SQL).
AGGREGATE_FUNCTIONS: frozenset[str] = frozenset(
    {"COUNT", "SUM", "AVG", "MIN", "MAX", "HOMSUM"}
)

_MULTI_CHAR_OPERATORS = ("<>", "!=", "<=", ">=")
_SINGLE_CHAR_OPERATORS = "=<>+-/%"
_PUNCTUATION = "(),."


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes
    ----------
    type:
        Lexical category.
    value:
        Canonical token text.  Keywords are upper-cased, identifiers keep
        their original spelling, string literals keep their quoted content
        (without the surrounding quotes).
    position:
        Character offset of the token's first character in the source string.
    """

    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        """Return True if this token is a keyword with one of ``names``."""
        return self.type is TokenType.KEYWORD and self.value in names

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.type.value}:{self.value}"


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql`` into a list of tokens terminated by an EOF token.

    Raises
    ------
    SqlSyntaxError
        If an unexpected character or an unterminated string literal is
        encountered.
    """
    tokens: list[Token] = []
    pos = 0
    length = len(sql)

    while pos < length:
        char = sql[pos]

        if char.isspace():
            pos += 1
            continue

        if char == "'":
            tokens.append(_lex_string(sql, pos))
            pos += len(tokens[-1].value) + 2 + tokens[-1].value.count("'")
            continue

        if char.isdigit() or (char == "." and pos + 1 < length and sql[pos + 1].isdigit()):
            token = _lex_number(sql, pos)
            tokens.append(token)
            pos += len(token.value)
            continue

        if char.isalpha() or char == "_":
            token = _lex_word(sql, pos)
            tokens.append(token)
            pos += len(token.value) if token.type is not TokenType.KEYWORD else _word_length(sql, pos)
            continue

        if char == '"':
            token = _lex_quoted_identifier(sql, pos)
            tokens.append(token)
            pos += len(token.value) + 2
            continue

        if sql[pos : pos + 2] in _MULTI_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, sql[pos : pos + 2], pos))
            pos += 2
            continue

        if char == "*":
            tokens.append(Token(TokenType.STAR, "*", pos))
            pos += 1
            continue

        if char in _SINGLE_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, char, pos))
            pos += 1
            continue

        if char in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, char, pos))
            pos += 1
            continue

        if char == ";":
            # A trailing semicolon terminates the statement.
            pos += 1
            continue

        raise SqlSyntaxError(f"unexpected character {char!r}", position=pos)

    tokens.append(Token(TokenType.EOF, "", length))
    return tokens


def _lex_string(sql: str, start: int) -> Token:
    """Lex a single-quoted string literal starting at ``start``.

    Doubled quotes (``''``) inside the literal escape a single quote, as in
    standard SQL.
    """
    pos = start + 1
    parts: list[str] = []
    while pos < len(sql):
        char = sql[pos]
        if char == "'":
            if pos + 1 < len(sql) and sql[pos + 1] == "'":
                parts.append("'")
                pos += 2
                continue
            return Token(TokenType.STRING, "".join(parts), start)
        parts.append(char)
        pos += 1
    raise SqlSyntaxError("unterminated string literal", position=start)


def _lex_quoted_identifier(sql: str, start: int) -> Token:
    """Lex a double-quoted identifier starting at ``start``."""
    end = sql.find('"', start + 1)
    if end == -1:
        raise SqlSyntaxError("unterminated quoted identifier", position=start)
    return Token(TokenType.IDENTIFIER, sql[start + 1 : end], start)


def _lex_number(sql: str, start: int) -> Token:
    """Lex an integer or decimal literal starting at ``start``."""
    pos = start
    seen_dot = False
    while pos < len(sql):
        char = sql[pos]
        if char.isdigit():
            pos += 1
        elif char == "." and not seen_dot:
            seen_dot = True
            pos += 1
        else:
            break
    text = sql[start:pos]
    if text.endswith("."):
        raise SqlSyntaxError(f"malformed number {text!r}", position=start)
    return Token(TokenType.NUMBER, text, start)


def _word_length(sql: str, start: int) -> int:
    pos = start
    while pos < len(sql) and (sql[pos].isalnum() or sql[pos] == "_"):
        pos += 1
    return pos - start


def _lex_word(sql: str, start: int) -> Token:
    """Lex an identifier or keyword starting at ``start``."""
    length = _word_length(sql, start)
    word = sql[start : start + length]
    upper = word.upper()
    if upper in KEYWORDS:
        return Token(TokenType.KEYWORD, upper, start)
    return Token(TokenType.IDENTIFIER, word, start)
