"""AST visitors and transformers.

The encryption schemes in :mod:`repro.core.schemes` are implemented as
:class:`AstTransformer` subclasses: they walk a query and replace relation
names, attribute names and constants with their encrypted counterparts,
leaving the query *structure* untouched.  Keeping the traversal machinery in
one place guarantees that every scheme treats the same syntactic positions
consistently (e.g. constants inside BETWEEN, IN lists and aggregate
arguments).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.sql.ast import (
    AggregateCall,
    BetweenPredicate,
    BinaryOp,
    ColumnRef,
    Expression,
    InPredicate,
    IsNullPredicate,
    Join,
    LikePredicate,
    Literal,
    LogicalOp,
    NotOp,
    OrderItem,
    Query,
    SelectItem,
    Star,
    TableRef,
    UnaryMinus,
)


def walk(node: object) -> Iterator[object]:
    """Yield ``node`` and every descendant AST node in pre-order."""
    yield node
    for child in _children(node):
        yield from walk(child)


def _children(node: object) -> tuple[object, ...]:
    if isinstance(node, Query):
        children: list[object] = list(node.select_items)
        children.append(node.from_table)
        children.extend(node.joins)
        if node.where is not None:
            children.append(node.where)
        children.extend(node.group_by)
        if node.having is not None:
            children.append(node.having)
        children.extend(node.order_by)
        return tuple(children)
    if isinstance(node, SelectItem):
        return (node.expression,)
    if isinstance(node, Join):
        if node.condition is not None:
            return (node.right, node.condition)
        return (node.right,)
    if isinstance(node, OrderItem):
        return (node.expression,)
    if isinstance(node, BinaryOp):
        return (node.left, node.right)
    if isinstance(node, LogicalOp):
        return node.operands
    if isinstance(node, (NotOp, UnaryMinus)):
        return (node.operand,)
    if isinstance(node, BetweenPredicate):
        return (node.operand, node.low, node.high)
    if isinstance(node, InPredicate):
        return (node.operand, *node.values)
    if isinstance(node, LikePredicate):
        return (node.operand, node.pattern)
    if isinstance(node, IsNullPredicate):
        return (node.operand,)
    if isinstance(node, AggregateCall):
        return (node.argument,)
    return ()


def contains_aggregate(expr: Expression) -> bool:
    """Return True if ``expr`` contains an aggregate function call."""
    return any(isinstance(node, AggregateCall) for node in walk(expr))


def column_refs(node: object) -> list[ColumnRef]:
    """Return every :class:`ColumnRef` below ``node`` in pre-order."""
    return [n for n in walk(node) if isinstance(n, ColumnRef)]


def literals(node: object) -> list[Literal]:
    """Return every :class:`Literal` below ``node`` in pre-order."""
    return [n for n in walk(node) if isinstance(n, Literal)]


class AstVisitor:
    """Read-only visitor with per-node-type hooks.

    Subclasses override ``visit_<NodeType>`` methods; unhandled node types
    fall back to :meth:`generic_visit`, which simply recurses.
    """

    def visit(self, node: object) -> None:
        """Dispatch on the runtime type of ``node``."""
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            method(node)
        else:
            self.generic_visit(node)

    def generic_visit(self, node: object) -> None:
        """Visit every child of ``node``."""
        for child in _children(node):
            self.visit(child)


class AstTransformer:
    """Bottom-up transformer producing a new (immutable) AST.

    Subclasses override the ``transform_*`` hooks for the node types they are
    interested in; by default every node is rebuilt with transformed children
    and otherwise unchanged.  The transformer guarantees structural fidelity:
    node types, clause order and arity never change unless a hook says so.
    """

    # -- hooks intended for overriding --------------------------------- #

    def transform_literal(self, literal: Literal, context: "TransformContext") -> Expression:
        """Transform a constant.  ``context`` carries its syntactic position."""
        return literal

    def transform_column_ref(self, ref: ColumnRef, context: "TransformContext") -> Expression:
        """Transform an attribute (column) reference."""
        return ref

    def transform_table_ref(self, ref: TableRef) -> TableRef:
        """Transform a relation (table) reference."""
        return ref

    # -- traversal ------------------------------------------------------ #

    def transform_query(self, query: Query) -> Query:
        """Return a transformed copy of ``query``."""
        select_items = tuple(
            SelectItem(
                self._transform_expression(
                    item.expression, TransformContext(clause="SELECT")
                ),
                item.alias,
            )
            for item in query.select_items
        )
        from_table = self.transform_table_ref(query.from_table)
        joins = tuple(
            Join(
                join.join_type,
                self.transform_table_ref(join.right),
                None
                if join.condition is None
                else self._transform_expression(join.condition, TransformContext(clause="ON")),
            )
            for join in query.joins
        )
        where = (
            None
            if query.where is None
            else self._transform_expression(query.where, TransformContext(clause="WHERE"))
        )
        group_by = tuple(
            self._transform_expression(expr, TransformContext(clause="GROUP BY"))
            for expr in query.group_by
        )
        having = (
            None
            if query.having is None
            else self._transform_expression(query.having, TransformContext(clause="HAVING"))
        )
        order_by = tuple(
            OrderItem(
                self._transform_expression(item.expression, TransformContext(clause="ORDER BY")),
                item.ascending,
            )
            for item in query.order_by
        )
        return Query(
            select_items=select_items,
            from_table=from_table,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=query.limit,
            distinct=query.distinct,
        )

    def _transform_expression(
        self, expr: Expression, context: "TransformContext"
    ) -> Expression:
        if isinstance(expr, Literal):
            return self.transform_literal(expr, context)
        if isinstance(expr, ColumnRef):
            return self.transform_column_ref(expr, context)
        if isinstance(expr, Star):
            return expr
        if isinstance(expr, AggregateCall):
            inner_context = context.with_aggregate(expr.function)
            return AggregateCall(
                expr.function,
                self._transform_expression(expr.argument, inner_context),
                expr.distinct,
            )
        if isinstance(expr, UnaryMinus):
            return UnaryMinus(self._transform_expression(expr.operand, context))
        if isinstance(expr, BinaryOp):
            comparison = context.with_comparison(expr)
            return BinaryOp(
                expr.op,
                self._transform_expression(expr.left, comparison),
                self._transform_expression(expr.right, comparison),
            )
        if isinstance(expr, LogicalOp):
            return LogicalOp(
                expr.op,
                tuple(self._transform_expression(op, context) for op in expr.operands),
            )
        if isinstance(expr, NotOp):
            return NotOp(self._transform_expression(expr.operand, context))
        if isinstance(expr, BetweenPredicate):
            inner = context.with_comparison(expr)
            return BetweenPredicate(
                self._transform_expression(expr.operand, inner),
                self._transform_expression(expr.low, inner),
                self._transform_expression(expr.high, inner),
                expr.negated,
            )
        if isinstance(expr, InPredicate):
            inner = context.with_comparison(expr)
            return InPredicate(
                self._transform_expression(expr.operand, inner),
                tuple(self._transform_expression(v, inner) for v in expr.values),
                expr.negated,
            )
        if isinstance(expr, LikePredicate):
            inner = context.with_comparison(expr)
            return LikePredicate(
                self._transform_expression(expr.operand, inner),
                self._transform_expression(expr.pattern, inner),
                expr.negated,
            )
        if isinstance(expr, IsNullPredicate):
            return IsNullPredicate(
                self._transform_expression(expr.operand, context), expr.negated
            )
        raise TypeError(f"cannot transform expression of type {type(expr).__name__}")


class TransformContext:
    """Syntactic position information handed to transformer hooks.

    The encryption schemes need to know *where* a constant occurs: the
    access-area scheme, for instance, encrypts constants compared against an
    attribute inside an aggregate argument differently from constants in
    range predicates.  The context records the enclosing clause, the nearest
    enclosing comparison-like node (used to find the attribute a constant is
    compared with), and whether the position is inside an aggregate call.
    """

    __slots__ = ("clause", "comparison", "aggregate")

    def __init__(
        self,
        clause: str,
        comparison: Expression | None = None,
        aggregate: str | None = None,
    ) -> None:
        self.clause = clause
        self.comparison = comparison
        self.aggregate = aggregate

    def with_comparison(self, comparison: Expression) -> "TransformContext":
        """Return a copy with ``comparison`` recorded as the enclosing predicate."""
        return TransformContext(self.clause, comparison, self.aggregate)

    def with_aggregate(self, function: str) -> "TransformContext":
        """Return a copy noting that we are inside aggregate ``function``."""
        return TransformContext(self.clause, self.comparison, function)

    def compared_column(self) -> ColumnRef | None:
        """Return the column the enclosing predicate compares against, if any.

        For a predicate like ``A2 > 5`` or ``A2 BETWEEN 1 AND 9`` the
        transformer hook for the constant(s) receives this context and can
        look up which attribute-specific encryption function to apply
        (``EncA2.Const`` in the paper's notation).
        """
        if self.comparison is None:
            return None
        refs = column_refs(self.comparison)
        if not refs:
            return None
        return refs[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransformContext(clause={self.clause!r}, aggregate={self.aggregate!r}, "
            f"comparison={'yes' if self.comparison is not None else 'no'})"
        )
