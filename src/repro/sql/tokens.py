"""Token-set extraction for the token-based query-string distance.

Definition 3 of the paper interprets an SQL query as a *set of tokens* and
measures distance with the Jaccard measure over these sets.  This module
defines exactly which token representation is used, because the
distance-preservation argument hinges on encryption mapping plain-text tokens
to cipher-text tokens *bijectively per token kind*.

Tokens are represented as ``(kind, text)`` pairs so that an identifier ``x``
and a string literal ``'x'`` never collide.
"""

from __future__ import annotations

from repro.sql.ast import Query
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.render import render_query

#: A token as used by the token-based distance: (kind, canonical text).
QueryToken = tuple[str, str]


def token_stream_to_set(tokens: list[Token]) -> frozenset[QueryToken]:
    """Convert a lexer token stream into the token set of Definition 3.

    EOF tokens are dropped; keywords are case-normalized by the lexer;
    identifiers keep their spelling (the paper treats ``R`` and ``r`` as
    different names, and so do real DBMSs for quoted identifiers).

    The number following a ``LIMIT`` keyword is emitted with the dedicated
    kind ``"limit"``: it is part of the query *structure* (how many rows to
    fetch), not database content, so the DPE schemes leave it in the clear —
    giving it its own kind keeps it from ever colliding with a constant of
    the same spelling.
    """
    result = set()
    previous_keyword: str | None = None
    for token in tokens:
        if token.type is TokenType.EOF:
            continue
        if token.type is TokenType.NUMBER and previous_keyword == "LIMIT":
            result.add(("limit", token.value))
        else:
            result.add((token.type.value, token.value))
        previous_keyword = token.value if token.type is TokenType.KEYWORD else None
    return frozenset(result)


def query_token_set(query: Query | str) -> frozenset[QueryToken]:
    """Return the token set of a query (given as AST or SQL text)."""
    sql = query if isinstance(query, str) else render_query(query)
    return token_stream_to_set(tokenize(sql))
