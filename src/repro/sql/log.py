"""Query logs: ordered collections of SQL queries with metadata.

A :class:`QueryLog` is the unit that the data owner shares with the service
provider (encrypted).  Entries keep optional metadata (user, timestamp)
because real logs carry it, but none of the distance measures uses it; the
encryption schemes simply pass it through or drop it depending on the
security model.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.exceptions import SqlError
from repro.sql.ast import Query
from repro.sql.parser import parse_query
from repro.sql.render import render_query


@dataclass(frozen=True)
class LogEntry:
    """A single query-log entry: the parsed query plus optional metadata."""

    query: Query
    user: str | None = None
    timestamp: float | None = None
    metadata: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    @property
    def sql(self) -> str:
        """Canonical SQL text of the entry's query."""
        return render_query(self.query)

    def with_query(self, query: Query) -> "LogEntry":
        """Return a copy of the entry with ``query`` substituted.

        Used by the encryption schemes, which replace each query with its
        encrypted counterpart while keeping the log structure intact.
        """
        return LogEntry(query, self.user, self.timestamp, self.metadata)


class QueryLog(Sequence[LogEntry]):
    """An ordered, immutable-by-convention collection of log entries."""

    def __init__(self, entries: Iterable[LogEntry] = ()) -> None:
        self._entries: list[LogEntry] = list(entries)

    # -- construction --------------------------------------------------- #

    @classmethod
    def from_sql(cls, statements: Iterable[str]) -> "QueryLog":
        """Build a log by parsing an iterable of SQL strings."""
        entries = [LogEntry(parse_query(sql)) for sql in statements]
        return cls(entries)

    @classmethod
    def from_queries(cls, queries: Iterable[Query]) -> "QueryLog":
        """Build a log from already-parsed queries."""
        return cls(LogEntry(query) for query in queries)

    # -- sequence protocol ----------------------------------------------- #

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return QueryLog(self._entries[index])
        return self._entries[index]

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryLog):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryLog({len(self._entries)} entries)"

    # -- accessors ------------------------------------------------------- #

    @property
    def queries(self) -> list[Query]:
        """The parsed queries, in log order."""
        return [entry.query for entry in self._entries]

    @property
    def statements(self) -> list[str]:
        """The canonical SQL strings, in log order."""
        return [entry.sql for entry in self._entries]

    def accessed_tables(self) -> frozenset[str]:
        """Names of all relations referenced by at least one query."""
        tables: set[str] = set()
        for query in self.queries:
            tables.update(query.table_names())
        return frozenset(tables)

    def accessed_columns(self) -> frozenset[str]:
        """Unqualified names of all columns referenced by at least one query."""
        from repro.sql.visitor import column_refs

        columns: set[str] = set()
        for query in self.queries:
            columns.update(ref.name for ref in column_refs(query))
        return frozenset(columns)

    def map_queries(self, transform) -> "QueryLog":
        """Return a new log with ``transform(query)`` applied to every entry."""
        return QueryLog(entry.with_query(transform(entry.query)) for entry in self._entries)

    # -- (de)serialization ------------------------------------------------ #

    def to_json(self) -> str:
        """Serialize the log to a JSON string (one object per entry)."""
        payload = [
            {
                "sql": entry.sql,
                "user": entry.user,
                "timestamp": entry.timestamp,
                "metadata": dict(entry.metadata),
            }
            for entry in self._entries
        ]
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "QueryLog":
        """Deserialize a log previously produced by :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SqlError(f"invalid query-log JSON: {exc}") from exc
        entries = []
        for item in payload:
            entries.append(
                LogEntry(
                    query=parse_query(item["sql"]),
                    user=item.get("user"),
                    timestamp=item.get("timestamp"),
                    metadata=tuple(sorted((item.get("metadata") or {}).items())),
                )
            )
        return cls(entries)

    def save(self, path: str) -> None:
        """Write the log to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "QueryLog":
        """Read a log previously written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
