"""SnipSuggest-style feature extraction (query-structure distance).

Following Khoussainova et al. [15] as used by the paper (Example 5), a
*feature* of a query is a tuple representing a part of its structure, e.g.::

    SELECT A1 FROM R WHERE A2 > 5
    -> {(SELECT, A1), (FROM, R), (WHERE, A2 >)}

We extract one feature per:

* projected column / aggregate in the SELECT clause (``(SELECT, expr)``),
* referenced relation (``(FROM, relation)``),
* predicate skeleton in the WHERE/HAVING clauses: the attribute together
  with the comparison operator, but **without** the constant
  (``(WHERE, A2 >)``) — this is why the structure measure tolerates PROB
  encryption of constants,
* join condition (``(JOIN, left = right)``),
* group-by column (``(GROUPBY, col)``) and order-by column
  (``(ORDERBY, col direction)``).

Features are plain ``(clause, text)`` string tuples so that feature sets are
hashable and Jaccard-comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sql.ast import (
    AggregateCall,
    BetweenPredicate,
    BinaryOp,
    ColumnRef,
    ComparisonOp,
    Expression,
    InPredicate,
    IsNullPredicate,
    LikePredicate,
    LogicalOp,
    NotOp,
    Query,
    Star,
    UnaryMinus,
)
from repro.sql.render import render_expression


@dataclass(frozen=True, order=True)
class Feature:
    """A structural feature: the clause it stems from plus a skeleton string."""

    clause: str
    skeleton: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"({self.clause}, {self.skeleton})"


def feature_set(query: Query) -> frozenset[Feature]:
    """Extract the feature set of ``query`` (Example 5 of the paper)."""
    features: set[Feature] = set()

    for item in query.select_items:
        features.add(Feature("SELECT", _select_skeleton(item.expression)))

    for table in query.tables():
        features.add(Feature("FROM", table.name))

    if query.where is not None:
        for skeleton in _predicate_skeletons(query.where):
            features.add(Feature("WHERE", skeleton))

    for join in query.joins:
        if join.condition is not None:
            features.add(Feature("JOIN", render_expression(join.condition)))

    for expr in query.group_by:
        features.add(Feature("GROUPBY", render_expression(expr)))

    if query.having is not None:
        for skeleton in _predicate_skeletons(query.having):
            features.add(Feature("HAVING", skeleton))

    for item in query.order_by:
        direction = "ASC" if item.ascending else "DESC"
        features.add(Feature("ORDERBY", f"{render_expression(item.expression)} {direction}"))

    return frozenset(features)


def _select_skeleton(expr: Expression) -> str:
    """Skeleton of a SELECT item: full expression text (no constants expected)."""
    if isinstance(expr, Star):
        return "*" if expr.table is None else f"{expr.table}.*"
    if isinstance(expr, AggregateCall):
        return f"{expr.function}({_select_skeleton(expr.argument)})"
    return render_expression(expr)


def _predicate_skeletons(expr: Expression) -> list[str]:
    """Return the predicate skeletons of a WHERE/HAVING expression.

    The skeleton of an atomic predicate keeps the attribute side and the
    operator but drops constants, mirroring Example 5 where ``A2 > 5``
    contributes the feature ``(WHERE, A2 >)``.
    """
    if isinstance(expr, LogicalOp):
        skeletons: list[str] = []
        for operand in expr.operands:
            skeletons.extend(_predicate_skeletons(operand))
        return skeletons
    if isinstance(expr, NotOp):
        return [f"NOT {s}" for s in _predicate_skeletons(expr.operand)]
    return [_atomic_skeleton(expr)]


def _atomic_skeleton(expr: Expression) -> str:
    if isinstance(expr, BinaryOp) and isinstance(expr.op, ComparisonOp):
        left = _operand_skeleton(expr.left)
        right = _operand_skeleton(expr.right)
        # Keep only non-constant sides: `A2 > 5` -> `A2 >`, `A = B` -> `A = B`.
        if right is None and left is not None:
            return f"{left} {expr.op.value}"
        if left is None and right is not None:
            return f"{right} {expr.op.flip().value}"
        if left is not None and right is not None:
            return f"{left} {expr.op.value} {right}"
        return expr.op.value
    if isinstance(expr, BetweenPredicate):
        operand = _operand_skeleton(expr.operand) or "?"
        neg = "NOT " if expr.negated else ""
        return f"{operand} {neg}BETWEEN"
    if isinstance(expr, InPredicate):
        operand = _operand_skeleton(expr.operand) or "?"
        neg = "NOT " if expr.negated else ""
        return f"{operand} {neg}IN"
    if isinstance(expr, LikePredicate):
        operand = _operand_skeleton(expr.operand) or "?"
        neg = "NOT " if expr.negated else ""
        return f"{operand} {neg}LIKE"
    if isinstance(expr, IsNullPredicate):
        operand = _operand_skeleton(expr.operand) or "?"
        neg = "NOT " if expr.negated else ""
        return f"{operand} IS {neg}NULL"
    # Fall back to full rendering for anything exotic (boolean columns etc.).
    return render_expression(expr)


def _operand_skeleton(expr: Expression) -> str | None:
    """Return the skeleton text of a predicate operand, or None for constants."""
    from repro.sql.ast import Literal

    if isinstance(expr, Literal):
        return None
    if isinstance(expr, UnaryMinus):
        inner = _operand_skeleton(expr.operand)
        return None if inner is None else f"-{inner}"
    if isinstance(expr, ColumnRef):
        return expr.qualified_name
    if isinstance(expr, AggregateCall):
        return f"{expr.function}({_select_skeleton(expr.argument)})"
    if isinstance(expr, BinaryOp):
        left = _operand_skeleton(expr.left)
        right = _operand_skeleton(expr.right)
        if left is None and right is None:
            return None
        op = expr.op.value
        return f"{left or '?'} {op} {right or '?'}"
    return render_expression(expr)
