"""Typed AST for the supported SQL subset.

All nodes are frozen dataclasses, so queries are immutable values: rewriting
(e.g. by the encryption schemes) produces new trees via
:class:`repro.sql.visitor.AstTransformer`.  Immutability also makes nodes
hashable, which the distance measures rely on (feature sets, token sets).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Expression:
    """Marker base class for all expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expression):
    """A literal constant: integer, float, string, boolean or NULL.

    The original SQL type is tracked through the runtime type of ``value``:
    ``int``, ``float``, ``str``, ``bool`` or ``None``.
    """

    value: int | float | str | bool | None

    def sql_type(self) -> str:
        """Return a coarse SQL type name for the literal."""
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "BOOLEAN"
        if isinstance(self.value, int):
            return "INTEGER"
        if isinstance(self.value, float):
            return "REAL"
        return "TEXT"


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to a column, optionally qualified with a table name/alias."""

    name: str
    table: str | None = None

    @property
    def qualified_name(self) -> str:
        """Return ``table.name`` when qualified, else just ``name``."""
        if self.table is None:
            return self.name
        return f"{self.table}.{self.name}"


@dataclass(frozen=True)
class Star(Expression):
    """The ``*`` projection, optionally qualified (``t.*``)."""

    table: str | None = None


class ComparisonOp(enum.Enum):
    """Binary comparison operators."""

    EQ = "="
    NEQ = "<>"
    LT = "<"
    LTE = "<="
    GT = ">"
    GTE = ">="

    def flip(self) -> "ComparisonOp":
        """Return the operator with operand sides swapped (``a < b`` ≡ ``b > a``)."""
        return {
            ComparisonOp.EQ: ComparisonOp.EQ,
            ComparisonOp.NEQ: ComparisonOp.NEQ,
            ComparisonOp.LT: ComparisonOp.GT,
            ComparisonOp.LTE: ComparisonOp.GTE,
            ComparisonOp.GT: ComparisonOp.LT,
            ComparisonOp.GTE: ComparisonOp.LTE,
        }[self]


class ArithmeticOp(enum.Enum):
    """Binary arithmetic operators."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"


class LogicalConnective(enum.Enum):
    """Logical connectives for predicate composition."""

    AND = "AND"
    OR = "OR"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary comparison or arithmetic expression."""

    op: ComparisonOp | ArithmeticOp
    left: Expression
    right: Expression


@dataclass(frozen=True)
class LogicalOp(Expression):
    """Conjunction or disjunction of two or more predicates."""

    op: LogicalConnective
    operands: tuple[Expression, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise ValueError("LogicalOp requires at least two operands")


@dataclass(frozen=True)
class NotOp(Expression):
    """Logical negation of a predicate."""

    operand: Expression


@dataclass(frozen=True)
class UnaryMinus(Expression):
    """Arithmetic negation."""

    operand: Expression


@dataclass(frozen=True)
class BetweenPredicate(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass(frozen=True)
class InPredicate(Expression):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    values: tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True)
class LikePredicate(Expression):
    """``expr [NOT] LIKE pattern``."""

    operand: Expression
    pattern: Expression
    negated: bool = False


@dataclass(frozen=True)
class IsNullPredicate(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False


@dataclass(frozen=True)
class AggregateCall(Expression):
    """Aggregate function call such as ``SUM(price)`` or ``COUNT(*)``."""

    function: str
    argument: Expression
    distinct: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "function", self.function.upper())


@dataclass(frozen=True)
class SelectItem:
    """A single item in the SELECT clause: an expression with optional alias."""

    expression: Expression
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    """A base-table reference in the FROM clause, with optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        """Name under which columns of this table can be qualified."""
        return self.alias if self.alias is not None else self.name


class JoinType(enum.Enum):
    """Join kinds supported by the parser and executor."""

    INNER = "INNER"
    LEFT = "LEFT"
    RIGHT = "RIGHT"
    CROSS = "CROSS"


@dataclass(frozen=True)
class Join:
    """An explicit join between the accumulated FROM item and ``right``."""

    join_type: JoinType
    right: TableRef
    condition: Expression | None = None


@dataclass(frozen=True)
class OrderItem:
    """A single ORDER BY item."""

    expression: Expression
    ascending: bool = True


@dataclass(frozen=True)
class Query:
    """A parsed SELECT query.

    The FROM clause is represented as a first :class:`TableRef` plus a tuple
    of :class:`Join` steps; comma-separated FROM lists are parsed as CROSS
    joins, which preserves semantics while keeping the structure uniform.
    """

    select_items: tuple[SelectItem, ...]
    from_table: TableRef
    joins: tuple[Join, ...] = ()
    where: Expression | None = None
    group_by: tuple[Expression, ...] = ()
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False

    def tables(self) -> tuple[TableRef, ...]:
        """Return every base-table reference in the FROM clause."""
        return (self.from_table, *(join.right for join in self.joins))

    def table_names(self) -> tuple[str, ...]:
        """Return the (unaliased) names of all referenced tables."""
        return tuple(ref.name for ref in self.tables())

    def has_aggregates(self) -> bool:
        """Return True if any SELECT item or HAVING clause uses an aggregate."""
        from repro.sql.visitor import contains_aggregate

        if any(contains_aggregate(item.expression) for item in self.select_items):
            return True
        return self.having is not None and contains_aggregate(self.having)


#: Convenience alias used throughout the code base.
AstNode = (
    Expression
    | SelectItem
    | TableRef
    | Join
    | OrderItem
    | Query
)
