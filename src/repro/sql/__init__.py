"""SQL substrate: lexer, parser, AST, rendering, features and query logs.

This package implements the minimal-but-real SQL machinery the paper's case
study needs.  SQL queries are first tokenized (:mod:`repro.sql.lexer`) and
parsed (:mod:`repro.sql.parser`) into a typed AST (:mod:`repro.sql.ast`).
The AST is the unit all other subsystems work on:

* :mod:`repro.sql.render` turns an AST back into SQL text,
* :mod:`repro.sql.visitor` provides visitors/transformers used by the
  encryption schemes to rewrite relation names, attribute names and
  constants,
* :mod:`repro.sql.features` extracts SnipSuggest-style feature sets used by
  the query-structure distance,
* :mod:`repro.sql.log` bundles queries into a :class:`~repro.sql.log.QueryLog`
  with (de)serialization.
"""

from repro.sql.ast import (
    AggregateCall,
    BetweenPredicate,
    BinaryOp,
    ColumnRef,
    ComparisonOp,
    InPredicate,
    IsNullPredicate,
    Join,
    LikePredicate,
    Literal,
    LogicalOp,
    NotOp,
    OrderItem,
    Query,
    SelectItem,
    Star,
    TableRef,
    UnaryMinus,
)
from repro.sql.features import Feature, feature_set
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.log import LogEntry, QueryLog
from repro.sql.normalize import normalize_sql
from repro.sql.parser import parse_query
from repro.sql.render import render_expression, render_query
from repro.sql.tokens import query_token_set
from repro.sql.visitor import AstTransformer, AstVisitor, walk

__all__ = [
    "AggregateCall",
    "AstTransformer",
    "AstVisitor",
    "BetweenPredicate",
    "BinaryOp",
    "ColumnRef",
    "ComparisonOp",
    "Feature",
    "InPredicate",
    "IsNullPredicate",
    "Join",
    "LikePredicate",
    "Literal",
    "LogEntry",
    "LogicalOp",
    "NotOp",
    "OrderItem",
    "Query",
    "QueryLog",
    "SelectItem",
    "Star",
    "TableRef",
    "Token",
    "TokenType",
    "UnaryMinus",
    "feature_set",
    "normalize_sql",
    "parse_query",
    "query_token_set",
    "render_expression",
    "render_query",
    "tokenize",
    "walk",
]
