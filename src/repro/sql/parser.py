"""Recursive-descent parser for the supported SQL subset.

The grammar (informally)::

    query       := SELECT [DISTINCT] select_list FROM from_clause
                   [WHERE expr] [GROUP BY expr_list] [HAVING expr]
                   [ORDER BY order_list] [LIMIT number]
    select_list := select_item ("," select_item)*
    select_item := "*" | expr [[AS] alias]
    from_clause := table_ref (("," table_ref) | join)*
    join        := [INNER|LEFT [OUTER]|RIGHT [OUTER]|CROSS] JOIN table_ref [ON expr]
    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := [NOT] predicate
    predicate   := additive [comparison | BETWEEN | IN | LIKE | IS NULL]
    additive    := multiplicative (("+"|"-") multiplicative)*
    multiplicative := unary (("*"|"/"|"%") unary)*
    unary       := ["-"] primary
    primary     := literal | aggregate | column_ref | "(" expr ")"

Operator precedence follows standard SQL.  The parser produces the immutable
AST defined in :mod:`repro.sql.ast`.
"""

from __future__ import annotations

from repro.exceptions import SqlSyntaxError
from repro.sql.ast import (
    AggregateCall,
    ArithmeticOp,
    BetweenPredicate,
    BinaryOp,
    ColumnRef,
    ComparisonOp,
    Expression,
    InPredicate,
    IsNullPredicate,
    Join,
    JoinType,
    LikePredicate,
    Literal,
    LogicalConnective,
    LogicalOp,
    NotOp,
    OrderItem,
    Query,
    SelectItem,
    Star,
    TableRef,
    UnaryMinus,
)
from repro.sql.lexer import AGGREGATE_FUNCTIONS, Token, TokenType, tokenize

_COMPARISON_OPS = {
    "=": ComparisonOp.EQ,
    "<>": ComparisonOp.NEQ,
    "!=": ComparisonOp.NEQ,
    "<": ComparisonOp.LT,
    "<=": ComparisonOp.LTE,
    ">": ComparisonOp.GT,
    ">=": ComparisonOp.GTE,
}


def parse_query(sql: str) -> Query:
    """Parse ``sql`` into a :class:`~repro.sql.ast.Query`.

    Raises
    ------
    SqlSyntaxError
        If the string is not a syntactically valid query in the supported
        subset.
    """
    parser = _Parser(tokenize(sql))
    query = parser.parse_query()
    parser.expect_eof()
    return query


def parse_expression(sql: str) -> Expression:
    """Parse a standalone expression (used by tests and the rewriter)."""
    parser = _Parser(tokenize(sql))
    expr = parser.parse_expression()
    parser.expect_eof()
    return expr


class _Parser:
    """Stateful cursor over the token stream."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------ #
    # token-stream helpers

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check_keyword(self, *names: str) -> bool:
        return self._current.is_keyword(*names)

    def _accept_keyword(self, *names: str) -> bool:
        if self._check_keyword(*names):
            self._advance()
            return True
        return False

    def _expect_keyword(self, name: str) -> Token:
        if not self._check_keyword(name):
            raise SqlSyntaxError(
                f"expected keyword {name}, found {self._current.value!r}",
                position=self._current.position,
            )
        return self._advance()

    def _accept_punctuation(self, char: str) -> bool:
        token = self._current
        if token.type is TokenType.PUNCTUATION and token.value == char:
            self._advance()
            return True
        return False

    def _expect_punctuation(self, char: str) -> None:
        if not self._accept_punctuation(char):
            raise SqlSyntaxError(
                f"expected {char!r}, found {self._current.value!r}",
                position=self._current.position,
            )

    def _expect_identifier(self) -> str:
        token = self._current
        if token.type is not TokenType.IDENTIFIER:
            raise SqlSyntaxError(
                f"expected identifier, found {token.value!r}", position=token.position
            )
        self._advance()
        return token.value

    def expect_eof(self) -> None:
        """Fail unless the whole token stream has been consumed."""
        if self._current.type is not TokenType.EOF:
            raise SqlSyntaxError(
                f"unexpected trailing input {self._current.value!r}",
                position=self._current.position,
            )

    # ------------------------------------------------------------------ #
    # grammar productions

    def parse_query(self) -> Query:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        select_items = self._parse_select_list()

        self._expect_keyword("FROM")
        from_table, joins = self._parse_from_clause()

        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expression()

        group_by: tuple[Expression, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = tuple(self._parse_expression_list())

        having = None
        if self._accept_keyword("HAVING"):
            having = self.parse_expression()

        order_by: tuple[OrderItem, ...] = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = tuple(self._parse_order_list())

        limit = None
        if self._accept_keyword("LIMIT"):
            token = self._current
            if token.type is not TokenType.NUMBER:
                raise SqlSyntaxError("LIMIT requires a numeric literal", token.position)
            self._advance()
            limit = int(token.value)

        return Query(
            select_items=tuple(select_items),
            from_table=from_table,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_list(self) -> list[SelectItem]:
        items = [self._parse_select_item()]
        while self._accept_punctuation(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        if self._current.type is TokenType.STAR:
            self._advance()
            return SelectItem(Star())
        expression = self.parse_expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return SelectItem(expression, alias)

    def _parse_from_clause(self) -> tuple[TableRef, list[Join]]:
        first = self._parse_table_ref()
        joins: list[Join] = []
        while True:
            if self._accept_punctuation(","):
                joins.append(Join(JoinType.CROSS, self._parse_table_ref(), None))
                continue
            join_type = self._parse_join_type()
            if join_type is None:
                break
            right = self._parse_table_ref()
            condition = None
            if self._accept_keyword("ON"):
                condition = self.parse_expression()
            elif join_type is not JoinType.CROSS:
                raise SqlSyntaxError(
                    "non-cross join requires an ON condition", self._current.position
                )
            joins.append(Join(join_type, right, condition))
        return first, joins

    def _parse_join_type(self) -> JoinType | None:
        if self._accept_keyword("JOIN"):
            return JoinType.INNER
        if self._accept_keyword("INNER"):
            self._expect_keyword("JOIN")
            return JoinType.INNER
        if self._accept_keyword("LEFT"):
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            return JoinType.LEFT
        if self._accept_keyword("RIGHT"):
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            return JoinType.RIGHT
        if self._accept_keyword("CROSS"):
            self._expect_keyword("JOIN")
            return JoinType.CROSS
        return None

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_identifier()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return TableRef(name, alias)

    def _parse_expression_list(self) -> list[Expression]:
        expressions = [self.parse_expression()]
        while self._accept_punctuation(","):
            expressions.append(self.parse_expression())
        return expressions

    def _parse_order_list(self) -> list[OrderItem]:
        items = []
        while True:
            expression = self.parse_expression()
            ascending = True
            if self._accept_keyword("ASC"):
                ascending = True
            elif self._accept_keyword("DESC"):
                ascending = False
            items.append(OrderItem(expression, ascending))
            if not self._accept_punctuation(","):
                return items

    # -- expressions --------------------------------------------------- #

    def parse_expression(self) -> Expression:
        """Parse a full boolean/arithmetic expression."""
        return self._parse_or()

    def _parse_or(self) -> Expression:
        operands = [self._parse_and()]
        while self._accept_keyword("OR"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return LogicalOp(LogicalConnective.OR, tuple(operands))

    def _parse_and(self) -> Expression:
        operands = [self._parse_not()]
        while self._accept_keyword("AND"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return LogicalOp(LogicalConnective.AND, tuple(operands))

    def _parse_not(self) -> Expression:
        if self._accept_keyword("NOT"):
            return NotOp(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()

        token = self._current
        if token.type is TokenType.OPERATOR and token.value in _COMPARISON_OPS:
            self._advance()
            right = self._parse_additive()
            return BinaryOp(_COMPARISON_OPS[token.value], left, right)

        negated = False
        if self._check_keyword("NOT"):
            # lookahead: NOT BETWEEN / NOT IN / NOT LIKE
            next_token = self._tokens[self._pos + 1]
            if next_token.is_keyword("BETWEEN", "IN", "LIKE"):
                self._advance()
                negated = True

        if self._accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return BetweenPredicate(left, low, high, negated)

        if self._accept_keyword("IN"):
            self._expect_punctuation("(")
            values = [self._parse_additive()]
            while self._accept_punctuation(","):
                values.append(self._parse_additive())
            self._expect_punctuation(")")
            return InPredicate(left, tuple(values), negated)

        if self._accept_keyword("LIKE"):
            pattern = self._parse_additive()
            return LikePredicate(left, pattern, negated)

        if self._accept_keyword("IS"):
            is_negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return IsNullPredicate(left, is_negated)

        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._current
            if token.type is TokenType.OPERATOR and token.value in ("+", "-"):
                self._advance()
                op = ArithmeticOp.ADD if token.value == "+" else ArithmeticOp.SUB
                left = BinaryOp(op, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self._current
            if token.type is TokenType.STAR:
                self._advance()
                left = BinaryOp(ArithmeticOp.MUL, left, self._parse_unary())
            elif token.type is TokenType.OPERATOR and token.value in ("/", "%"):
                self._advance()
                op = ArithmeticOp.DIV if token.value == "/" else ArithmeticOp.MOD
                left = BinaryOp(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expression:
        token = self._current
        if token.type is TokenType.OPERATOR and token.value == "-":
            self._advance()
            return UnaryMinus(self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._current

        if token.type is TokenType.NUMBER:
            self._advance()
            if "." in token.value:
                return Literal(float(token.value))
            return Literal(int(token.value))

        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)

        if token.is_keyword("NULL"):
            self._advance()
            return Literal(None)

        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)

        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)

        if token.type is TokenType.KEYWORD and token.value in AGGREGATE_FUNCTIONS:
            return self._parse_aggregate()

        if token.type is TokenType.PUNCTUATION and token.value == "(":
            self._advance()
            inner = self.parse_expression()
            self._expect_punctuation(")")
            return inner

        if token.type is TokenType.IDENTIFIER:
            return self._parse_column_ref()

        raise SqlSyntaxError(
            f"unexpected token {token.value!r} in expression", position=token.position
        )

    def _parse_aggregate(self) -> Expression:
        function = self._advance().value
        self._expect_punctuation("(")
        distinct = self._accept_keyword("DISTINCT")
        if self._current.type is TokenType.STAR:
            self._advance()
            argument: Expression = Star()
        else:
            argument = self.parse_expression()
        self._expect_punctuation(")")
        return AggregateCall(function, argument, distinct)

    def _parse_column_ref(self) -> Expression:
        first = self._expect_identifier()
        if self._accept_punctuation("."):
            if self._current.type is TokenType.STAR:
                self._advance()
                return Star(table=first)
            second = self._expect_identifier()
            return ColumnRef(second, table=first)
        return ColumnRef(first)
