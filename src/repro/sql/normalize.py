"""Query normalization.

Normalization canonicalises a query string without changing its meaning:
whitespace is collapsed, keywords are upper-cased and a trailing semicolon is
removed.  The distance measures work on normalized queries so that purely
typographic differences (tabs, line breaks, keyword case) do not affect
distances, on either the plain-text or the cipher-text side.
"""

from __future__ import annotations

from repro.sql.parser import parse_query
from repro.sql.render import render_query


def normalize_sql(sql: str) -> str:
    """Return the canonical rendering of ``sql``.

    The query is parsed and re-rendered, which collapses whitespace,
    upper-cases keywords, normalises operator spelling (``!=`` becomes
    ``<>``) and drops redundant semicolons.

    Raises
    ------
    SqlSyntaxError
        If the input is not valid SQL in the supported subset.
    """
    return render_query(parse_query(sql))


def queries_equivalent(sql_a: str, sql_b: str) -> bool:
    """Return True if both strings parse to the identical AST."""
    return parse_query(sql_a) == parse_query(sql_b)
