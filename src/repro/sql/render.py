"""Render an AST back into SQL text, or compile it to parameterized SQL.

Rendering is the inverse of parsing up to whitespace and redundant
parentheses: ``parse_query(render_query(q)) == q`` holds for every query the
parser produces (this round-trip property is tested with Hypothesis in
``tests/sql/test_roundtrip.py``).  The encryption schemes use the renderer to
produce the *encrypted query strings* that are handed to the service
provider.

:func:`compile_query` is the second emitter: it targets a real SQL engine
(the SQLite execution backend) instead of human eyes.  Identifiers are
double-quoted (encrypted names are hex blobs that could otherwise collide
with keywords or start with digits) and every literal becomes a ``?``
placeholder with the Python value carried out-of-band, so DET ciphertext
strings and OPE integers never pass through SQL text.  Parameterization also
removes two classic text-SQL ambiguities: a literal integer in ORDER BY or
GROUP BY would be read as a column ordinal by SQLite, whereas a bound
parameter is always a constant expression — matching the interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sql.ast import (
    AggregateCall,
    ArithmeticOp,
    BetweenPredicate,
    BinaryOp,
    ColumnRef,
    ComparisonOp,
    Expression,
    InPredicate,
    IsNullPredicate,
    Join,
    JoinType,
    LikePredicate,
    Literal,
    LogicalConnective,
    LogicalOp,
    NotOp,
    OrderItem,
    Query,
    SelectItem,
    Star,
    TableRef,
    UnaryMinus,
)


def render_query(query: Query) -> str:
    """Serialize ``query`` into a canonical SQL string."""
    parts = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_render_select_item(item) for item in query.select_items))
    parts.append("FROM")
    parts.append(_render_table_ref(query.from_table))
    for join in query.joins:
        parts.append(_render_join(join))
    if query.where is not None:
        parts.append("WHERE")
        parts.append(render_expression(query.where))
    if query.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(render_expression(e) for e in query.group_by))
    if query.having is not None:
        parts.append("HAVING")
        parts.append(render_expression(query.having))
    if query.order_by:
        parts.append("ORDER BY")
        parts.append(", ".join(_render_order_item(item) for item in query.order_by))
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    return " ".join(parts)


def render_expression(expr: Expression) -> str:
    """Serialize a single expression into SQL text."""
    if isinstance(expr, Literal):
        return _render_literal(expr)
    if isinstance(expr, ColumnRef):
        return expr.qualified_name
    if isinstance(expr, Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, AggregateCall):
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.function}({distinct}{render_expression(expr.argument)})"
    if isinstance(expr, UnaryMinus):
        return f"-{_render_operand(expr.operand)}"
    if isinstance(expr, BinaryOp):
        op = expr.op.value if isinstance(expr.op, (ComparisonOp, ArithmeticOp)) else str(expr.op)
        return f"{_render_operand(expr.left)} {op} {_render_operand(expr.right)}"
    if isinstance(expr, LogicalOp):
        connective = f" {expr.op.value} "
        return connective.join(_render_operand(op) for op in expr.operands)
    if isinstance(expr, NotOp):
        return f"NOT {_render_operand(expr.operand)}"
    if isinstance(expr, BetweenPredicate):
        neg = "NOT " if expr.negated else ""
        return (
            f"{_render_operand(expr.operand)} {neg}BETWEEN "
            f"{_render_operand(expr.low)} AND {_render_operand(expr.high)}"
        )
    if isinstance(expr, InPredicate):
        neg = "NOT " if expr.negated else ""
        values = ", ".join(render_expression(v) for v in expr.values)
        return f"{_render_operand(expr.operand)} {neg}IN ({values})"
    if isinstance(expr, LikePredicate):
        neg = "NOT " if expr.negated else ""
        return f"{_render_operand(expr.operand)} {neg}LIKE {_render_operand(expr.pattern)}"
    if isinstance(expr, IsNullPredicate):
        neg = "NOT " if expr.negated else ""
        return f"{_render_operand(expr.operand)} IS {neg}NULL"
    raise TypeError(f"cannot render expression of type {type(expr).__name__}")


def _render_operand(expr: Expression) -> str:
    """Render a sub-expression, parenthesising compound operands.

    Parenthesising every compound operand is slightly conservative but keeps
    the renderer simple and the round-trip property exact.
    """
    text = render_expression(expr)
    if isinstance(expr, (LogicalOp, BinaryOp, NotOp, BetweenPredicate, InPredicate,
                         LikePredicate, IsNullPredicate)):
        return f"({text})"
    return text


def _render_literal(literal: Literal) -> str:
    value = literal.value
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def _render_select_item(item: SelectItem) -> str:
    text = render_expression(item.expression)
    if item.alias:
        return f"{text} AS {item.alias}"
    return text


def _render_table_ref(ref: TableRef) -> str:
    if ref.alias:
        return f"{ref.name} AS {ref.alias}"
    return ref.name


def _render_join(join: Join) -> str:
    keyword = {
        JoinType.INNER: "JOIN",
        JoinType.LEFT: "LEFT JOIN",
        JoinType.RIGHT: "RIGHT JOIN",
        JoinType.CROSS: "CROSS JOIN",
    }[join.join_type]
    text = f"{keyword} {_render_table_ref(join.right)}"
    if join.condition is not None:
        text += f" ON {render_expression(join.condition)}"
    return text


def _render_order_item(item: OrderItem) -> str:
    direction = "ASC" if item.ascending else "DESC"
    return f"{render_expression(item.expression)} {direction}"


# --------------------------------------------------------------------------- #
# parameterized compilation (SQLite execution backend)

#: UDF names the compiled SQL relies on.  SQLite's native ``/`` truncates
#: integer division and its ``%`` follows C sign rules; the execution backend
#: registers these functions with Python semantics (true division, Python
#: modulo, ``ExecutionError`` on division by zero) so compiled queries agree
#: with the tree-walking interpreter bit for bit.
DIV_FUNCTION = "REPRO_DIV"
MOD_FUNCTION = "REPRO_MOD"


@dataclass(frozen=True)
class CompiledQuery:
    """Parameterized SQL for one query: text with ``?`` placeholders + values."""

    sql: str
    parameters: tuple[object, ...]


def quote_identifier(name: str) -> str:
    """Quote ``name`` as a SQL identifier (doubling embedded quotes)."""
    return '"' + name.replace('"', '""') + '"'


def compile_query(query: Query) -> CompiledQuery:
    """Compile ``query`` into parameterized SQL for a real engine.

    The emitted dialect is deliberately conservative (explicit parentheses,
    quoted identifiers, ``?`` placeholders) and encodes the interpreter's
    semantics where engines commonly differ: ORDER BY gets an ``expr IS
    NULL`` prefix key so NULLs sort last in both directions, and ``/`` / ``%``
    become the :data:`DIV_FUNCTION` / :data:`MOD_FUNCTION` UDF calls.
    """
    compiler = _QueryCompiler()
    sql = compiler.compile(query)
    return CompiledQuery(sql, tuple(compiler.parameters))


class _QueryCompiler:
    """Single-use compiler collecting ``?`` parameters while emitting SQL."""

    def __init__(self) -> None:
        self.parameters: list[object] = []

    def compile(self, query: Query) -> str:
        parts = ["SELECT"]
        if query.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(self._select_item(item) for item in query.select_items))
        parts.append("FROM")
        parts.append(self._table_ref(query.from_table))
        for join in query.joins:
            parts.append(self._join(join))
        if query.where is not None:
            parts.append("WHERE")
            parts.append(self.expression(query.where))
        if query.group_by:
            parts.append("GROUP BY")
            parts.append(", ".join(self.expression(expr) for expr in query.group_by))
        if query.having is not None:
            parts.append("HAVING")
            parts.append(self.expression(query.having))
        if query.order_by:
            parts.append("ORDER BY")
            parts.append(", ".join(self._order_item(item) for item in query.order_by))
        if query.limit is not None:
            self.parameters.append(query.limit)
            parts.append("LIMIT ?")
        return " ".join(parts)

    # -- clauses ----------------------------------------------------------- #

    def _select_item(self, item: SelectItem) -> str:
        text = self.expression(item.expression)
        if item.alias:
            return f"{text} AS {quote_identifier(item.alias)}"
        return text

    def _table_ref(self, ref: TableRef) -> str:
        text = quote_identifier(ref.name)
        if ref.alias:
            text += f" AS {quote_identifier(ref.alias)}"
        return text

    def _join(self, join: Join) -> str:
        keyword = {
            JoinType.INNER: "JOIN",
            JoinType.LEFT: "LEFT JOIN",
            JoinType.RIGHT: "RIGHT JOIN",
            JoinType.CROSS: "CROSS JOIN",
        }[join.join_type]
        text = f"{keyword} {self._table_ref(join.right)}"
        if join.condition is not None:
            text += f" ON {self.expression(join.condition)}"
        return text

    def _order_item(self, item: OrderItem) -> str:
        # The interpreter sorts NULLs last regardless of direction; SQLite
        # treats NULL as smaller than everything.  A leading `expr IS NULL`
        # key (0 for values, 1 for NULL) pins NULLs last in both directions
        # without requiring the NULLS LAST syntax (SQLite >= 3.30 only).
        # The expression is compiled twice because it appears twice: each
        # occurrence emits its own placeholders, keeping the `?` count in
        # sync with the collected parameters.
        null_key = self.expression(item.expression)
        rendered = self.expression(item.expression)
        direction = "ASC" if item.ascending else "DESC"
        return f"({null_key} IS NULL) ASC, {rendered} {direction}"

    # -- expressions -------------------------------------------------------- #

    def expression(self, expr: Expression) -> str:
        if isinstance(expr, Literal):
            self.parameters.append(expr.value)
            return "?"
        if isinstance(expr, ColumnRef):
            name = quote_identifier(expr.name)
            if expr.table is not None:
                return f"{quote_identifier(expr.table)}.{name}"
            return name
        if isinstance(expr, Star):
            if expr.table is not None:
                return f"{quote_identifier(expr.table)}.*"
            return "*"
        if isinstance(expr, AggregateCall):
            distinct = "DISTINCT " if expr.distinct else ""
            return f"{expr.function}({distinct}{self.expression(expr.argument)})"
        if isinstance(expr, UnaryMinus):
            return f"-({self.expression(expr.operand)})"
        if isinstance(expr, BinaryOp):
            return self._binary(expr)
        if isinstance(expr, LogicalOp):
            connective = f" {expr.op.value} "
            return connective.join(f"({self.expression(op)})" for op in expr.operands)
        if isinstance(expr, NotOp):
            return f"NOT ({self.expression(expr.operand)})"
        if isinstance(expr, BetweenPredicate):
            neg = "NOT " if expr.negated else ""
            return (
                f"({self.expression(expr.operand)}) {neg}BETWEEN "
                f"({self.expression(expr.low)}) AND ({self.expression(expr.high)})"
            )
        if isinstance(expr, InPredicate):
            neg = "NOT " if expr.negated else ""
            values = ", ".join(self.expression(value) for value in expr.values)
            return f"({self.expression(expr.operand)}) {neg}IN ({values})"
        if isinstance(expr, LikePredicate):
            neg = "NOT " if expr.negated else ""
            return (
                f"({self.expression(expr.operand)}) {neg}LIKE "
                f"({self.expression(expr.pattern)})"
            )
        if isinstance(expr, IsNullPredicate):
            neg = "NOT " if expr.negated else ""
            return f"({self.expression(expr.operand)}) IS {neg}NULL"
        raise TypeError(f"cannot compile expression of type {type(expr).__name__}")

    def _binary(self, expr: BinaryOp) -> str:
        left = self.expression(expr.left)
        right = self.expression(expr.right)
        if expr.op is ArithmeticOp.DIV:
            return f"{DIV_FUNCTION}({left}, {right})"
        if expr.op is ArithmeticOp.MOD:
            return f"{MOD_FUNCTION}({left}, {right})"
        op = expr.op.value if isinstance(expr.op, (ComparisonOp, ArithmeticOp)) else str(expr.op)
        return f"({left}) {op} ({right})"
