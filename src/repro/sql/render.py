"""Render an AST back into SQL text.

Rendering is the inverse of parsing up to whitespace and redundant
parentheses: ``parse_query(render_query(q)) == q`` holds for every query the
parser produces (this round-trip property is tested with Hypothesis in
``tests/sql/test_roundtrip.py``).  The encryption schemes use the renderer to
produce the *encrypted query strings* that are handed to the service
provider.
"""

from __future__ import annotations

from repro.sql.ast import (
    AggregateCall,
    ArithmeticOp,
    BetweenPredicate,
    BinaryOp,
    ColumnRef,
    ComparisonOp,
    Expression,
    InPredicate,
    IsNullPredicate,
    Join,
    JoinType,
    LikePredicate,
    Literal,
    LogicalConnective,
    LogicalOp,
    NotOp,
    OrderItem,
    Query,
    SelectItem,
    Star,
    TableRef,
    UnaryMinus,
)


def render_query(query: Query) -> str:
    """Serialize ``query`` into a canonical SQL string."""
    parts = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_render_select_item(item) for item in query.select_items))
    parts.append("FROM")
    parts.append(_render_table_ref(query.from_table))
    for join in query.joins:
        parts.append(_render_join(join))
    if query.where is not None:
        parts.append("WHERE")
        parts.append(render_expression(query.where))
    if query.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(render_expression(e) for e in query.group_by))
    if query.having is not None:
        parts.append("HAVING")
        parts.append(render_expression(query.having))
    if query.order_by:
        parts.append("ORDER BY")
        parts.append(", ".join(_render_order_item(item) for item in query.order_by))
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    return " ".join(parts)


def render_expression(expr: Expression) -> str:
    """Serialize a single expression into SQL text."""
    if isinstance(expr, Literal):
        return _render_literal(expr)
    if isinstance(expr, ColumnRef):
        return expr.qualified_name
    if isinstance(expr, Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, AggregateCall):
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.function}({distinct}{render_expression(expr.argument)})"
    if isinstance(expr, UnaryMinus):
        return f"-{_render_operand(expr.operand)}"
    if isinstance(expr, BinaryOp):
        op = expr.op.value if isinstance(expr.op, (ComparisonOp, ArithmeticOp)) else str(expr.op)
        return f"{_render_operand(expr.left)} {op} {_render_operand(expr.right)}"
    if isinstance(expr, LogicalOp):
        connective = f" {expr.op.value} "
        return connective.join(_render_operand(op) for op in expr.operands)
    if isinstance(expr, NotOp):
        return f"NOT {_render_operand(expr.operand)}"
    if isinstance(expr, BetweenPredicate):
        neg = "NOT " if expr.negated else ""
        return (
            f"{_render_operand(expr.operand)} {neg}BETWEEN "
            f"{_render_operand(expr.low)} AND {_render_operand(expr.high)}"
        )
    if isinstance(expr, InPredicate):
        neg = "NOT " if expr.negated else ""
        values = ", ".join(render_expression(v) for v in expr.values)
        return f"{_render_operand(expr.operand)} {neg}IN ({values})"
    if isinstance(expr, LikePredicate):
        neg = "NOT " if expr.negated else ""
        return f"{_render_operand(expr.operand)} {neg}LIKE {_render_operand(expr.pattern)}"
    if isinstance(expr, IsNullPredicate):
        neg = "NOT " if expr.negated else ""
        return f"{_render_operand(expr.operand)} IS {neg}NULL"
    raise TypeError(f"cannot render expression of type {type(expr).__name__}")


def _render_operand(expr: Expression) -> str:
    """Render a sub-expression, parenthesising compound operands.

    Parenthesising every compound operand is slightly conservative but keeps
    the renderer simple and the round-trip property exact.
    """
    text = render_expression(expr)
    if isinstance(expr, (LogicalOp, BinaryOp, NotOp, BetweenPredicate, InPredicate,
                         LikePredicate, IsNullPredicate)):
        return f"({text})"
    return text


def _render_literal(literal: Literal) -> str:
    value = literal.value
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def _render_select_item(item: SelectItem) -> str:
    text = render_expression(item.expression)
    if item.alias:
        return f"{text} AS {item.alias}"
    return text


def _render_table_ref(ref: TableRef) -> str:
    if ref.alias:
        return f"{ref.name} AS {ref.alias}"
    return ref.name


def _render_join(join: Join) -> str:
    keyword = {
        JoinType.INNER: "JOIN",
        JoinType.LEFT: "LEFT JOIN",
        JoinType.RIGHT: "RIGHT JOIN",
        JoinType.CROSS: "CROSS JOIN",
    }[join.join_type]
    text = f"{keyword} {_render_table_ref(join.right)}"
    if join.condition is not None:
        text += f" ON {render_expression(join.condition)}"
    return text


def _render_order_item(item: OrderItem) -> str:
    direction = "ASC" if item.ascending else "DESC"
    return f"{render_expression(item.expression)} {direction}"
