"""repro — Distance-Based Data Mining over Encrypted Data (ICDE 2018), reproduced.

The package implements distance-preserving encryption (DPE), the KIT-DPE
design procedure, and the paper's full SQL-query-log case study, together
with every substrate it needs: a SQL parser and in-memory relational engine,
property-preserving encryption classes (PROB/DET/OPE/HOM/JOIN), a
CryptDB-style encrypted-execution layer, distance-based mining algorithms,
synthetic workloads, attack simulations and an experiment harness.

Quickstart::

    from repro import quick_demo
    print(quick_demo())

or see ``examples/quickstart.py`` for a commented walk-through.  Embedding
applications should program against :mod:`repro.api`, the versioned public
surface: typed configs, the ``EncryptedMiningService`` façade, typed result
objects and the unified error hierarchy.
"""

from repro.core import (
    AccessAreaDistance,
    AccessAreaDpeScheme,
    Domain,
    DomainCatalog,
    KitDpeEngine,
    LogContext,
    ResultDistance,
    ResultDpeScheme,
    SecurityModel,
    StructureDistance,
    StructureDpeScheme,
    TokenDistance,
    TokenDpeScheme,
    standard_measures,
    verify_c_equivalence,
    verify_distance_preservation,
)
from repro.crypto import KeyChain, MasterKey, default_taxonomy
from repro.sql import QueryLog, parse_query, render_query

__version__ = "1.0.0"

__all__ = [
    "AccessAreaDistance",
    "AccessAreaDpeScheme",
    "Domain",
    "DomainCatalog",
    "KeyChain",
    "KitDpeEngine",
    "LogContext",
    "MasterKey",
    "QueryLog",
    "ResultDistance",
    "ResultDpeScheme",
    "SecurityModel",
    "StructureDistance",
    "StructureDpeScheme",
    "ThreatModel",
    "TokenDistance",
    "TokenDpeScheme",
    "default_taxonomy",
    "parse_query",
    "quick_demo",
    "render_query",
    "standard_measures",
    "verify_c_equivalence",
    "verify_distance_preservation",
]

from repro.core import ThreatModel  # noqa: E402  (re-export for convenience)


def quick_demo() -> str:
    """Encrypt a tiny query log and verify distance preservation end to end.

    Returns a short text report; mainly useful as an installation check.
    """
    log = QueryLog.from_sql(
        [
            "SELECT name FROM users WHERE age > 30",
            "SELECT name, city FROM users WHERE age > 30 AND city = 'Berlin'",
            "SELECT city FROM users WHERE age BETWEEN 20 AND 40",
        ]
    )
    keychain = KeyChain(MasterKey.generate())
    scheme = TokenDpeScheme(keychain)
    plain_context = LogContext(log=log)
    encrypted_context = scheme.encrypt_context(plain_context)
    report = verify_distance_preservation(TokenDistance(), plain_context, encrypted_context)
    return (
        f"encrypted {len(log)} queries; first encrypted query:\n"
        f"  {encrypted_context.log[0].sql[:80]}...\n"
        f"{report.summary()}"
    )
