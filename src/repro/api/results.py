"""Typed result objects returned by the public API.

The internal layers return tuples, lists and nested dicts; the façade wraps
them in three frozen result types so callers get named, documented fields
instead of positional conventions:

* :class:`WorkloadResult` — everything one served workload produced:
  the per-query :class:`~repro.cryptdb.proxy.EncryptedResult` objects,
  skipped queries, onion adjustments and timing;
* :class:`MiningResult` — the provider-side mining artefacts of one log
  under one measure (condensed matrix, DBSCAN clusters, DB(p, D)-outliers,
  kNN lists);
* :class:`ExposureReport` / :class:`ColumnExposure` — the per-column
  security exposure after serving a workload, replacing the nested
  ``(table, column) -> {...}`` dict of
  :meth:`~repro.cryptdb.proxy.CryptDBProxy.exposure_report`.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.api.errors import ServiceError
from repro.crypto.base import EncryptionClass
from repro.cryptdb.onion import Onion
from repro.cryptdb.proxy import EncryptedResult
from repro.mining.approx import CandidateStats
from repro.mining.dbscan import DbscanResult
from repro.mining.matrix import CondensedDistanceMatrix
from repro.mining.outliers import OutlierResult
from repro.sql.ast import Query
from repro.sql.log import LogEntry, QueryLog


@dataclass(frozen=True)
class WorkloadResult:
    """The outcome of serving one workload through a service session.

    ``results`` holds one :class:`~repro.cryptdb.proxy.EncryptedResult` per
    served query, in workload order; ``skipped`` the (query, reason) pairs
    the rewriter rejected under the ``"skip"`` policy; ``adjustments`` the
    onion adjustments rewriting triggered; ``backend`` the execution
    backend's registry name; ``elapsed_seconds`` the wall-clock time of the
    rewrite-and-execute pass.
    """

    results: tuple[EncryptedResult, ...]
    skipped: tuple[tuple[Query, str], ...]
    adjustments: tuple[tuple[str, str, Onion, object], ...]
    backend: str
    elapsed_seconds: float

    @property
    def queries_served(self) -> int:
        """Number of queries rewritten and executed."""
        return len(self.results)

    @property
    def queries_skipped(self) -> int:
        """Number of queries rejected as outside the executable fragment."""
        return len(self.skipped)

    @property
    def throughput(self) -> float:
        """Served queries per second (``inf`` for a zero-duration pass)."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.queries_served / self.elapsed_seconds

    def encrypted_log(self) -> QueryLog:
        """The rewritten (encrypted) queries as a query log, in served order."""
        return QueryLog(LogEntry(result.encrypted_query) for result in self.results)


@dataclass(frozen=True)
class MiningResult:
    """The provider-side mining artefacts of one log under one measure.

    ``matrix`` is the condensed pairwise distance matrix; ``clusters`` the
    DBSCAN result, ``outliers`` the DB(p, D)-outlier result and ``knn`` the
    per-item nearest-neighbour lists, all computed with the parameters of
    the service's :class:`~repro.api.MiningConfig`.  ``knn`` lists are
    capped at ``n - 1`` neighbours for tiny logs.

    When mined through the sublinear path (``MiningConfig.approx``) no
    all-pairs matrix exists: ``matrix`` is ``None`` and
    ``candidate_stats`` carries the pivot index's
    :class:`~repro.mining.approx.CandidateStats` — its
    ``certified_complete`` flag asserts the results are bit-for-bit equal
    to the exact pipeline's.
    """

    measure: str
    matrix: CondensedDistanceMatrix | None
    clusters: DbscanResult
    outliers: OutlierResult
    knn: tuple[tuple[int, ...], ...]
    candidate_stats: CandidateStats | None = None

    @property
    def n_items(self) -> int:
        """Number of log entries mined."""
        if self.matrix is not None:
            return self.matrix.n
        return len(self.clusters.labels)

    @property
    def labels(self) -> tuple[int, ...]:
        """The DBSCAN cluster label of every item (noise is ``-1``)."""
        return self.clusters.labels

    @property
    def n_clusters(self) -> int:
        """Number of DBSCAN clusters found."""
        return self.clusters.n_clusters

    @property
    def outlier_indices(self) -> tuple[int, ...]:
        """Indices flagged as DB(p, D)-outliers."""
        return self.outliers.outliers


@dataclass(frozen=True)
class ColumnExposure:
    """What the provider can see for one column after serving a workload.

    ``onions`` maps onion name to the encryption-layer name it currently
    sits at (stored sorted as a tuple of pairs so the object stays
    hashable); ``weakest_class`` is the most-revealing encryption class any
    representation of the column exposes, ``security_level`` its Figure 1
    level.  ``cells_verified`` and ``tamper_detected`` are the integrity
    layer's per-column counters (both zero when
    :attr:`~repro.api.CryptoConfig.authenticate` is off).
    """

    table: str
    column: str
    onions: tuple[tuple[str, str], ...]
    weakest_class: EncryptionClass
    security_level: int
    cells_verified: int = 0
    tamper_detected: int = 0

    @property
    def onion_layers(self) -> dict[str, str]:
        """The ``onions`` pairs as a plain dict (onion name -> layer name)."""
        return dict(self.onions)

    def to_dict(self) -> dict[str, object]:
        """This entry as plain JSON-serialisable data (see ``from_dict``)."""
        return {
            "table": self.table,
            "column": self.column,
            "onions": dict(self.onions),
            "weakest_class": self.weakest_class.value,
            "security_level": self.security_level,
            "cells_verified": self.cells_verified,
            "tamper_detected": self.tamper_detected,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ColumnExposure":
        """Rebuild an entry from :meth:`to_dict` output.

        Integrity counters default to zero so dicts saved before the
        integrity layer existed still round-trip.
        """
        onions = data["onions"]
        if not isinstance(onions, Mapping):
            raise ServiceError(
                f"ColumnExposure.from_dict: 'onions' must be a mapping, got {onions!r}"
            )
        return cls(
            table=str(data["table"]),
            column=str(data["column"]),
            onions=tuple(sorted((str(k), str(v)) for k, v in onions.items())),
            weakest_class=EncryptionClass(data["weakest_class"]),
            security_level=int(data["security_level"]),  # type: ignore[call-overload]
            cells_verified=int(data.get("cells_verified", 0)),  # type: ignore[call-overload]
            tamper_detected=int(data.get("tamper_detected", 0)),  # type: ignore[call-overload]
        )


@dataclass(frozen=True)
class ExposureReport:
    """Per-column exposure of the encrypted database, one entry per column.

    The typed replacement for the nested dict of
    :meth:`~repro.cryptdb.proxy.CryptDBProxy.exposure_report`; entries are
    sorted by (table, column).
    """

    columns: tuple[ColumnExposure, ...]

    @classmethod
    def from_proxy_report(
        cls, report: Mapping[tuple[str, str], Mapping[str, object]]
    ) -> "ExposureReport":
        """Build the typed report from the proxy's legacy dict shape.

        The integrity counters are read with defaults so pre-integrity
        report dicts (no ``cells_verified``/``tamper_detected`` keys) still
        convert.
        """
        entries = []
        for (table, column), info in sorted(report.items()):
            onions = info["onions"]
            entries.append(
                ColumnExposure(
                    table=table,
                    column=column,
                    onions=tuple(sorted(onions.items())),  # type: ignore[union-attr]
                    weakest_class=info["weakest_class"],  # type: ignore[arg-type]
                    security_level=int(info["security_level"]),  # type: ignore[call-overload]
                    cells_verified=int(info.get("cells_verified", 0)),  # type: ignore[call-overload]
                    tamper_detected=int(info.get("tamper_detected", 0)),  # type: ignore[call-overload]
                )
            )
        return cls(columns=tuple(entries))

    def to_dict(self) -> dict[str, object]:
        """The report as plain JSON-serialisable data (see ``from_dict``)."""
        return {"columns": [entry.to_dict() for entry in self.columns]}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExposureReport":
        """Rebuild a report from :meth:`to_dict` output (exact round-trip).

        ``from_dict(to_dict(report)) == report`` holds for every report,
        including the integrity counters.
        """
        if not isinstance(data, Mapping) or "columns" not in data:
            raise ServiceError(
                "ExposureReport.from_dict expects a mapping with a 'columns' key"
            )
        columns = data["columns"]
        if not isinstance(columns, (list, tuple)):
            raise ServiceError(
                f"ExposureReport.from_dict: 'columns' must be a list, got {columns!r}"
            )
        return cls(
            columns=tuple(ColumnExposure.from_dict(entry) for entry in columns)
        )

    def for_column(self, table: str, column: str) -> ColumnExposure:
        """The exposure entry of one column; unknown columns fail loudly."""
        for entry in self.columns:
            if entry.table == table and entry.column == column:
                return entry
        known = [f"{e.table}.{e.column}" for e in self.columns]
        raise ServiceError(
            f"no exposure entry for column {table}.{column}; known columns: {known}"
        )

    def weakest_level(self) -> int:
        """The lowest (most exposed) security level over all columns."""
        if not self.columns:
            raise ServiceError("exposure report is empty")
        return min(entry.security_level for entry in self.columns)


__all__ = [
    "ColumnExposure",
    "ExposureReport",
    "MiningResult",
    "WorkloadResult",
]
