"""The unified error hierarchy of the public API.

Every pipeline failure that escapes ``repro.api`` is an :class:`ApiError`,
so callers embedding the façade handle one family instead of learning which
subsystem raises what.  (Plain Python errors from passing wrong object
types — a non-database to ``encrypt``, say — remain ordinary exceptions.)
The internal hierarchies (:class:`~repro.exceptions.CryptDbError`,
:class:`~repro.exceptions.RewriteError`,
:class:`~repro.exceptions.ExecutionError`, ...) are *wrapped*, not replaced:
:func:`wrap_errors` translates them at the façade boundary and chains the
original exception as ``__cause__``, so nothing about the failure is lost —
``raise ApiError from CryptDbError`` keeps the full story in the traceback.

The mapping is by failure kind, not by subsystem:

* :class:`ConfigError` — a configuration value is invalid (raised directly by
  the config dataclasses, and for unknown backends at session-open time);
* :class:`QueryRejected` — a query could not be served: the rewriter refused
  it or it failed to parse (wraps :class:`~repro.exceptions.RewriteError`
  and :class:`~repro.exceptions.SqlError`);
* :class:`SessionError` — a session or its execution backend failed
  (wraps :class:`~repro.exceptions.ExecutionError` and session-level
  :class:`~repro.exceptions.CryptDbError`);
* :class:`TamperDetected` — the integrity layer caught a tampering provider
  (wraps :class:`~repro.exceptions.IntegrityError`): a stored ciphertext
  failed authentication, rows were swapped or replayed, or a streamed log
  was rolled back past a signed checkpoint;
* :class:`ServiceError` — the façade itself was misused (e.g. running a
  workload before :meth:`~repro.api.EncryptedMiningService.encrypt`);
* :class:`ServerError` — the multi-tenant :class:`~repro.api.MiningServer`
  was misused (unknown tenant, duplicate tenant, submit after close);
* :class:`ServerOverloaded` — the server's bounded admission queue was full
  and the caller asked not to wait (backpressure made visible);
* :class:`DeadlineExceeded` — a deadline attached to a session call or
  server submission expired before the work completed (cooperative
  cancellation between queries, not preemption);
* :class:`CircuitOpen` — a tenant's circuit breaker is open after repeated
  failures, so new work for that tenant is rejected without touching the
  shared worker pool.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager

from repro.exceptions import (
    CryptDbError,
    ExecutionError,
    IntegrityError,
    ReproError,
    RewriteError,
    SqlError,
)


class ApiError(ReproError):
    """Base class for every error raised by the ``repro.api`` façade."""


class ConfigError(ApiError, ValueError):
    """An invalid configuration value (bad option, unknown name, bad range)."""


class ServiceError(ApiError):
    """The :class:`~repro.api.EncryptedMiningService` façade was misused."""


class SessionError(ServiceError):
    """A service session (or its execution backend) failed."""


class QueryRejected(SessionError):
    """A query was rejected: unparseable SQL or outside the executable fragment."""


class TamperDetected(SessionError):
    """The integrity layer caught the provider tampering with data or logs.

    Raised (wrapping :class:`~repro.exceptions.IntegrityError`) when a
    stored ciphertext fails its detached MAC, rows were swapped, a stale
    snapshot was replayed, or a streamed query log is not an exact
    prefix-extension of its signed hash-chain checkpoint.  Requires
    :attr:`~repro.api.CryptoConfig.authenticate`; without it, tampering with
    the malleable OPE/HOM onions can silently corrupt results.
    """


class ServerError(ApiError):
    """The multi-tenant :class:`~repro.api.MiningServer` was misused.

    Raised for unknown or duplicate tenant names, submitting to a closed
    server, and other server-lifecycle violations.
    """


class ServerOverloaded(ServerError):
    """The server's bounded admission queue rejected a non-blocking submit.

    The backpressure signal of admission control: the queue is at capacity
    and the caller passed ``wait=False`` (or its wait timed out).  Callers
    retry, shed load, or switch to blocking submits.

    Attributes
    ----------
    queue_depth:
        The number of tasks waiting in the admission queue at rejection
        time, or ``None`` when the queue could not report it.
    tenant:
        The tenant whose submission was rejected, or ``None`` when the
        rejection happened below the tenant layer.
    """

    def __init__(
        self,
        message: str,
        *,
        queue_depth: int | None = None,
        tenant: str | None = None,
    ) -> None:
        super().__init__(message)
        self.queue_depth = queue_depth
        self.tenant = tenant


class DeadlineExceeded(SessionError):
    """A deadline expired before the attached work completed.

    Deadlines are cooperative: :class:`~repro.api.Deadline` is checked
    between queries in :meth:`ProxySession.run`/``stream`` and before a
    queued server task starts, so an in-flight query is never preempted —
    the call stops at the next checkpoint and reports how far over budget
    it ran.

    Attributes
    ----------
    elapsed:
        Seconds elapsed since the deadline's clock started, or ``None``.
    budget:
        The deadline's total budget in seconds, or ``None``.
    """

    def __init__(
        self,
        message: str,
        *,
        elapsed: float | None = None,
        budget: float | None = None,
    ) -> None:
        super().__init__(message)
        self.elapsed = elapsed
        self.budget = budget


class CircuitOpen(ServerError):
    """A tenant's circuit breaker is open: new work is rejected at admission.

    After a tenant's recent failure rate crosses the configured threshold
    the breaker opens and submissions fail fast with this error instead of
    occupying shared workers.  After the cooldown the breaker admits a
    half-open probe; a successful probe closes it again.

    Attributes
    ----------
    tenant:
        The tenant whose breaker rejected the submission, or ``None`` for
        a breaker used outside the server.
    retry_after:
        Seconds until the breaker will admit a half-open probe, or ``None``
        when unknown.
    """

    def __init__(
        self,
        message: str,
        *,
        tenant: str | None = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.retry_after = retry_after


@contextmanager
def wrap_errors(context: str) -> Iterator[None]:
    """Translate internal exceptions into :class:`ApiError` subclasses.

    ``context`` prefixes the message so the caller sees *which* façade
    operation failed.  Existing :class:`ApiError` instances pass through
    untouched; everything else keeps the original exception chained as
    ``__cause__``.
    """
    try:
        yield
    except ApiError:
        raise
    except IntegrityError as error:
        raise TamperDetected(f"{context}: {error}") from error
    except RewriteError as error:
        raise QueryRejected(f"{context}: {error}") from error
    except SqlError as error:
        raise QueryRejected(f"{context}: {error}") from error
    except ExecutionError as error:
        raise SessionError(f"{context}: {error}") from error
    except CryptDbError as error:
        raise ServiceError(f"{context}: {error}") from error
    except ReproError as error:
        # Catch-all for the remaining internal families (MiningError,
        # DpeError, ...): the façade contract is that *every* escaping
        # failure is an ApiError.
        raise ServiceError(f"{context}: {error}") from error


__all__ = [
    "ApiError",
    "CircuitOpen",
    "ConfigError",
    "DeadlineExceeded",
    "QueryRejected",
    "ServerError",
    "ServerOverloaded",
    "ServiceError",
    "SessionError",
    "TamperDetected",
    "wrap_errors",
]
