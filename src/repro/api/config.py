"""Typed, frozen configuration objects for the public API.

Each layer of the pipeline gets one frozen dataclass —
:class:`CryptoConfig` (keys and Paillier parameters),
:class:`BackendConfig` (execution engine), :class:`MiningConfig` (measure and
mining parameters) and :class:`WorkloadConfig` (synthetic workload shape) —
composed into one :class:`ServiceConfig` consumed by
:class:`~repro.api.EncryptedMiningService`.  The multi-tenant serving layer
adds :class:`ServerConfig` (worker count, admission-queue bound, default
submit timeout) consumed by :class:`~repro.api.MiningServer`; both embed a
:class:`ReliabilityConfig` carrying the fault-tolerance policies (retries,
backoff, deadlines, breaker thresholds, journal path).  They replace
the ad-hoc kwargs (``workers``, ``pool_size``, ``backend``, ...) that every
caller used to re-learn per layer.

Three properties are guaranteed:

* **loud validation** — every field is checked in ``__post_init__`` and an
  invalid value raises :class:`~repro.api.errors.ConfigError` naming the
  field, so a bad config can never travel into the pipeline;
* **JSON round-trips** — ``to_dict()`` returns plain JSON-serialisable data
  and ``from_dict(to_dict(cfg)) == cfg`` holds for every config (tested
  property-based);
* **strict deserialisation** — ``from_dict`` rejects unknown keys by name
  instead of silently dropping them.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import TypeVar

from repro.api.errors import ConfigError
from repro.crypto.hom import PaillierScheme
from repro.db.backend import DEFAULT_BACKEND, available_backends

_C = TypeVar("_C", bound="_Config")

#: Distance-measure names accepted by :class:`MiningConfig`.
MEASURE_NAMES = ("access-area", "result", "structure", "token")
#: Workload-profile names accepted by :class:`WorkloadConfig`.
PROFILE_NAMES = ("skyserver", "webshop")
#: Workload-mix names accepted by :class:`WorkloadConfig`.
MIX_NAMES = ("analytical", "mixed", "spj")
#: ``on_unsupported`` policies accepted by :class:`BackendConfig`.
UNSUPPORTED_POLICIES = ("raise", "skip")


def _require_int(config: str, name: str, value: object, *, minimum: int) -> None:
    """Reject non-integers (including bools) and values below ``minimum``."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(f"{config}.{name} must be an integer, got {value!r}")
    if value < minimum:
        raise ConfigError(f"{config}.{name} must be >= {minimum}, got {value}")


def _require_optional_int(config: str, name: str, value: object, *, minimum: int) -> None:
    if value is not None:
        _require_int(config, name, value, minimum=minimum)


def _require_float(
    config: str, name: str, value: object, *, minimum: float, maximum: float | None = None,
    exclusive_minimum: bool = False,
) -> None:
    """Reject non-numbers (including bools) and values outside the range."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(f"{config}.{name} must be a number, got {value!r}")
    below = value <= minimum if exclusive_minimum else value < minimum
    if below or (maximum is not None and value > maximum):
        bound = f"> {minimum}" if exclusive_minimum else f">= {minimum}"
        if maximum is not None:
            bound += f" and <= {maximum}"
        raise ConfigError(f"{config}.{name} must be {bound}, got {value!r}")


def _require_choice(config: str, name: str, value: object, choices: tuple[str, ...]) -> None:
    if value not in choices:
        raise ConfigError(
            f"{config}.{name} must be one of {list(choices)}, got {value!r}"
        )


class _Config:
    """Shared ``to_dict``/``from_dict`` machinery of the config dataclasses."""

    def to_dict(self) -> dict[str, object]:
        """This config as plain JSON-serialisable data (nested configs recurse)."""
        return dataclasses.asdict(self)  # type: ignore[call-overload]

    @classmethod
    def from_dict(cls: type[_C], data: Mapping[str, object]) -> _C:
        """Build a config from ``data``, rejecting unknown keys by name.

        The inverse of :meth:`to_dict`: ``from_dict(to_dict(cfg)) == cfg``.
        Value validation happens in ``__post_init__`` as for direct
        construction, so a bad dict fails exactly as loudly as bad kwargs.
        """
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"{cls.__name__}.from_dict expects a mapping, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}  # type: ignore[arg-type]
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"{cls.__name__} got unknown option(s) {unknown}; known: {sorted(known)}"
            )
        return cls(**data)  # type: ignore[arg-type]


@dataclass(frozen=True)
class CryptoConfig(_Config):
    """Key derivation and Paillier parameters of the encryption layer.

    ``passphrase`` seeds the deterministic master key (``None`` generates a
    random one — reproducible runs should always set it); ``paillier_bits``
    sizes the HOM modulus; ``paillier_pool_size`` sizes the precomputed
    blinding-factor pool; ``shared_det_key`` switches every EQ onion to one
    shared DET key (required by the result-distance scheme, see DESIGN.md).

    ``authenticate`` turns on the integrity layer (detached per-column MACs
    over the stored ciphertexts, hash-chain checkpoints over streamed logs):
    tampered storage or a rolled-back log then raises
    :class:`~repro.api.errors.TamperDetected` instead of returning wrong
    data.  Stored ciphertexts are unchanged, so honest-provider results stay
    bit-for-bit identical.  ``auto_verify`` (default on) makes each session
    audit its backend's storage lazily once before the first query;
    turn it off to audit only on explicit
    :meth:`~repro.api.ServiceSession.verify_storage` calls.
    """

    passphrase: str | None = None
    paillier_bits: int = 512
    paillier_pool_size: int = PaillierScheme.DEFAULT_POOL_SIZE
    shared_det_key: bool = False
    authenticate: bool = False
    auto_verify: bool = True

    def __post_init__(self) -> None:
        if self.passphrase is not None and not isinstance(self.passphrase, str):
            raise ConfigError(
                f"CryptoConfig.passphrase must be a string or None, got {self.passphrase!r}"
            )
        _require_int("CryptoConfig", "paillier_bits", self.paillier_bits, minimum=64)
        _require_int(
            "CryptoConfig", "paillier_pool_size", self.paillier_pool_size, minimum=0
        )
        for flag in ("shared_det_key", "authenticate", "auto_verify"):
            if not isinstance(getattr(self, flag), bool):
                raise ConfigError(
                    f"CryptoConfig.{flag} must be a bool, got {getattr(self, flag)!r}"
                )


@dataclass(frozen=True)
class BackendConfig(_Config):
    """Execution-backend choice and unsupported-query policy for sessions.

    ``name`` must be a registered backend (see
    :func:`~repro.db.backend.available_backends`); ``on_unsupported``
    chooses between propagating rewriter rejections (``"raise"``) and
    recording them as skipped (``"skip"`` — CryptDB's client-side fallback).
    """

    name: str = DEFAULT_BACKEND
    on_unsupported: str = "raise"

    def __post_init__(self) -> None:
        backends = available_backends()
        if self.name not in backends:
            raise ConfigError(
                f"BackendConfig.name: unknown execution backend {self.name!r}; "
                f"available backends: {sorted(backends)}"
            )
        _require_choice(
            "BackendConfig", "on_unsupported", self.on_unsupported, UNSUPPORTED_POLICIES
        )


@dataclass(frozen=True)
class MiningConfig(_Config):
    """Distance measure and mining parameters of the provider side.

    ``measure`` names one of the paper's four distances; ``workers`` /
    ``chunk_size`` shard the condensed-matrix computation over processes;
    ``knn_k`` through ``dbscan_min_points`` are the mining-algorithm
    parameters served by :meth:`~repro.api.EncryptedMiningService.mine` and
    the incremental miner (same meaning as in
    :class:`~repro.mining.incremental.IncrementalDistanceMatrix`).

    The sublinear knobs select the pivot-indexed path
    (:mod:`repro.mining.approx`): ``approx`` switches
    :meth:`~repro.api.EncryptedMiningService.mine` to it (results then carry
    :attr:`~repro.api.MiningResult.candidate_stats` and no matrix);
    ``pivots`` is the landmark count, ``seed`` drives pivot selection and
    window eviction deterministically, ``window`` / ``window_decay`` shape
    the sliding-window miner
    (:meth:`~repro.api.EncryptedMiningService.approx_miner`), ``shards``
    the sharded ingest matrix
    (:meth:`~repro.api.EncryptedMiningService.sharded_miner`), and
    ``max_candidates`` optionally caps exact evaluations per query —
    ``None`` keeps results bit-for-bit exact (certified by the stats).
    """

    measure: str = "token"
    workers: int = 1
    chunk_size: int | None = None
    knn_k: int = 3
    outlier_p: float = 0.95
    outlier_d: float = 0.9
    dbscan_eps: float = 0.5
    dbscan_min_points: int = 3
    approx: bool = False
    pivots: int = 8
    window: int | None = None
    window_decay: float = 0.0
    shards: int = 4
    max_candidates: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        _require_choice("MiningConfig", "measure", self.measure, MEASURE_NAMES)
        _require_int("MiningConfig", "workers", self.workers, minimum=1)
        _require_optional_int("MiningConfig", "chunk_size", self.chunk_size, minimum=1)
        _require_int("MiningConfig", "knn_k", self.knn_k, minimum=1)
        _require_float(
            "MiningConfig", "outlier_p", self.outlier_p,
            minimum=0.0, maximum=1.0, exclusive_minimum=True,
        )
        _require_float("MiningConfig", "outlier_d", self.outlier_d, minimum=0.0)
        _require_float("MiningConfig", "dbscan_eps", self.dbscan_eps, minimum=0.0)
        _require_int("MiningConfig", "dbscan_min_points", self.dbscan_min_points, minimum=1)
        if not isinstance(self.approx, bool):
            raise ConfigError(
                f"MiningConfig.approx must be a bool, got {self.approx!r}"
            )
        _require_int("MiningConfig", "pivots", self.pivots, minimum=1)
        _require_optional_int("MiningConfig", "window", self.window, minimum=1)
        _require_float(
            "MiningConfig", "window_decay", self.window_decay, minimum=0.0
        )
        if not self.window_decay < 1.0:
            raise ConfigError(
                f"MiningConfig.window_decay must be < 1, got {self.window_decay!r}"
            )
        _require_int("MiningConfig", "shards", self.shards, minimum=1)
        _require_optional_int(
            "MiningConfig", "max_candidates", self.max_candidates, minimum=1
        )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ConfigError(f"MiningConfig.seed must be an integer, got {self.seed!r}")


@dataclass(frozen=True)
class WorkloadConfig(_Config):
    """Shape of the synthetic workload the service can generate.

    ``profile`` picks the schema family (web shop or SkyServer-like
    astronomy), ``mix`` the query-shape mix (full mix, select-project-join
    only, or aggregate-heavy analytical), ``size`` the log length and
    ``seed`` the deterministic generator seed.
    """

    profile: str = "webshop"
    mix: str = "mixed"
    size: int = 40
    seed: int = 3

    def __post_init__(self) -> None:
        _require_choice("WorkloadConfig", "profile", self.profile, PROFILE_NAMES)
        _require_choice("WorkloadConfig", "mix", self.mix, MIX_NAMES)
        _require_int("WorkloadConfig", "size", self.size, minimum=1)
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ConfigError(f"WorkloadConfig.seed must be an integer, got {self.seed!r}")


@dataclass(frozen=True)
class ReliabilityConfig(_Config):
    """Fault-tolerance policies of sessions and the serving layer.

    ``max_retries`` bounds the transient-fault retries per backend call
    (``0`` disables the retry wrapper entirely); ``backoff_base`` /
    ``backoff_max`` shape the decorrelated-jitter backoff between attempts
    (see :class:`~repro.api.RetryPolicy`).  ``deadline_ms`` attaches a
    default cooperative :class:`~repro.api.Deadline` to every session run
    and server submission (``None`` = no deadline).

    The breaker knobs configure the per-tenant
    :class:`~repro.api.CircuitBreaker` the server maintains when
    ``breaker_enabled`` is on: with at least ``breaker_min_calls`` recent
    outcomes in a window of ``breaker_window``, a failure rate at or above
    ``breaker_failure_rate`` opens the breaker for
    ``breaker_cooldown_seconds`` before a half-open probe is admitted.

    ``journal_path`` enables crash-safe streaming: the service's
    journaled miner records every streamed batch there
    (:class:`~repro.api.StreamJournal`), snapshotting every
    ``snapshot_every`` batches (``0`` = journal only, no snapshots).
    """

    max_retries: int = 0
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    deadline_ms: int | None = None
    breaker_enabled: bool = False
    breaker_failure_rate: float = 0.5
    breaker_min_calls: int = 5
    breaker_window: int = 16
    breaker_cooldown_seconds: float = 30.0
    journal_path: str | None = None
    snapshot_every: int = 0

    def __post_init__(self) -> None:
        _require_int("ReliabilityConfig", "max_retries", self.max_retries, minimum=0)
        _require_float(
            "ReliabilityConfig", "backoff_base", self.backoff_base, minimum=0.0
        )
        _require_float(
            "ReliabilityConfig", "backoff_max", self.backoff_max,
            minimum=0.0,
        )
        if self.backoff_max < self.backoff_base:
            raise ConfigError(
                f"ReliabilityConfig.backoff_max ({self.backoff_max!r}) must be "
                f">= backoff_base ({self.backoff_base!r})"
            )
        _require_optional_int(
            "ReliabilityConfig", "deadline_ms", self.deadline_ms, minimum=1
        )
        if not isinstance(self.breaker_enabled, bool):
            raise ConfigError(
                f"ReliabilityConfig.breaker_enabled must be a bool, "
                f"got {self.breaker_enabled!r}"
            )
        _require_float(
            "ReliabilityConfig", "breaker_failure_rate", self.breaker_failure_rate,
            minimum=0.0, maximum=1.0, exclusive_minimum=True,
        )
        _require_int(
            "ReliabilityConfig", "breaker_min_calls", self.breaker_min_calls, minimum=1
        )
        _require_int(
            "ReliabilityConfig", "breaker_window", self.breaker_window, minimum=1
        )
        if self.breaker_window < self.breaker_min_calls:
            raise ConfigError(
                f"ReliabilityConfig.breaker_window ({self.breaker_window!r}) must "
                f"be >= breaker_min_calls ({self.breaker_min_calls!r})"
            )
        _require_float(
            "ReliabilityConfig", "breaker_cooldown_seconds",
            self.breaker_cooldown_seconds, minimum=0.0,
        )
        if self.journal_path is not None and not isinstance(self.journal_path, str):
            raise ConfigError(
                f"ReliabilityConfig.journal_path must be a string or None, "
                f"got {self.journal_path!r}"
            )
        _require_int(
            "ReliabilityConfig", "snapshot_every", self.snapshot_every, minimum=0
        )


@dataclass(frozen=True)
class ServerConfig(_Config):
    """Concurrency shape of a multi-tenant :class:`~repro.api.MiningServer`.

    ``workers`` sizes the thread pool draining the admission queue;
    ``max_pending`` bounds the queue (admission control — a full queue
    pushes back instead of buffering without limit); ``submit_timeout`` is
    the default number of seconds a blocking submit waits for a queue slot
    before raising :class:`~repro.api.errors.ServerOverloaded` (``None``
    waits indefinitely).  ``reliability`` carries the server-wide
    fault-tolerance policies (per-tenant breaker thresholds, the default
    submission deadline) and accepts either a built
    :class:`ReliabilityConfig` or its dict form.
    """

    workers: int = 4
    max_pending: int = 64
    submit_timeout: float | None = None
    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)

    def __post_init__(self) -> None:
        _require_int("ServerConfig", "workers", self.workers, minimum=1)
        _require_int("ServerConfig", "max_pending", self.max_pending, minimum=1)
        if self.submit_timeout is not None:
            _require_float(
                "ServerConfig", "submit_timeout", self.submit_timeout,
                minimum=0.0, exclusive_minimum=True,
            )
        # ServerConfig is flat apart from this one nested config, so the
        # generic from_dict hands the nested dict through unchanged; coerce
        # it here (the dataclass is frozen, hence object.__setattr__).
        if isinstance(self.reliability, Mapping):
            object.__setattr__(
                self, "reliability", ReliabilityConfig.from_dict(self.reliability)
            )
        elif not isinstance(self.reliability, ReliabilityConfig):
            raise ConfigError(
                f"ServerConfig.reliability must be a ReliabilityConfig, "
                f"got {self.reliability!r}"
            )


@dataclass(frozen=True)
class ServiceConfig(_Config):
    """The full configuration of an :class:`~repro.api.EncryptedMiningService`.

    One nested config per layer; every field defaults to that layer's
    defaults, so ``ServiceConfig()`` is a working configuration.
    ``from_dict`` accepts the nested dicts ``to_dict`` produces (and, for
    convenience, already-built sub-configs).
    """

    crypto: CryptoConfig = field(default_factory=CryptoConfig)
    backend: BackendConfig = field(default_factory=BackendConfig)
    mining: MiningConfig = field(default_factory=MiningConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)

    _NESTED = {
        "crypto": CryptoConfig,
        "backend": BackendConfig,
        "mining": MiningConfig,
        "workload": WorkloadConfig,
        "reliability": ReliabilityConfig,
    }

    def __post_init__(self) -> None:
        for name, expected in self._NESTED.items():
            value = getattr(self, name)
            if not isinstance(value, expected):
                raise ConfigError(
                    f"ServiceConfig.{name} must be a {expected.__name__}, got {value!r}"
                )

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ServiceConfig":
        """Build a service config from nested plain dicts (strict, validated)."""
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"ServiceConfig.from_dict expects a mapping, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - set(cls._NESTED))
        if unknown:
            raise ConfigError(
                f"ServiceConfig got unknown option(s) {unknown}; known: {sorted(cls._NESTED)}"
            )
        kwargs: dict[str, object] = {}
        for name, sub_cls in cls._NESTED.items():
            if name not in data:
                continue
            value = data[name]
            kwargs[name] = value if isinstance(value, sub_cls) else sub_cls.from_dict(value)  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]


__all__ = [
    "BackendConfig",
    "CryptoConfig",
    "MEASURE_NAMES",
    "MIX_NAMES",
    "MiningConfig",
    "PROFILE_NAMES",
    "ReliabilityConfig",
    "ServerConfig",
    "ServiceConfig",
    "UNSUPPORTED_POLICIES",
    "WorkloadConfig",
]
