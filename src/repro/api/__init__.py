"""The versioned public surface of the ``repro`` package.

``repro.api`` is the one import an embedding application needs: it exposes
the typed configuration objects (:class:`CryptoConfig`,
:class:`BackendConfig`, :class:`MiningConfig`, :class:`WorkloadConfig`,
:class:`ServiceConfig`), the :class:`EncryptedMiningService` façade that
composes the proxy, execution, distance and mining layers behind typed
result objects (:class:`WorkloadResult`, :class:`MiningResult`,
:class:`ExposureReport`), the unified :class:`ApiError` hierarchy, and the
stable re-exports of the paper's building blocks (measures, DPE schemes,
mining algorithms, workload generators) — including the sublinear mining
layer (:class:`PivotIndex`, :class:`SlidingWindowQueryLog`,
:class:`ApproxStreamMiner`, :class:`ShardedIncrementalMatrix`,
:class:`CandidateStats`) selected via :attr:`MiningConfig.approx` and the
service's ``approx_miner()`` / ``sharded_miner()`` builders.  The
multi-tenant serving layer
(:class:`MiningServer`, :class:`TenantHandle`, :class:`ServerConfig`, the
typed :class:`ServerStats` family) is exported here too — ``repro serve``
and embedding applications reach it through this surface only.  The
integrity layer (:attr:`CryptoConfig.authenticate` /
:attr:`CryptoConfig.auto_verify`) authenticates every stored ciphertext
with detached MACs and commits streamed query logs to signed hash chains
(:class:`ChainCheckpoint`); a tampering or rolling-back provider surfaces
as :class:`TamperDetected`.  The fault-tolerance layer
(:class:`ReliabilityConfig` on both service and server configs) adds
retries with decorrelated-jitter backoff (:class:`RetryPolicy`),
cooperative :class:`Deadline` budgets (:class:`DeadlineExceeded`),
per-tenant circuit breakers (:class:`CircuitBreaker`, :class:`CircuitOpen`)
and crash-safe streaming recovery (:class:`StreamJournal`,
:func:`recover_matrix`), all exercised deterministically by the seeded
:class:`FaultInjector`.

The exported symbol set is a deliberate contract: it is snapshot-tested
(``tests/api/test_public_surface.py``), so additions and removals are
explicit decisions, and the CLI, the experiment drivers and every script in
``examples/`` run exclusively through this surface.  ``API_VERSION``
identifies the surface revision.

Quickstart::

    from repro.api import EncryptedMiningService, ServiceConfig

    service = EncryptedMiningService(ServiceConfig())
    service.encrypt(service.build_database())
    workload = service.generate_workload()
    result = service.run_workload(workload)
    mined = service.mine(result.encrypted_log())
    print(result.queries_served, mined.n_clusters)
"""

from repro._utils import format_table
from repro.api.config import (
    BackendConfig,
    CryptoConfig,
    MiningConfig,
    ReliabilityConfig,
    ServerConfig,
    ServiceConfig,
    WorkloadConfig,
)
from repro.api.errors import (
    ApiError,
    CircuitOpen,
    ConfigError,
    DeadlineExceeded,
    QueryRejected,
    ServerError,
    ServerOverloaded,
    ServiceError,
    SessionError,
    TamperDetected,
)
from repro.api.results import (
    ColumnExposure,
    ExposureReport,
    MiningResult,
    WorkloadResult,
)
from repro.api.service import EncryptedMiningService, ServiceSession
from repro.core import (
    AccessAreaDistance,
    AccessAreaDpeScheme,
    LogContext,
    ResultDistance,
    ResultDpeScheme,
    StructureDistance,
    StructureDpeScheme,
    TokenDistance,
    TokenDpeScheme,
    verify_distance_preservation,
)
from repro.crypto import ChainCheckpoint, KeyChain, MasterKey
from repro.cryptdb.proxy import EncryptedResult, JoinGroupSpec, StreamSink
from repro.db.backend import DEFAULT_BACKEND, available_backends
from repro.mining import (
    ApproxStreamMiner,
    CandidateStats,
    CondensedDistanceMatrix,
    DbscanResult,
    Dendrogram,
    IncrementalDistanceMatrix,
    KMedoidsResult,
    OutlierResult,
    PivotIndex,
    ShardedIncrementalMatrix,
    SlidingWindowQueryLog,
    StreamingQueryLog,
    adjusted_rand_index,
    clusterings_equivalent,
    complete_link,
    condensed_length,
    cut_dendrogram,
    dbscan,
    distance_based_outliers,
    k_medoids,
    k_nearest_neighbors,
    mine_query_log,
    pairwise_view,
    top_n_outliers,
)
from repro.sql import QueryLog, parse_query, render_query
from repro.workloads import (
    QueryLogGenerator,
    WorkloadMix,
    WorkloadProfile,
    populate_database,
    skyserver_profile,
    webshop_profile,
)

# The serving and reliability layers live in repro.server/repro.reliability,
# which import from the api submodules above; importing them last keeps the
# cycle one-directional (the submodules are fully initialised by now,
# whichever package was imported first — the packages' own __init__ modules
# anchor the other direction).
from repro.reliability.faults import FaultInjector
from repro.reliability.journal import RecoveryReport, StreamJournal, recover_matrix
from repro.reliability.policy import (
    CircuitBreaker,
    Deadline,
    ReliabilityStats,
    RetryPolicy,
    classify_transient,
)
from repro.server.server import MiningServer
from repro.server.stats import QueueStats, ServerStats, TenantStats
from repro.server.tenant import TenantHandle

#: Revision of the public surface; bumped when ``__all__`` changes shape.
API_VERSION = "1.4"

__all__ = [
    "API_VERSION",
    "AccessAreaDistance",
    "AccessAreaDpeScheme",
    "ApiError",
    "ApproxStreamMiner",
    "BackendConfig",
    "CandidateStats",
    "ChainCheckpoint",
    "CircuitBreaker",
    "CircuitOpen",
    "ColumnExposure",
    "CondensedDistanceMatrix",
    "ConfigError",
    "CryptoConfig",
    "DEFAULT_BACKEND",
    "DbscanResult",
    "Deadline",
    "DeadlineExceeded",
    "Dendrogram",
    "EncryptedMiningService",
    "EncryptedResult",
    "ExposureReport",
    "FaultInjector",
    "IncrementalDistanceMatrix",
    "JoinGroupSpec",
    "KMedoidsResult",
    "KeyChain",
    "LogContext",
    "MasterKey",
    "MiningConfig",
    "MiningResult",
    "MiningServer",
    "OutlierResult",
    "PivotIndex",
    "QueryLog",
    "QueryLogGenerator",
    "QueryRejected",
    "QueueStats",
    "RecoveryReport",
    "ReliabilityConfig",
    "ReliabilityStats",
    "ResultDistance",
    "ResultDpeScheme",
    "RetryPolicy",
    "ServerConfig",
    "ServerError",
    "ServerOverloaded",
    "ServerStats",
    "ServiceConfig",
    "ServiceError",
    "ServiceSession",
    "SessionError",
    "ShardedIncrementalMatrix",
    "SlidingWindowQueryLog",
    "StreamJournal",
    "StreamSink",
    "StreamingQueryLog",
    "StructureDistance",
    "StructureDpeScheme",
    "TamperDetected",
    "TenantHandle",
    "TenantStats",
    "TokenDistance",
    "TokenDpeScheme",
    "WorkloadConfig",
    "WorkloadMix",
    "WorkloadProfile",
    "WorkloadResult",
    "adjusted_rand_index",
    "available_backends",
    "classify_transient",
    "clusterings_equivalent",
    "complete_link",
    "condensed_length",
    "cut_dendrogram",
    "dbscan",
    "distance_based_outliers",
    "format_table",
    "k_medoids",
    "k_nearest_neighbors",
    "mine_query_log",
    "pairwise_view",
    "parse_query",
    "populate_database",
    "recover_matrix",
    "render_query",
    "skyserver_profile",
    "top_n_outliers",
    "verify_distance_preservation",
    "webshop_profile",
]
