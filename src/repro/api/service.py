"""The ``EncryptedMiningService`` façade: one entry point for the pipeline.

The paper's workflow — encrypt the database, rewrite and execute the query
log over ciphertexts, compute distances, mine clusters and outliers — used
to require hand-wiring four layers (proxy, backend, matrix pipeline, mining
algorithms).  :class:`EncryptedMiningService` composes them behind one typed
surface driven by a :class:`~repro.api.ServiceConfig`:

1. :meth:`EncryptedMiningService.encrypt` — encrypt the plaintext database
   (the artefact shipped to the provider);
2. :meth:`EncryptedMiningService.run_workload` /
   :meth:`EncryptedMiningService.open_session` — serve workloads through
   batched proxy sessions, returning typed
   :class:`~repro.api.WorkloadResult` objects;
3. :meth:`EncryptedMiningService.stream` — feed encrypted query batches into
   any :class:`~repro.cryptdb.proxy.StreamSink` (e.g. an incrementally
   maintained mining matrix);
4. :meth:`EncryptedMiningService.mine` — distance matrix + DBSCAN +
   outliers + kNN as one :class:`~repro.api.MiningResult`;
5. :meth:`EncryptedMiningService.exposure_report` — the typed per-column
   security exposure.

Every *pipeline* failure escaping the façade — rewriting, execution,
crypto, mining, parsing, configuration — is an
:class:`~repro.api.errors.ApiError` (see :mod:`repro.api.errors`); plain
Python errors from passing wrong object types remain ordinary
``TypeError``/``AttributeError``.
"""

from __future__ import annotations

import time
from collections.abc import Iterable

from repro.api.config import (
    MEASURE_NAMES,
    MIX_NAMES,
    PROFILE_NAMES,
    BackendConfig,
    MiningConfig,
    ServiceConfig,
)
from repro.api.errors import ConfigError, DeadlineExceeded, ServiceError, wrap_errors
from repro.api.results import ExposureReport, MiningResult, WorkloadResult
from repro.core.domains import DomainCatalog
from repro.core.dpe import DistanceMeasure, LogContext
from repro.core.measures import (
    AccessAreaDistance,
    ResultDistance,
    StructureDistance,
    TokenDistance,
)
from repro.crypto.keys import KeyChain, MasterKey
from repro.cryptdb.proxy import (
    CryptDBProxy,
    EncryptedResult,
    JoinGroupSpec,
    ProxySession,
    StreamSink,
)
from repro.db.database import Database
from repro.db.executor import ResultSet
from repro.mining.approx import (
    ApproxStreamMiner,
    CandidateStats,
    PivotIndex,
    ShardedIncrementalMatrix,
    SlidingWindowQueryLog,
    approx_dbscan,
    approx_knn_all,
    approx_outliers,
)
from repro.mining.dbscan import dbscan
from repro.mining.incremental import IncrementalDistanceMatrix, StreamingQueryLog
from repro.mining.knn import k_nearest_neighbors
from repro.mining.outliers import distance_based_outliers
from repro.reliability.journal import RecoveryReport, StreamJournal, recover_matrix
from repro.reliability.policy import (
    Deadline,
    ReliabilityStats,
    RetryPolicy,
    RetryingBackend,
)
from repro.sql.ast import Query
from repro.sql.log import QueryLog
from repro.sql.parser import parse_query
from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import (
    WorkloadProfile,
    populate_database,
    skyserver_profile,
    webshop_profile,
)

_MEASURE_FACTORIES = {
    "token": lambda backend: TokenDistance(),
    "structure": lambda backend: StructureDistance(),
    "result": lambda backend: ResultDistance(backend=backend),
    "access-area": lambda backend: AccessAreaDistance(),
}

_PROFILE_FACTORIES = {
    "webshop": webshop_profile,
    "skyserver": skyserver_profile,
}

_MIX_FACTORIES = {
    "mixed": WorkloadMix,
    "spj": WorkloadMix.spj_only,
    "analytical": WorkloadMix.analytical,
}

# The config module's name tuples are the single validation source; fail at
# import time if the factories ever drift from them.
assert set(_MEASURE_FACTORIES) == set(MEASURE_NAMES)
assert set(_PROFILE_FACTORIES) == set(PROFILE_NAMES)
assert set(_MIX_FACTORIES) == set(MIX_NAMES)


def _normalize_queries(
    queries: QueryLog | Query | str | Iterable[Query | str],
) -> list[Query]:
    """Accept a query log, a lone query, parsed queries or SQL strings.

    Every malformed input is a :class:`~repro.api.errors.ServiceError` (or a
    wrapped parse failure), never a raw ``TypeError`` — the façade's error
    contract covers input validation too.
    """
    if isinstance(queries, QueryLog):
        return queries.queries
    if isinstance(queries, (Query, str)):
        queries = [queries]
    try:
        items = list(queries)
    except TypeError:
        raise ServiceError(
            f"cannot build a workload from {type(queries).__name__}; expected a "
            "QueryLog, a query, an SQL string, or an iterable of queries/strings"
        ) from None
    normalized: list[Query] = []
    for item in items:
        if isinstance(item, Query):
            normalized.append(item)
        elif isinstance(item, str):
            normalized.append(parse_query(item))
        else:
            raise ServiceError(
                f"workloads contain parsed queries or SQL strings, got {type(item).__name__}"
            )
    return normalized


class ServiceSession:
    """A typed session over the service's encrypted database.

    Wraps a batched :class:`~repro.cryptdb.proxy.ProxySession` (one rewriter,
    one execution backend per workload) and returns typed results:
    :meth:`run` produces a :class:`~repro.api.WorkloadResult`, failures are
    :class:`~repro.api.errors.ApiError` subclasses.  Sessions are context
    managers; closing releases the backend's engine resources.
    """

    def __init__(
        self,
        session: ProxySession,
        *,
        reliability_stats: ReliabilityStats | None = None,
        default_deadline_ms: int | None = None,
    ) -> None:
        """Wrap an open proxy session (built by the service, not callers).

        ``default_deadline_ms`` (from the service's
        :class:`~repro.api.ReliabilityConfig`) attaches a fresh cooperative
        :class:`~repro.api.Deadline` to every :meth:`run`/:meth:`stream`
        call that does not pass its own; ``reliability_stats`` receives the
        session's deadline-expiry counts.
        """
        self._session = session
        self._reliability_stats = reliability_stats
        self._default_deadline_ms = default_deadline_ms

    def _effective_deadline(self, deadline: Deadline | None) -> Deadline | None:
        """The caller's deadline, or a fresh one from the config default."""
        if deadline is not None:
            return deadline
        if self._default_deadline_ms is not None:
            return Deadline.after_ms(self._default_deadline_ms)
        return None

    def _count_deadline(self) -> None:
        if self._reliability_stats is not None:
            self._reliability_stats.count_deadline_exceeded()

    @property
    def backend_name(self) -> str:
        """Registry name of the execution backend serving this session."""
        return self._session.backend_name

    @property
    def skipped(self) -> tuple[tuple[Query, str], ...]:
        """Queries skipped as unsupported so far, with the rewriter's reason."""
        return self._session.skipped

    @property
    def adjustments(self) -> tuple[tuple[str, str, object, object], ...]:
        """Onion adjustments performed while rewriting this session's workload."""
        return self._session.adjustments

    def execute(self, query: Query | str) -> EncryptedResult | None:
        """Rewrite and execute one query (``None`` if skipped as unsupported)."""
        with wrap_errors("execute"):
            (parsed,) = _normalize_queries([query])
            return self._session.execute(parsed)

    def run(
        self,
        queries: QueryLog | Iterable[Query | str],
        *,
        deadline: Deadline | None = None,
    ) -> WorkloadResult:
        """Serve a whole workload and return the typed result.

        Rewrites and executes every query in order on the session backend;
        skipped queries (under the ``"skip"`` policy) are recorded on the
        result.  ``elapsed_seconds`` covers exactly the rewrite-and-execute
        pass.  ``deadline`` (or the config's ``deadline_ms`` default) is
        checked cooperatively between queries; expiry raises
        :class:`~repro.api.errors.DeadlineExceeded`.
        """
        # Snapshot the session counters so the result reports *this* run's
        # skips and adjustments, not the session's cumulative totals.
        skipped_before = len(self._session.skipped)
        adjustments_before = len(self._session.adjustments)
        effective = self._effective_deadline(deadline)
        with wrap_errors("run_workload"):
            parsed = _normalize_queries(queries)
            start = time.perf_counter()
            try:
                results = self._session.run(parsed, deadline=effective)
            except DeadlineExceeded:
                self._count_deadline()
                raise
            elapsed = time.perf_counter() - start
        return WorkloadResult(
            results=tuple(results),
            skipped=self._session.skipped[skipped_before:],
            adjustments=self._session.adjustments[adjustments_before:],
            backend=self._session.backend_name,
            elapsed_seconds=elapsed,
        )

    def stream(
        self,
        queries: QueryLog | Iterable[Query | str],
        *,
        into: StreamSink,
        deadline: Deadline | None = None,
    ) -> tuple[Query, ...]:
        """Rewrite a batch and append the encrypted queries to ``into``.

        ``into`` is any :class:`~repro.cryptdb.proxy.StreamSink` — a
        :class:`~repro.mining.incremental.StreamingQueryLog` or an
        :class:`~repro.mining.incremental.IncrementalDistanceMatrix`
        directly.  Returns the rewritten queries that entered the sink.
        ``deadline`` (or the config default) expires *before* the batch is
        appended, never after a partial publish.
        """
        effective = self._effective_deadline(deadline)
        with wrap_errors("stream"):
            parsed = _normalize_queries(queries)
            try:
                return tuple(
                    self._session.stream(parsed, into=into, deadline=effective)
                )
            except DeadlineExceeded:
                self._count_deadline()
                raise

    def exposure_report(self) -> ExposureReport:
        """The typed per-column exposure after the workload served so far."""
        with wrap_errors("exposure_report"):
            return ExposureReport.from_proxy_report(self._session.exposure_report())

    @property
    def last_checkpoint(self):
        """The most recent signed log checkpoint this session issued.

        ``None`` until the first authenticated :meth:`stream` append; see
        :class:`~repro.crypto.integrity.ChainCheckpoint`.
        """
        return self._session.last_checkpoint

    def verify_storage(self) -> int:
        """Audit every stored ciphertext against the owner's MAC manifest.

        Re-reads the session backend's encrypted tables and recomputes the
        per-cell row tags; any flipped, swapped or replayed cell raises
        :class:`~repro.api.errors.TamperDetected`.  Returns the number of
        cells checked.  Requires
        :attr:`~repro.api.CryptoConfig.authenticate`.
        """
        with wrap_errors("verify_storage"):
            return self._session.verify_storage()

    def verify_stream(self, into: StreamSink):
        """Verify a streamed sink's log against the last signed checkpoint.

        The sink's current log must be an exact prefix-extension of the
        hash chain this session checkpointed; a truncated (rolled-back) or
        mutated log raises :class:`~repro.api.errors.TamperDetected`.
        Returns the verified :class:`~repro.crypto.integrity.ChainCheckpoint`.
        """
        with wrap_errors("verify_stream"):
            return self._session.verify_stream(into)

    def close(self) -> None:
        """Release the backend's engine resources."""
        self._session.close()

    def __enter__(self) -> "ServiceSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class EncryptedMiningService:
    """The façade over the paper's full pipeline, driven by one typed config.

    Construction derives the key material (from
    :attr:`~repro.api.CryptoConfig.passphrase`, or a caller-supplied
    :class:`~repro.crypto.keys.KeyChain`) and builds the CryptDB-style proxy;
    :meth:`encrypt` then fixes the database snapshot, after which sessions,
    workloads, streaming and mining are all served from this one object.
    ``join_groups`` declares columns that must stay joinable (shared DET/OPE
    keys), exactly as for :class:`~repro.cryptdb.proxy.CryptDBProxy`.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        keychain: KeyChain | None = None,
        join_groups: Iterable[JoinGroupSpec] = (),
    ) -> None:
        """Build the service from ``config`` (defaults to ``ServiceConfig()``)."""
        if config is None:
            config = ServiceConfig()
        if not isinstance(config, ServiceConfig):
            raise ConfigError(
                f"EncryptedMiningService expects a ServiceConfig, got {config!r}"
            )
        self._config = config
        crypto = config.crypto
        if keychain is not None and crypto.passphrase is not None:
            raise ConfigError(
                "pass either CryptoConfig.passphrase or an explicit keychain, "
                "not both: the explicit keychain would silently win"
            )
        if keychain is None:
            master = (
                MasterKey.from_passphrase(crypto.passphrase)
                if crypto.passphrase is not None
                else MasterKey.generate()
            )
            keychain = KeyChain(master)
        self._keychain = keychain
        # One stats object per service: every session's retry wrapper and
        # deadline checks feed it, so TenantStats can surface the totals.
        self._reliability_stats = ReliabilityStats()
        reliability = config.reliability
        self._retry_policy = (
            RetryPolicy(
                max_attempts=reliability.max_retries + 1,
                base_delay=reliability.backoff_base,
                max_delay=reliability.backoff_max,
            )
            if reliability.max_retries > 0
            else None
        )
        with wrap_errors("service construction"):
            self._proxy = CryptDBProxy(
                keychain,
                join_groups=join_groups,
                paillier_bits=crypto.paillier_bits,
                paillier_pool_size=crypto.paillier_pool_size,
                shared_det_key=crypto.shared_det_key,
                backend=config.backend.name,
                authenticate=crypto.authenticate,
                auto_verify=crypto.auto_verify,
            )

    # -- introspection --------------------------------------------------- #

    @property
    def config(self) -> ServiceConfig:
        """The configuration this service was built from."""
        return self._config

    @property
    def keychain(self) -> KeyChain:
        """The owner-side keychain (derives every scheme key)."""
        return self._keychain

    def crypto_stats(self) -> dict[str, object]:
        """Fast-path statistics of the crypto layer (noise pool, OPE caches)."""
        return self._proxy.crypto_stats()

    @property
    def reliability_stats(self) -> ReliabilityStats:
        """The fault-tolerance counters of this service (shared by sessions).

        ``retries``/``gave_up`` count backend-call retries by the sessions'
        :class:`~repro.api.RetryPolicy` wrapper, ``deadline_exceeded`` the
        cooperative deadline expiries, ``recoveries`` the successful
        :meth:`recover_miner` calls.  Snapshot with
        :meth:`~repro.api.ReliabilityStats.snapshot`.
        """
        return self._reliability_stats

    # -- owner side: encryption and workloads ----------------------------- #

    def encrypt(self, database: Database) -> Database:
        """Encrypt ``database`` and return the encrypted copy (provider-bound).

        Must be called before sessions can be opened; calling it again
        re-encrypts a new snapshot and invalidates prior sessions' view.
        """
        with wrap_errors("encrypt"):
            return self._proxy.encrypt_database(database)

    def decrypt(self, result: EncryptedResult) -> ResultSet:
        """Decrypt an encrypted result back to plaintext values (owner side)."""
        with wrap_errors("decrypt"):
            return self._proxy.decrypt_result(result)

    def workload_profile(self) -> WorkloadProfile:
        """The workload profile named by the config (default row counts)."""
        return _PROFILE_FACTORIES[self._config.workload.profile]()

    def generate_workload(
        self, *, profile: WorkloadProfile | None = None, size: int | None = None
    ) -> QueryLog:
        """Generate the deterministic synthetic workload the config describes."""
        workload = self._config.workload
        profile = profile if profile is not None else self.workload_profile()
        mix = _MIX_FACTORIES[workload.mix]()
        generator = QueryLogGenerator(profile, mix, seed=workload.seed)
        return generator.generate(size if size is not None else workload.size)

    def build_database(self, *, profile: WorkloadProfile | None = None) -> Database:
        """Populate the plaintext database of the configured workload profile."""
        profile = profile if profile is not None else self.workload_profile()
        return populate_database(profile, seed=self._config.workload.seed)

    # -- provider side: sessions, workloads, streams ----------------------- #

    def open_session(
        self, *, backend: str | None = None, on_unsupported: str | None = None
    ) -> ServiceSession:
        """Open a typed session (one rewriter + one execution backend).

        ``backend`` / ``on_unsupported`` override the config's
        :class:`~repro.api.BackendConfig` for this session only; an unknown
        backend raises :class:`~repro.api.errors.ConfigError` listing the
        registered ones.
        """
        # BackendConfig is the single validator for both axes; constructing
        # it raises the canonical ConfigError for unknown names/policies.
        effective = BackendConfig(
            name=backend if backend is not None else self._config.backend.name,
            on_unsupported=(
                on_unsupported
                if on_unsupported is not None
                else self._config.backend.on_unsupported
            ),
        )
        wrapper = None
        if self._retry_policy is not None:
            policy, stats = self._retry_policy, self._reliability_stats
            wrapper = lambda inner: RetryingBackend(inner, policy, stats=stats)  # noqa: E731
        with wrap_errors("open_session"):
            return ServiceSession(
                self._proxy.session(
                    backend=effective.name,
                    on_unsupported=effective.on_unsupported,
                    backend_wrapper=wrapper,
                ),
                reliability_stats=self._reliability_stats,
                default_deadline_ms=self._config.reliability.deadline_ms,
            )

    def run_workload(
        self,
        queries: QueryLog | Iterable[Query | str],
        *,
        backend: str | None = None,
        on_unsupported: str | None = None,
    ) -> WorkloadResult:
        """Serve a whole workload in one session and return the typed result."""
        with self.open_session(backend=backend, on_unsupported=on_unsupported) as session:
            return session.run(queries)

    def stream(
        self,
        batches: Iterable[QueryLog | Iterable[Query | str]],
        *,
        into: StreamSink,
        backend: str | None = None,
        on_unsupported: str | None = None,
    ) -> tuple[Query, ...]:
        """Stream successive batches of queries into a sink via one session.

        Each batch is rewritten and appended to ``into`` (a streaming log or
        an incremental mining matrix) the moment it is processed; the
        returned tuple holds every encrypted query that entered the sink,
        in order.  Batch shape is explicit: a :class:`QueryLog` or a flat
        sequence of queries/SQL strings counts as *one* batch; otherwise
        every element of ``batches`` is one batch (a lone query element is a
        batch of one).  For per-batch control (e.g. inspecting mining
        artefacts between batches), use :meth:`open_session` and
        :meth:`ServiceSession.stream` directly.
        """
        if isinstance(batches, QueryLog):
            batch_list: list[QueryLog | Iterable[Query | str]] = [batches.queries]
        elif isinstance(batches, (Query, str)):
            batch_list = [[batches]]
        else:
            batch_list = list(batches)
            if batch_list and all(isinstance(item, (Query, str)) for item in batch_list):
                # A flat sequence of queries is one batch, not many
                # single-query batches.
                batch_list = [batch_list]  # type: ignore[list-item]
        encrypted: list[Query] = []
        with self.open_session(backend=backend, on_unsupported=on_unsupported) as session:
            for batch in batch_list:
                encrypted.extend(session.stream(batch, into=into))
        return tuple(encrypted)

    def exposure_report(self) -> ExposureReport:
        """The typed per-column exposure after every workload served so far."""
        with wrap_errors("exposure_report"):
            return ExposureReport.from_proxy_report(self._proxy.exposure_report())

    # -- provider side: mining -------------------------------------------- #

    def measure(self) -> DistanceMeasure:
        """The distance measure named by the config's :class:`MiningConfig`."""
        factory = _MEASURE_FACTORIES[self._config.mining.measure]
        return factory(self._config.backend.name)

    def mine(
        self,
        context: LogContext | QueryLog | Iterable[Query | str],
        *,
        measure: DistanceMeasure | None = None,
    ) -> MiningResult:
        """Compute the mining artefacts of a log under the configured measure.

        ``context`` is a full :class:`~repro.core.dpe.LogContext` when the
        measure needs side information (database content for the result
        distance, domains for the access area); a bare log suffices for the
        token and structure measures.  The distance matrix is sharded over
        :attr:`~repro.api.MiningConfig.workers` processes when configured;
        DBSCAN, DB(p, D)-outliers and kNN lists use the config's mining
        parameters.

        With :attr:`~repro.api.MiningConfig.approx` set, the same artefacts
        come from the pivot-indexed sublinear path instead: no all-pairs
        matrix is materialised (``result.matrix is None``) and
        ``result.candidate_stats`` reports the certify/prune/evaluate
        split — ``certified_complete`` guarantees the labels, outliers and
        kNN lists are bit-for-bit equal to the exact path's.
        """
        mining = self._config.mining
        chosen = measure if measure is not None else self.measure()
        with wrap_errors("mine"):
            if isinstance(context, LogContext):
                log_context = context
            else:
                entries = _normalize_queries(context)
                log_context = LogContext(log=QueryLog.from_queries(entries))
            if mining.approx:
                return self._mine_approx(chosen, log_context)
            matrix = chosen.condensed_distance_matrix(
                log_context, workers=mining.workers, chunk_size=mining.chunk_size
            )
            clusters = dbscan(
                matrix, eps=mining.dbscan_eps, min_points=mining.dbscan_min_points
            )
            outliers = distance_based_outliers(
                matrix, p=mining.outlier_p, d=mining.outlier_d
            )
            k = min(mining.knn_k, matrix.n - 1)
            knn = tuple(
                tuple(k_nearest_neighbors(matrix, index, k=k)) if k >= 1 else ()
                for index in range(matrix.n)
            )
        return MiningResult(
            measure=chosen.name,
            matrix=matrix,
            clusters=clusters,
            outliers=outliers,
            knn=knn,
        )

    def _mine_approx(
        self, chosen: DistanceMeasure, log_context: LogContext
    ) -> MiningResult:
        """The sublinear branch of :meth:`mine` (pivot index, no matrix)."""
        mining = self._config.mining
        index = PivotIndex.from_context(
            chosen, log_context, n_pivots=mining.pivots, seed=mining.seed
        )
        cache: dict = {}
        clusters, dbscan_stats = approx_dbscan(
            index,
            eps=mining.dbscan_eps,
            min_points=mining.dbscan_min_points,
            max_candidates=mining.max_candidates,
            cache=cache,
        )
        outliers, outlier_stats = approx_outliers(
            index,
            p=mining.outlier_p,
            d=mining.outlier_d,
            max_candidates=mining.max_candidates,
            cache=cache,
        )
        n = index.n_items
        k = min(mining.knn_k, n - 1)
        if k >= 1:
            knn_by_id, knn_stats = approx_knn_all(
                index, k=k, max_candidates=mining.max_candidates, cache=cache
            )
            # Batch-built indexes assign ids by log position, so iterating
            # the live ids in order yields the exact path's positional rows.
            knn = tuple(knn_by_id[item_id] for item_id in index.item_ids())
            stats = CandidateStats.merge(dbscan_stats, outlier_stats, knn_stats)
        else:
            knn = ((),) * n
            stats = CandidateStats.merge(dbscan_stats, outlier_stats)
        return MiningResult(
            measure=chosen.name,
            matrix=None,
            clusters=clusters,
            outliers=outliers,
            knn=knn,
            candidate_stats=stats,
        )

    def incremental_miner(
        self,
        stream: StreamingQueryLog | None = None,
        *,
        database: Database | None = None,
        domains: DomainCatalog | None = None,
    ) -> IncrementalDistanceMatrix:
        """An incremental mining matrix wired to the config's parameters.

        Subscribes to ``stream`` (or owns a fresh
        :class:`~repro.mining.incremental.StreamingQueryLog`); the returned
        matrix satisfies :class:`~repro.cryptdb.proxy.StreamSink`, so it can
        be passed straight to :meth:`stream` /
        :meth:`ServiceSession.stream` as the ``into`` sink.
        """
        mining = self._config.mining
        with wrap_errors("incremental_miner"):
            return IncrementalDistanceMatrix(
                self.measure(),
                stream,
                database=database,
                domains=domains,
                knn_k=mining.knn_k,
                outlier_p=mining.outlier_p,
                outlier_d=mining.outlier_d,
                dbscan_eps=mining.dbscan_eps,
                dbscan_min_points=mining.dbscan_min_points,
            )

    def journaled_miner(
        self,
        stream: StreamingQueryLog | None = None,
        *,
        path: str | None = None,
        database: Database | None = None,
        domains: DomainCatalog | None = None,
    ) -> tuple[IncrementalDistanceMatrix, StreamJournal]:
        """An incremental miner whose stream is durably journaled.

        Builds :meth:`incremental_miner` and attaches a
        :class:`~repro.api.StreamJournal` at ``path`` (default: the
        config's :attr:`~repro.api.ReliabilityConfig.journal_path`) to its
        stream, so every streamed batch is crash-safe the moment it lands.
        Returns ``(matrix, journal)``; close the journal when done.  After
        a crash, :meth:`recover_miner` at the same path rebuilds the matrix
        bit-for-bit.
        """
        reliability = self._config.reliability
        journal_path = path if path is not None else reliability.journal_path
        if journal_path is None:
            raise ConfigError(
                "journaled_miner needs a journal path: pass path=... or set "
                "ReliabilityConfig.journal_path"
            )
        with wrap_errors("journaled_miner"):
            matrix = self.incremental_miner(
                stream, database=database, domains=domains
            )
            journal = StreamJournal(
                journal_path, snapshot_every=reliability.snapshot_every
            )
            journal.attach(matrix.stream)
        return matrix, journal

    def recover_miner(
        self,
        *,
        path: str | None = None,
        database: Database | None = None,
        domains: DomainCatalog | None = None,
        checkpoint=None,
        key: bytes | None = None,
    ) -> tuple[IncrementalDistanceMatrix, RecoveryReport]:
        """Rebuild a journaled miner's state after a crash.

        Replays the verified journal at ``path`` (default: the config's
        :attr:`~repro.api.ReliabilityConfig.journal_path`) into a fresh
        incremental matrix under the config's measure and mining
        parameters; the recovered artefacts are bit-for-bit what an
        uninterrupted run over the journaled prefix would hold.  Pass the
        session's :attr:`~repro.api.ServiceSession.last_checkpoint` (and
        the proxy's checkpoint key) to additionally pin the journal to an
        owner-signed prefix.  Returns ``(matrix, report)`` and counts one
        recovery in :attr:`reliability_stats`.
        """
        reliability = self._config.reliability
        journal_path = path if path is not None else reliability.journal_path
        if journal_path is None:
            raise ConfigError(
                "recover_miner needs a journal path: pass path=... or set "
                "ReliabilityConfig.journal_path"
            )
        mining = self._config.mining
        with wrap_errors("recover_miner"):
            return recover_matrix(
                journal_path,
                self.measure(),
                database=database,
                domains=domains,
                checkpoint=checkpoint,
                key=key,
                stats=self._reliability_stats,
                knn_k=mining.knn_k,
                outlier_p=mining.outlier_p,
                outlier_d=mining.outlier_d,
                dbscan_eps=mining.dbscan_eps,
                dbscan_min_points=mining.dbscan_min_points,
            )

    def approx_miner(
        self,
        window_log: SlidingWindowQueryLog | None = None,
        *,
        database: Database | None = None,
        domains: DomainCatalog | None = None,
    ) -> ApproxStreamMiner:
        """A sliding-window sublinear miner wired to the config's parameters.

        Maintains a :class:`~repro.mining.approx.PivotIndex` over the most
        recent :attr:`~repro.api.MiningConfig.window` queries (default 1024
        when the config leaves it ``None``), evicting by the config's
        ``window_decay`` / ``seed``.  The miner satisfies
        :class:`~repro.cryptdb.proxy.StreamSink`, so it can be passed
        straight to :meth:`stream` as the ``into`` sink; mine through its
        ``dbscan()`` / ``outliers()`` / ``knn_all()`` accessors.
        """
        mining = self._config.mining
        with wrap_errors("approx_miner"):
            return ApproxStreamMiner(
                self.measure(),
                window_log,
                window=mining.window if mining.window is not None else 1024,
                decay=mining.window_decay,
                seed=mining.seed,
                n_pivots=mining.pivots,
                max_candidates=mining.max_candidates,
                database=database,
                domains=domains,
                knn_k=mining.knn_k,
                outlier_p=mining.outlier_p,
                outlier_d=mining.outlier_d,
                dbscan_eps=mining.dbscan_eps,
                dbscan_min_points=mining.dbscan_min_points,
            )

    def sharded_miner(
        self,
        *,
        database: Database | None = None,
        domains: DomainCatalog | None = None,
    ) -> ShardedIncrementalMatrix:
        """A sharded-ingest sublinear miner wired to the config's parameters.

        Appends are O(1) distributions over
        :attr:`~repro.api.MiningConfig.shards` buffers (no distance work on
        the ingest path); draining merges them into the pivot index in id
        order at mine time.  Satisfies
        :class:`~repro.cryptdb.proxy.StreamSink` like the other miners.
        """
        mining = self._config.mining
        with wrap_errors("sharded_miner"):
            return ShardedIncrementalMatrix(
                self.measure(),
                n_shards=mining.shards,
                n_pivots=mining.pivots,
                seed=mining.seed,
                max_candidates=mining.max_candidates,
                database=database,
                domains=domains,
                knn_k=mining.knn_k,
                outlier_p=mining.outlier_p,
                outlier_d=mining.outlier_d,
                dbscan_eps=mining.dbscan_eps,
                dbscan_min_points=mining.dbscan_min_points,
            )


__all__ = ["EncryptedMiningService", "ServiceSession"]
