"""Query rewriting: plaintext query → executable query over the encrypted DB.

The rewriter is the CryptDB "proxy brain": it maps relation and attribute
names to their encrypted counterparts, chooses — per syntactic position —
which onion (physical column) to reference, and encrypts constants with the
scheme matching the chosen onion:

* equality predicates, IN lists, GROUP BY, joins → EQ onion (DET),
* range predicates, BETWEEN, ORDER BY, MIN/MAX → ORD onion (OPE),
* SUM → the HOM onion via the ``HOMSUM`` custom aggregate,
* COUNT → EQ onion (counting needs only equality of presence),
* plain projections → EQ onion, so result tuples are deterministic
  ciphertexts (required for the paper's *result equivalence*).

Constant handling is factored into a :class:`ConstantPolicy`, so experiments
can swap in non-CryptDB policies (e.g. the ablation that encrypts range
constants with DET and demonstrates the resulting breakage).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cryptdb.column import EncryptedColumn, EncryptedSchemaMap
from repro.cryptdb.onion import Onion, OnionLayer
from repro.exceptions import RewriteError
from repro.sql.ast import (
    AggregateCall,
    BetweenPredicate,
    BinaryOp,
    ColumnRef,
    ComparisonOp,
    Expression,
    InPredicate,
    IsNullPredicate,
    Join,
    LikePredicate,
    Literal,
    LogicalOp,
    NotOp,
    OrderItem,
    Query,
    SelectItem,
    Star,
    UnaryMinus,
)
from repro.sql.visitor import column_refs


@dataclass(frozen=True)
class ConstantContext:
    """Where a constant occurs: the column it is compared against and how."""

    column: EncryptedColumn
    onion: Onion


class ConstantPolicy:
    """Decides how to encrypt a constant given its :class:`ConstantContext`."""

    def encrypt_constant(self, value: object, context: ConstantContext) -> object:
        """Return the encrypted literal value for ``value``."""
        raise NotImplementedError


class CryptDbConstantPolicy(ConstantPolicy):
    """CryptDB's behaviour: encrypt with the scheme of the referenced onion."""

    def encrypt_constant(self, value: object, context: ConstantContext) -> object:
        from repro.cryptdb.column import normalize_equality_value

        column = context.column
        if context.onion is Onion.EQ:
            return column.encryption.det.encrypt(normalize_equality_value(value))  # type: ignore[arg-type]
        if context.onion is Onion.ORD:
            if column.encryption.ope is None:
                raise RewriteError(
                    f"column {column.plain_table}.{column.plain_name} has no ORD onion"
                )
            return column.encryption.ope.encrypt(column.encode_numeric(value))
        raise RewriteError("constants are never encrypted for the HOM onion")


class QueryRewriter:
    """Rewrites plaintext queries into queries over the encrypted schema."""

    def __init__(
        self,
        schema_map: EncryptedSchemaMap,
        table_name_scheme,
        *,
        constant_policy: ConstantPolicy | None = None,
        projection_onion: Onion = Onion.EQ,
    ) -> None:
        """Create a rewriter.

        Parameters
        ----------
        schema_map:
            The plaintext-to-encrypted schema mapping built by the proxy.
        table_name_scheme:
            The :class:`~repro.crypto.det.DeterministicScheme` used for
            relation names and aliases (EncRel of the paper).
        constant_policy:
            How constants are encrypted; defaults to CryptDB behaviour.
        projection_onion:
            Which onion plain projections reference.  ``Onion.EQ`` keeps
            result tuples deterministic (needed for result equivalence).
        """
        self._schema_map = schema_map
        self._table_scheme = table_name_scheme
        self._policy = constant_policy or CryptDbConstantPolicy()
        self._projection_onion = projection_onion
        #: Onion adjustments performed while rewriting, as
        #: (plain_table, plain_column, onion, layer) tuples.
        self.adjustments: list[tuple[str, str, Onion, OnionLayer]] = []

    # ------------------------------------------------------------------ #
    # public API

    def rewrite(self, query: Query) -> Query:
        """Rewrite ``query`` for execution over the encrypted database."""
        bindings = self._binding_map(query)

        select_items = tuple(
            self._rewrite_select_item(item, bindings) for item in query.select_items
        )
        from_table = self._rewrite_table_ref(query.from_table)
        joins = tuple(self._rewrite_join(join, bindings) for join in query.joins)
        where = (
            None
            if query.where is None
            else self._rewrite_predicate(query.where, bindings)
        )
        group_by = tuple(
            self._rewrite_value_expression(expr, bindings, Onion.EQ) for expr in query.group_by
        )
        having = (
            None
            if query.having is None
            else self._rewrite_predicate(query.having, bindings)
        )
        order_by = tuple(
            OrderItem(
                self._rewrite_value_expression(item.expression, bindings, Onion.ORD),
                item.ascending,
            )
            for item in query.order_by
        )
        return Query(
            select_items=select_items,
            from_table=from_table,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=query.limit,
            distinct=query.distinct,
        )

    # ------------------------------------------------------------------ #
    # name resolution

    def _binding_map(self, query: Query) -> dict[str, str]:
        """Map binding names (aliases or table names) to plaintext table names."""
        bindings: dict[str, str] = {}
        for ref in query.tables():
            if not self._schema_map.has_table(ref.name):
                raise RewriteError(f"query references unmapped table {ref.name!r}")
            bindings[ref.binding_name] = ref.name
        return bindings

    def _resolve_column(self, ref: ColumnRef, bindings: dict[str, str]) -> EncryptedColumn:
        if ref.table is not None:
            if ref.table not in bindings:
                raise RewriteError(f"unknown table or alias {ref.table!r}")
            return self._schema_map.column(bindings[ref.table], ref.name)
        return self._schema_map.find_column(ref.name, tuple(bindings.values()))

    def _encrypted_binding(self, binding: str, bindings: dict[str, str]) -> str:
        """Encrypted name to qualify columns with (alias or table name)."""
        plain_table = bindings[binding]
        if binding == plain_table:
            return self._schema_map.table(plain_table).encrypted_name
        return self._table_scheme.encrypt_identifier(binding)

    def _rewrite_table_ref(self, ref):
        from repro.sql.ast import TableRef

        table = self._schema_map.table(ref.name)
        alias = None
        if ref.alias is not None:
            alias = self._table_scheme.encrypt_identifier(ref.alias)
        return TableRef(table.encrypted_name, alias)

    def _rewrite_column(
        self, ref: ColumnRef, bindings: dict[str, str], onion: Onion
    ) -> ColumnRef:
        column = self._resolve_column(ref, bindings)
        if not column.has_onion(onion):
            raise RewriteError(
                f"column {column.plain_table}.{column.plain_name} does not support "
                f"the {onion.value} onion required here"
            )
        layer = _target_layer(onion)
        if column.state.adjust_to(onion, layer):
            self.adjustments.append((column.plain_table, column.plain_name, onion, layer))
        table_qualifier = None
        if ref.table is not None:
            table_qualifier = self._encrypted_binding(ref.table, bindings)
        return ColumnRef(column.physical_name(onion), table_qualifier)

    # ------------------------------------------------------------------ #
    # clause rewriting

    def _rewrite_select_item(self, item: SelectItem, bindings: dict[str, str]) -> SelectItem:
        expr = item.expression
        if isinstance(expr, Star):
            raise RewriteError(
                "'*' projections cannot be rewritten; list columns explicitly"
            )
        rewritten = self._rewrite_projection(expr, bindings)
        return SelectItem(rewritten, item.alias)

    def _rewrite_projection(self, expr: Expression, bindings: dict[str, str]) -> Expression:
        if isinstance(expr, ColumnRef):
            return self._rewrite_column(expr, bindings, self._projection_onion)
        if isinstance(expr, AggregateCall):
            return self._rewrite_aggregate(expr, bindings)
        if isinstance(expr, Literal):
            return expr
        raise RewriteError(
            f"unsupported projection expression {type(expr).__name__}; "
            "only columns, aggregates and literals can be projected over encrypted data"
        )

    def _rewrite_aggregate(self, call: AggregateCall, bindings: dict[str, str]) -> Expression:
        function = call.function
        if isinstance(call.argument, Star):
            if function != "COUNT":
                raise RewriteError(f"{function}(*) is not supported")
            return call
        if not isinstance(call.argument, ColumnRef):
            raise RewriteError("aggregates over encrypted data require a plain column argument")
        if function == "COUNT":
            column = self._rewrite_column(call.argument, bindings, Onion.EQ)
            return AggregateCall("COUNT", column, call.distinct)
        if function in ("MIN", "MAX"):
            column = self._rewrite_column(call.argument, bindings, Onion.ORD)
            return AggregateCall(function, column, call.distinct)
        if function == "SUM":
            column = self._rewrite_column(call.argument, bindings, Onion.HOM)
            return AggregateCall("HOMSUM", column, call.distinct)
        raise RewriteError(
            f"aggregate {function} cannot be evaluated over encrypted data "
            "(CryptDB evaluates AVG client-side as SUM/COUNT)"
        )

    def _rewrite_join(self, join: Join, bindings: dict[str, str]) -> Join:
        condition = None
        if join.condition is not None:
            condition = self._rewrite_predicate(join.condition, bindings)
        return Join(join.join_type, self._rewrite_table_ref(join.right), condition)

    def _rewrite_value_expression(
        self, expr: Expression, bindings: dict[str, str], onion: Onion
    ) -> Expression:
        if isinstance(expr, ColumnRef):
            return self._rewrite_column(expr, bindings, onion)
        if isinstance(expr, AggregateCall):
            return self._rewrite_aggregate(expr, bindings)
        raise RewriteError(
            f"unsupported expression {type(expr).__name__} in GROUP BY / ORDER BY"
        )

    # ------------------------------------------------------------------ #
    # predicates

    def _rewrite_predicate(self, expr: Expression, bindings: dict[str, str]) -> Expression:
        if isinstance(expr, LogicalOp):
            return LogicalOp(
                expr.op,
                tuple(self._rewrite_predicate(op, bindings) for op in expr.operands),
            )
        if isinstance(expr, NotOp):
            return NotOp(self._rewrite_predicate(expr.operand, bindings))
        if isinstance(expr, BinaryOp) and isinstance(expr.op, ComparisonOp):
            return self._rewrite_comparison(expr, bindings)
        if isinstance(expr, BetweenPredicate):
            return self._rewrite_between(expr, bindings)
        if isinstance(expr, InPredicate):
            return self._rewrite_in(expr, bindings)
        if isinstance(expr, IsNullPredicate):
            if not isinstance(expr.operand, ColumnRef):
                raise RewriteError("IS NULL over encrypted data requires a plain column")
            return IsNullPredicate(
                self._rewrite_column(expr.operand, bindings, Onion.EQ), expr.negated
            )
        if isinstance(expr, LikePredicate):
            raise RewriteError(
                "LIKE requires CryptDB's SEARCH onion, which is outside the query classes "
                "used by the paper's distance measures"
            )
        raise RewriteError(f"unsupported predicate {type(expr).__name__} over encrypted data")

    def _rewrite_comparison(self, expr: BinaryOp, bindings: dict[str, str]) -> Expression:
        left_is_column = isinstance(expr.left, ColumnRef)
        right_is_column = isinstance(expr.right, ColumnRef)
        left_is_aggregate = isinstance(expr.left, AggregateCall)
        is_equality = expr.op in (ComparisonOp.EQ, ComparisonOp.NEQ)
        onion = Onion.EQ if is_equality else Onion.ORD

        if left_is_column and right_is_column:
            # column-column comparison (join predicate); both sides use the
            # same onion, and DET/OPE keys must be shared via join groups for
            # the comparison to be meaningful.
            return BinaryOp(
                expr.op,
                self._rewrite_column(expr.left, bindings, onion),  # type: ignore[arg-type]
                self._rewrite_column(expr.right, bindings, onion),  # type: ignore[arg-type]
            )
        if left_is_column and isinstance(expr.right, (Literal, UnaryMinus)):
            column_ref: ColumnRef = expr.left  # type: ignore[assignment]
            value = _literal_value(expr.right)
            column = self._resolve_column(column_ref, bindings)
            encrypted_value = self._policy.encrypt_constant(value, ConstantContext(column, onion))
            return BinaryOp(
                expr.op,
                self._rewrite_column(column_ref, bindings, onion),
                Literal(encrypted_value),  # type: ignore[arg-type]
            )
        if right_is_column and isinstance(expr.left, (Literal, UnaryMinus)):
            flipped = BinaryOp(expr.op.flip(), expr.right, expr.left)
            return self._rewrite_comparison(flipped, bindings)
        if left_is_aggregate and isinstance(expr.right, (Literal, UnaryMinus)):
            aggregate: AggregateCall = expr.left  # type: ignore[assignment]
            if aggregate.function != "COUNT":
                raise RewriteError(
                    "HAVING over encrypted data supports only COUNT comparisons"
                )
            return BinaryOp(
                expr.op, self._rewrite_aggregate(aggregate, bindings), expr.right
            )
        raise RewriteError(
            "unsupported comparison shape over encrypted data "
            f"({type(expr.left).__name__} {expr.op.value} {type(expr.right).__name__})"
        )

    def _rewrite_between(self, expr: BetweenPredicate, bindings: dict[str, str]) -> Expression:
        if not isinstance(expr.operand, ColumnRef):
            raise RewriteError("BETWEEN over encrypted data requires a plain column operand")
        column = self._resolve_column(expr.operand, bindings)
        context = ConstantContext(column, Onion.ORD)
        low = self._policy.encrypt_constant(_literal_value(expr.low), context)
        high = self._policy.encrypt_constant(_literal_value(expr.high), context)
        return BetweenPredicate(
            self._rewrite_column(expr.operand, bindings, Onion.ORD),
            Literal(low),  # type: ignore[arg-type]
            Literal(high),  # type: ignore[arg-type]
            expr.negated,
        )

    def _rewrite_in(self, expr: InPredicate, bindings: dict[str, str]) -> Expression:
        if not isinstance(expr.operand, ColumnRef):
            raise RewriteError("IN over encrypted data requires a plain column operand")
        column = self._resolve_column(expr.operand, bindings)
        context = ConstantContext(column, Onion.EQ)
        values = tuple(
            Literal(self._policy.encrypt_constant(_literal_value(value), context))  # type: ignore[arg-type]
            for value in expr.values
        )
        return InPredicate(
            self._rewrite_column(expr.operand, bindings, Onion.EQ), values, expr.negated
        )


def _target_layer(onion: Onion) -> OnionLayer:
    """The layer an onion must be peeled to for server-side evaluation."""
    if onion is Onion.EQ:
        return OnionLayer.DET
    if onion is Onion.ORD:
        return OnionLayer.OPE
    return OnionLayer.HOM


def _literal_value(expr: Expression) -> object:
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, UnaryMinus) and isinstance(expr.operand, Literal):
        value = expr.operand.value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return -value
    raise RewriteError(f"expected a literal constant, found {type(expr).__name__}")


def columns_in_predicates(query: Query) -> list[ColumnRef]:
    """All column references occurring in WHERE/HAVING/ON predicates of ``query``."""
    refs: list[ColumnRef] = []
    if query.where is not None:
        refs.extend(column_refs(query.where))
    if query.having is not None:
        refs.extend(column_refs(query.having))
    for join in query.joins:
        if join.condition is not None:
            refs.extend(column_refs(join.condition))
    return refs
