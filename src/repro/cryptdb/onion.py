"""Onion layers and onion state.

CryptDB encrypts every column in *onions*: stacks of encryption layers with
the strongest (probabilistic) layer outermost.  Executing a query may require
*adjusting* an onion, i.e. peeling outer layers until a layer that supports
the required operation (equality, order, summation) is exposed.  The exposed
layer is what an attacker at the service provider learns about the column.

We model three onions, as CryptDB does for the query classes used in the
paper's case study:

* ``EQ``  — RND → DET (→ JOIN): equality predicates, GROUP BY, joins.
* ``ORD`` — RND → OPE: range predicates, ORDER BY, MIN/MAX.
* ``HOM`` — HOM: SUM / AVG.

:class:`OnionState` tracks, per column and onion, the outermost layer still
in place.  The security-comparison experiment reads this state: plain
CryptDB must peel onions for every operation the workload uses, whereas the
paper's access-area scheme leaves aggregate-only attributes at the PROB
level.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.crypto.base import EncryptionClass
from repro.exceptions import OnionError


class OnionLayer(enum.Enum):
    """A single encryption layer inside an onion."""

    RND = "RND"
    DET = "DET"
    JOIN = "JOIN"
    OPE = "OPE"
    HOM = "HOM"
    PLAIN = "PLAIN"

    @property
    def encryption_class(self) -> EncryptionClass:
        """The Figure 1 class this layer corresponds to."""
        return {
            OnionLayer.RND: EncryptionClass.PROB,
            OnionLayer.DET: EncryptionClass.DET,
            OnionLayer.JOIN: EncryptionClass.JOIN,
            OnionLayer.OPE: EncryptionClass.OPE,
            OnionLayer.HOM: EncryptionClass.HOM,
            OnionLayer.PLAIN: EncryptionClass.PLAIN,
        }[self]


class Onion(enum.Enum):
    """The onions a column may carry."""

    EQ = "EQ"
    ORD = "ORD"
    HOM = "HOM"


#: Layer stacks per onion, outermost first.
ONION_STACKS: dict[Onion, tuple[OnionLayer, ...]] = {
    Onion.EQ: (OnionLayer.RND, OnionLayer.DET, OnionLayer.JOIN),
    Onion.ORD: (OnionLayer.RND, OnionLayer.OPE),
    Onion.HOM: (OnionLayer.HOM,),
}


@dataclass
class OnionState:
    """Tracks the outermost (exposed) layer of each onion of one column."""

    onions: dict[Onion, OnionLayer] = field(default_factory=dict)

    @classmethod
    def initial(cls, onions: tuple[Onion, ...]) -> "OnionState":
        """Create the initial state: every onion at its outermost layer."""
        return cls({onion: ONION_STACKS[onion][0] for onion in onions})

    def current_layer(self, onion: Onion) -> OnionLayer:
        """The currently exposed layer of ``onion``."""
        try:
            return self.onions[onion]
        except KeyError:
            raise OnionError(f"column has no {onion.value} onion") from None

    def adjust_to(self, onion: Onion, layer: OnionLayer) -> bool:
        """Peel ``onion`` down to ``layer`` if necessary.

        Returns True if a peel happened (i.e. security was lowered).  Raises
        :class:`OnionError` if the requested layer is not part of the onion's
        stack or would require *adding* layers back (CryptDB never re-wraps).
        """
        stack = ONION_STACKS[onion]
        if layer not in stack:
            raise OnionError(f"layer {layer.value} is not part of onion {onion.value}")
        current = self.current_layer(onion)
        current_index = stack.index(current)
        target_index = stack.index(layer)
        if target_index < current_index:
            raise OnionError(
                f"cannot re-wrap onion {onion.value} from {current.value} to {layer.value}"
            )
        if target_index > current_index:
            self.onions[onion] = layer
            return True
        return False

    def exposed_classes(self) -> frozenset[EncryptionClass]:
        """Encryption classes currently exposed to the service provider."""
        return frozenset(layer.encryption_class for layer in self.onions.values())

    def weakest_exposed_level(self, security_levels: dict[EncryptionClass, int]) -> int:
        """The minimum security level over all exposed layers.

        This is the effective security of the column: an attacker can always
        look at the weakest representation available server-side.
        """
        if not self.onions:
            raise OnionError("column has no onions")
        return min(security_levels[c] for c in self.exposed_classes())
