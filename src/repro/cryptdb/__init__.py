"""CryptDB-style encrypted query execution.

Table I of the paper delegates constant encryption for the query-result and
query-access-area distances to CryptDB [8].  This package implements the
relevant part of CryptDB from scratch on top of :mod:`repro.db` and
:mod:`repro.crypto`:

* *onions* — per-column stacks of property-preserving encryption layers
  (:mod:`repro.cryptdb.onion`),
* an *encrypted schema map* describing how plaintext tables/columns map to
  their encrypted counterparts (:mod:`repro.cryptdb.column`),
* a *query rewriter* that turns a plaintext query into an equivalent query
  over the encrypted database (:mod:`repro.cryptdb.rewriter`), and
* the *proxy* that encrypts databases, rewrites queries, executes them and
  decrypts results (:mod:`repro.cryptdb.proxy`).

The proxy also records which onion layers had to be exposed to support a
workload; the security-comparison experiment (S1) uses this to contrast
plain CryptDB with the paper's KIT-DPE schemes.
"""

from repro.cryptdb.column import ColumnEncryption, EncryptedColumn, EncryptedSchemaMap, EncryptedTable
from repro.cryptdb.onion import Onion, OnionLayer, OnionState
from repro.cryptdb.proxy import CryptDBProxy, EncryptedResult
from repro.cryptdb.rewriter import ConstantContext, ConstantPolicy, CryptDbConstantPolicy, QueryRewriter

__all__ = [
    "ColumnEncryption",
    "ConstantContext",
    "ConstantPolicy",
    "CryptDBProxy",
    "CryptDbConstantPolicy",
    "EncryptedColumn",
    "EncryptedResult",
    "EncryptedSchemaMap",
    "EncryptedTable",
    "Onion",
    "OnionLayer",
    "OnionState",
    "QueryRewriter",
]
