"""The CryptDB-style proxy and its batched sessions.

The proxy sits between the data owner and the (untrusted) service provider:

1. :meth:`CryptDBProxy.encrypt_database` produces the encrypted database that
   is shipped to the provider (columns are batch-encrypted column-wise),
   together with the schema map the owner keeps.
2. :meth:`CryptDBProxy.session` opens a :class:`ProxySession`: one rewriter
   plus one execution backend, so a whole workload is rewritten and executed
   in a single pass (``session.run(queries)``) with onion-state and exposure
   tracking threaded through.  Sessions choose their engine by backend name
   (see :mod:`repro.db.backend`): ``"memory"`` for the interpreter oracle,
   ``"sqlite"`` for workload-scale execution.
3. :meth:`CryptDBProxy.decrypt_result` maps an encrypted result back to
   plaintext values (done by the owner, or — for the paper's result-distance
   measure — *not* done at all: the provider computes Jaccard distances
   directly on the encrypted result tuples).

The single-query methods (:meth:`CryptDBProxy.encrypt_query`,
:meth:`CryptDBProxy.execute_encrypted`, :meth:`CryptDBProxy.execute`) remain
as thin wrappers over a cached default session.

The proxy also exposes :meth:`exposure_report`, which lists the encryption
class every column is exposed at after serving a workload; experiment S1
compares this against the class assignment of the paper's KIT-DPE schemes.
"""

from __future__ import annotations

import threading
import warnings
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.crypto.det import DeterministicScheme
from repro.crypto.hom import (
    NoiseRefillHandle,
    PaillierCiphertext,
    PaillierKeyPair,
    PaillierScheme,
)
from repro.crypto.integrity import ChainCheckpoint, ColumnAuthenticator, ColumnManifest
from repro.crypto.keys import KeyChain
from repro.crypto.ope import OrderPreservingScheme
from repro.crypto.prob import ProbabilisticScheme
from repro.crypto.taxonomy import SECURITY_LEVELS, EncryptionTaxonomy, default_taxonomy
from repro.cryptdb.column import (
    ColumnEncryption,
    EncryptedColumn,
    EncryptedSchemaMap,
    EncryptedTable,
    normalize_equality_value,
)
from repro.cryptdb.onion import Onion
from repro.cryptdb.rewriter import ConstantPolicy, QueryRewriter
from repro.db.aggregates import register_custom_aggregate
from repro.db.backend import DEFAULT_BACKEND, ExecutionBackend, create_backend
from repro.db.database import Database
from repro.db.executor import QueryExecutor, ResultSet
from repro.db.schema import Column, ColumnType, TableSchema
from repro.db.table import Table
from repro.exceptions import CryptDbError, IntegrityError, RewriteError
from repro.sql.ast import AggregateCall, ColumnRef, Literal, Query, SelectItem, Star, TableRef
from repro.sql.render import render_query

#: OPE domain used for (scaled) numeric columns.
_OPE_DOMAIN = (-(2**40), 2**40 - 1)
#: Fixed-point scale for REAL columns (two decimal digits).
_REAL_SCALE = 100


@runtime_checkable
class StreamSink(Protocol):
    """Anything that accepts appended batches of (encrypted) queries.

    The structural contract of :meth:`ProxySession.stream`'s ``into``
    parameter: an append-only receiver of query batches.  Both
    :class:`~repro.mining.incremental.StreamingQueryLog` and
    :class:`~repro.mining.incremental.IncrementalDistanceMatrix` satisfy it,
    so a session can stream rewritten queries either into a raw log or
    directly into an incrementally maintained mining matrix.  Keeping the
    protocol structural (rather than importing a mining class) preserves the
    layering: the proxy has no mining dependency.
    """

    def append(self, items: Iterable[Query]) -> object:
        """Accept one appended batch of queries."""
        ...


@runtime_checkable
class SessionDeadline(Protocol):
    """The structural deadline contract of the session execution paths.

    Anything with a ``check()`` that raises past its budget —
    :class:`repro.reliability.Deadline` in practice.  Sessions call it
    *between* queries (cooperative cancellation: an in-flight query is
    never preempted).  Structural for the same layering reason as
    :class:`StreamSink`: the proxy has no reliability dependency.
    """

    def check(self, context: str = "") -> None:
        """Raise when the deadline's budget is exhausted."""
        ...


def _warn_deprecated(old: str, replacement: str) -> None:
    """Emit the shim :class:`DeprecationWarning` pointing at ``repro.api``."""
    warnings.warn(
        f"{old} is deprecated; use {replacement} (see repro.api)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class JoinGroupSpec:
    """Columns that must share DET/OPE keys so they remain joinable."""

    name: str
    members: frozenset[tuple[str, str]]


@dataclass(frozen=True)
class _ColumnIntegrity:
    """Owner-side integrity record for one physical (encrypted) column."""

    plain_table: str
    plain_column: str
    onion: Onion
    authenticator: ColumnAuthenticator
    manifest: ColumnManifest


def _resolve_chain_sink(sink: object) -> object | None:
    """Find the hash-chained log behind a stream sink, if there is one.

    A :class:`~repro.mining.incremental.StreamingQueryLog` carries the chain
    itself; an :class:`~repro.mining.incremental.IncrementalDistanceMatrix`
    forwards appends to its ``stream``, an
    :class:`~repro.mining.approx.window.ApproxStreamMiner` to its
    ``window_log``.  The lookup stays structural
    (``checkpoint``/``verify_chain`` attributes) so the proxy keeps its
    no-mining-dependency layering.
    """
    for candidate in (sink, getattr(sink, "stream", None), getattr(sink, "window_log", None)):
        if (
            candidate is not None
            and hasattr(candidate, "checkpoint")
            and hasattr(candidate, "verify_chain")
        ):
            return candidate
    return None


@dataclass(frozen=True)
class EncryptedResult:
    """An encrypted result set together with the query that produced it."""

    plain_query: Query
    encrypted_query: Query
    result: ResultSet

    @property
    def encrypted_sql(self) -> str:
        """The encrypted query as SQL text (what the provider sees)."""
        return render_query(self.encrypted_query)


class ProxySession:
    """A batched proxy session: one rewriter, one execution backend.

    A session amortizes everything that is per-workload rather than
    per-query: the rewriter (whose onion adjustments accumulate across the
    workload), the execution backend (for SQLite, the one-time bulk load of
    the encrypted store), and the skip bookkeeping for queries outside the
    executable fragment.  ``session.run(queries)`` serves a whole workload in
    one pass; :attr:`adjustments` and :meth:`exposure_report` expose what the
    provider learned from serving it.

    Sessions are thread-safe: an internal re-entrant lock serializes the
    rewrite/execute/stream paths, so concurrent server threads sharing one
    tenant session observe the same rewriter adjustments, skip bookkeeping
    and backend state a single-threaded caller would.  (Cross-session
    parallelism is where multi-tenant throughput comes from; the lock only
    keeps a *shared* session from corrupting its per-workload state.)

    Sessions are context managers; closing releases the backend's engine
    resources.
    """

    def __init__(
        self,
        proxy: "CryptDBProxy",
        *,
        backend: str | None = None,
        on_unsupported: str = "raise",
        backend_wrapper: Callable[[ExecutionBackend], ExecutionBackend] | None = None,
    ) -> None:
        """Open a session over ``proxy``'s encrypted database.

        ``on_unsupported`` controls what happens to queries the rewriter
        rejects: ``"raise"`` propagates the :class:`RewriteError`, ``"skip"``
        records the query under :attr:`skipped` and carries on — the CryptDB
        behaviour of falling back to client-side evaluation.

        ``backend_wrapper`` (when given) wraps the freshly created backend
        before first use — the hook the reliability layer uses to apply a
        retrying wrapper without this module depending on it.
        """
        if on_unsupported not in ("raise", "skip"):
            raise CryptDbError(
                f"on_unsupported must be 'raise' or 'skip', got {on_unsupported!r}"
            )
        self._proxy = proxy
        self._on_unsupported = on_unsupported
        self._rewriter = proxy.make_rewriter()
        self._backend = create_backend(
            backend if backend is not None else proxy.backend_name,
            proxy.encrypted_database,
        )
        if backend_wrapper is not None:
            self._backend = backend_wrapper(self._backend)
        self._skipped: list[tuple[Query, str]] = []
        # Re-entrant so execute() -> rewrite() nests; serializes the
        # rewriter, skip list and backend against concurrent callers.
        self._lock = threading.RLock()
        self._pending_refill: NoiseRefillHandle | None = None
        self._storage_verified = False
        self._last_checkpoint: ChainCheckpoint | None = None

    # -- introspection -------------------------------------------------- #

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend serving this session."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Registry name of the session's backend."""
        return self._backend.name

    @property
    def adjustments(self) -> tuple[tuple[str, str, Onion, object], ...]:
        """Onion adjustments performed while rewriting this session's workload."""
        return tuple(self._rewriter.adjustments)

    @property
    def skipped(self) -> tuple[tuple[Query, str], ...]:
        """Queries skipped as unsupported, with the rewriter's reason."""
        return tuple(self._skipped)

    def exposure_report(self) -> dict[tuple[str, str], dict[str, object]]:
        """Per-column exposure after the workload served so far (all sessions)."""
        return self._proxy.exposure_report()

    def crypto_stats(self) -> dict[str, object]:
        """Fast-path statistics of the proxy's crypto layer (pool + caches)."""
        return self._proxy.crypto_stats()

    # -- execution ------------------------------------------------------ #

    @property
    def last_refill(self) -> NoiseRefillHandle | None:
        """Handle of the most recent background noise-pool refill, if any.

        Tests join it for determinism; :meth:`stream` checks it at the start
        of the next batch so a refill failure surfaces on the caller's thread.
        """
        with self._lock:
            return self._pending_refill

    def rewrite(self, query: Query) -> Query | None:
        """Rewrite one query; returns None for skipped unsupported queries."""
        with self._lock:
            try:
                return self._rewriter.rewrite(query)
            except RewriteError as error:
                if self._on_unsupported == "skip":
                    self._skipped.append((query, str(error)))
                    return None
                raise

    def execute(self, query: Query) -> EncryptedResult | None:
        """Rewrite and execute one plaintext query on the session backend."""
        with self._lock:
            self._ensure_storage_verified()
            encrypted_query = self.rewrite(query)
            if encrypted_query is None:
                return None
            return EncryptedResult(
                query, encrypted_query, self._backend.execute(encrypted_query)
            )

    def execute_encrypted(self, encrypted_query: Query) -> ResultSet:
        """Execute an already-rewritten query on the session backend."""
        with self._lock:
            self._ensure_storage_verified()
            return self._backend.execute(encrypted_query)

    def run(
        self, queries: Iterable[Query], *, deadline: SessionDeadline | None = None
    ) -> list[EncryptedResult]:
        """Serve a whole workload: rewrite and execute every query in order.

        Skipped queries (with ``on_unsupported="skip"``) are recorded under
        :attr:`skipped` and omitted from the returned results.  The whole
        workload runs under the session lock, so two threads running
        workloads on one session serve them in some serial order rather
        than interleaved per query.

        ``deadline`` (any :class:`SessionDeadline`) is checked before each
        query: cooperative cancellation between queries, never preemption of
        one in flight.
        """
        with self._lock:
            results: list[EncryptedResult] = []
            for query in queries:
                if deadline is not None:
                    deadline.check("run")
                result = self.execute(query)
                if result is not None:
                    results.append(result)
            return results

    def stream(
        self,
        queries: Iterable[Query],
        *,
        into: StreamSink,
        deadline: SessionDeadline | None = None,
    ) -> list[Query]:
        """Rewrite a batch and append the encrypted queries to a stream sink.

        ``into`` is any :class:`StreamSink` — typically a
        :class:`~repro.mining.incremental.StreamingQueryLog` feeding an
        :class:`~repro.mining.incremental.IncrementalDistanceMatrix` (or the
        incremental matrix itself, which forwards to its stream), so each
        streamed batch immediately extends the provider-side mining artefacts
        by the new pairs only.  The protocol is structural, keeping the proxy
        layer free of a mining dependency.  Queries the rewriter rejects
        follow the session's ``on_unsupported`` policy; the appended batch
        contains only the rewritten queries, which are also returned.

        Between batches the session refills the Paillier noise pool in a
        background thread (:meth:`~repro.crypto.hom.PaillierNoisePool.refill_async`).
        If the *previous* batch's refill died with an exception, this call
        re-raises it before doing any work — background failures surface on
        the streaming thread instead of being swallowed by the daemon
        thread.  The running handle is available as :attr:`last_refill` for
        deterministic ``join(timeout=...)`` in tests.

        ``deadline`` is checked before each query's rewrite and once more
        before the batch enters the sink, so an expired budget never
        half-publishes a batch: either the whole batch is appended or none
        of it is.
        """
        with self._lock:
            if self._pending_refill is not None and not self._pending_refill.is_alive():
                finished, self._pending_refill = self._pending_refill, None
                finished.raise_if_failed()
            encrypted: list[Query] = []
            for query in queries:
                if deadline is not None:
                    deadline.check("stream")
                rewritten = self.rewrite(query)
                if rewritten is not None:
                    encrypted.append(rewritten)
            if deadline is not None:
                deadline.check("stream")
            into.append(encrypted)
            if self._proxy.authenticate:
                # Commit to the sink's chain state after every appended
                # batch: a later verify_stream() detects a provider that
                # rolled the log back past this point.
                chained = _resolve_chain_sink(into)
                if chained is not None:
                    self._last_checkpoint = chained.checkpoint(self._proxy.checkpoint_key)
            # Regenerate Paillier blinding factors while the provider side
            # mines the appended batch, so the next batch's HOM constants
            # encrypt from a warm pool (one multiplication each).
            self._pending_refill = self._proxy.paillier_scheme.noise_pool.refill_async()
            return encrypted

    # -- integrity ------------------------------------------------------ #

    @property
    def last_checkpoint(self) -> ChainCheckpoint | None:
        """Signed chain checkpoint of the most recent streamed batch, if any."""
        with self._lock:
            return self._last_checkpoint

    def _ensure_storage_verified(self) -> None:
        """Run the one-time lazy storage audit when authentication is on."""
        if (
            self._proxy.authenticate
            and self._proxy.auto_verify
            and not self._storage_verified
        ):
            self.verify_storage()

    def verify_storage(self) -> int:
        """Audit every encrypted table as stored by this session's backend.

        Reads each table back through the backend itself (``SELECT *`` over
        the encrypted store) and checks every cell against the owner-side
        manifest's row-bound tags, so flipped bytes, swapped rows, replayed
        stale snapshots, and inserted/deleted rows are all detected
        regardless of which engine holds the data.  Returns the number of
        cells checked; raises :class:`~repro.exceptions.IntegrityError` on
        the first mismatch.  With ``auto_verify`` the audit runs lazily once
        per session before the first query; call this directly to re-audit
        at any later point.
        """
        with self._lock:
            checked = self._proxy.verify_backend_storage(self._backend)
            self._storage_verified = True
            return checked

    def verify_stream(self, into: StreamSink) -> ChainCheckpoint:
        """Verify a stream sink's log against the last signed checkpoint.

        Raises :class:`~repro.exceptions.IntegrityError` when the sink's log
        is not an exact prefix-extension of the state committed by the most
        recent streamed batch (a rolled-back or mutated provider log), and
        :class:`CryptDbError` when there is nothing to verify against.
        Returns the checkpoint that was verified.
        """
        with self._lock:
            if not self._proxy.authenticate:
                raise CryptDbError("stream verification requires authenticate=True")
            if self._last_checkpoint is None:
                raise CryptDbError("no streamed batch to verify: stream() first")
            chained = _resolve_chain_sink(into)
            if chained is None:
                raise CryptDbError(
                    f"stream sink {type(into).__name__} carries no hash chain"
                )
            chained.verify_chain(self._last_checkpoint, self._proxy.checkpoint_key)
            return self._last_checkpoint

    def close(self) -> None:
        """Release the backend's engine resources."""
        with self._lock:
            self._backend.close()

    def __enter__(self) -> "ProxySession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class CryptDBProxy:
    """Encrypts databases and queries, executes over ciphertexts, decrypts results."""

    def __init__(
        self,
        keychain: KeyChain,
        *,
        join_groups: Iterable[JoinGroupSpec] = (),
        paillier_keypair: PaillierKeyPair | None = None,
        paillier_bits: int = 512,
        paillier_pool_size: int = PaillierScheme.DEFAULT_POOL_SIZE,
        constant_policy: ConstantPolicy | None = None,
        taxonomy: EncryptionTaxonomy | None = None,
        shared_det_key: bool = False,
        backend: str = DEFAULT_BACKEND,
        authenticate: bool = False,
        auto_verify: bool = True,
    ) -> None:
        """Create a proxy.

        ``shared_det_key`` makes every column's EQ onion (and equality
        constants) use one shared DET key instead of per-column keys.  CryptDB
        itself uses per-column keys; the result-distance DPE scheme needs the
        shared key because Definition 1 compares result tuples *across*
        queries, so values that are equal as SQL values must encrypt equally
        regardless of which column they came from.  The trade-off (equality
        leakage across columns) is documented in DESIGN.md.

        ``backend`` names the default execution backend (see
        :mod:`repro.db.backend`) used by sessions that do not choose their
        own, and by the proxy's single-query convenience methods.

        ``paillier_pool_size`` sizes the HOM scheme's precomputed
        blinding-factor pool (see
        :class:`~repro.crypto.hom.PaillierNoisePool`); streaming sessions
        refill it in the background between batches.

        ``authenticate`` turns on the integrity layer: every
        :meth:`encrypt_database` builds an owner-side manifest of detached
        MACs (see :mod:`repro.crypto.integrity`) over all stored
        ciphertexts, result cells are checked on the decrypt path, sessions
        audit their backend's storage, and streamed batches are committed by
        signed hash-chain checkpoints.  The stored ciphertexts themselves
        are unchanged, so authenticated runs on honest providers are
        bit-for-bit identical to unauthenticated ones.  ``auto_verify``
        (default on) makes each session run its storage audit lazily once
        before its first query; turn it off to audit only on explicit
        :meth:`ProxySession.verify_storage` calls.
        """
        self._keychain = keychain
        self._join_groups = {group.name: group for group in join_groups}
        self._shared_det_key = shared_det_key
        self._taxonomy = taxonomy or default_taxonomy()
        self._constant_policy = constant_policy
        self._backend_name = backend
        self._relation_scheme = DeterministicScheme(keychain.relation_key())
        self._attribute_scheme = DeterministicScheme(keychain.attribute_key())
        self._paillier = PaillierScheme(
            paillier_keypair or PaillierKeyPair.generate(paillier_bits),
            pool_size=paillier_pool_size,
        )
        self._schema_map: EncryptedSchemaMap | None = None
        self._encrypted_db: Database | None = None
        self._plain_db: Database | None = None
        self._default_session: ProxySession | None = None
        # Guards the lazily created default session (check-then-create).
        self._session_lock = threading.Lock()
        self._authenticate = authenticate
        self._auto_verify = auto_verify
        # plain table name -> physical column name -> integrity record.
        self._integrity: dict[str, dict[str, _ColumnIntegrity]] = {}
        self._snapshot_version = 0
        self._integrity_counters: dict[tuple[str, str], dict[str, int]] = {}
        self._integrity_lock = threading.Lock()
        register_custom_aggregate("HOMSUM", self._homsum)

    # ------------------------------------------------------------------ #
    # database encryption

    @property
    def schema_map(self) -> EncryptedSchemaMap:
        """The schema map (available after :meth:`encrypt_database`)."""
        if self._schema_map is None:
            raise CryptDbError("encrypt_database() has not been called yet")
        return self._schema_map

    @property
    def encrypted_database(self) -> Database:
        """The encrypted database (available after :meth:`encrypt_database`)."""
        if self._encrypted_db is None:
            raise CryptDbError("encrypt_database() has not been called yet")
        return self._encrypted_db

    def encrypt_database(self, database: Database) -> Database:
        """Encrypt ``database`` and return the encrypted copy.

        Every table keeps its shape; per column the encrypted table carries
        one physical column per onion (EQ always; ORD and HOM for numeric
        columns).  Encryption runs *column-wise* through the schemes' batch
        hooks (:meth:`~repro.crypto.base.EncryptionScheme.encrypt_many`), so
        deterministic schemes pay for each distinct value once per column.
        NULLs remain NULL — like CryptDB, the layer leaks which cells are
        NULL, which none of the distance measures depends on.
        """
        schema_map = EncryptedSchemaMap()
        encrypted_db = Database(f"{database.name}_encrypted")
        self._snapshot_version += 1
        integrity: dict[str, dict[str, _ColumnIntegrity]] = {}

        for table in database:
            encrypted_table = self._encrypt_table_schema(table.schema)
            schema_map.add_table(encrypted_table)
            physical_schema = self._physical_schema(table.schema, encrypted_table)
            physical = encrypted_db.create_table(physical_schema)
            columns = self._encrypt_table_columns(table, encrypted_table)
            names = physical_schema.column_names
            physical.insert_many(
                {name: columns[name][index] for name in names} for index in range(len(table))
            )
            if self._authenticate:
                integrity[table.name] = self._build_table_manifest(
                    encrypted_table, columns
                )

        self._schema_map = schema_map
        self._encrypted_db = encrypted_db
        self._plain_db = database
        self._integrity = integrity
        with self._integrity_lock:
            self._integrity_counters = {}
        self._invalidate_default_session()
        return encrypted_db

    def _build_table_manifest(
        self, mapping: EncryptedTable, columns: dict[str, list[object]]
    ) -> dict[str, _ColumnIntegrity]:
        """Build owner-side detached MACs for every physical column of a table.

        Tags bind each stored cell to its row index and the current snapshot
        version, so a provider replaying an earlier snapshot (whose HOM
        blinding differs) or swapping rows fails the audit.  MAC keys are
        derived per (table, column, onion) through the keychain.
        """
        records: dict[str, _ColumnIntegrity] = {}
        for column in mapping.columns.values():
            for onion in column.onions:
                physical_name = column.physical_name(onion)
                authenticator = ColumnAuthenticator(
                    self._keychain.key_for(
                        "integrity", column.plain_table, column.plain_name, onion.value
                    )
                )
                records[physical_name] = _ColumnIntegrity(
                    plain_table=column.plain_table,
                    plain_column=column.plain_name,
                    onion=onion,
                    authenticator=authenticator,
                    manifest=authenticator.manifest(
                        columns[physical_name], self._snapshot_version
                    ),
                )
        return records

    def _join_group_for(self, table: str, column: str) -> JoinGroupSpec | None:
        for group in self._join_groups.values():
            if (table, column) in group.members:
                return group
        return None

    def _column_key_paths(
        self, table: str, column_name: str
    ) -> tuple[tuple[str, ...], tuple[str, ...], tuple[str, ...]]:
        """The keychain paths of one column's (det, ope, prob) keys."""
        group = self._join_group_for(table, column_name)
        if self._shared_det_key:
            det_path: tuple[str, ...] = ("shared-eq-onion",)
            ope_path: tuple[str, ...] = ("constants", table, column_name, "ope")
        elif group is not None:
            det_path = ("join-group", group.name)
            ope_path = ("join-group", group.name, "ope")
        else:
            det_path = ("constants", table, column_name, "det")
            ope_path = ("constants", table, column_name, "ope")
        return det_path, ope_path, ("constants", table, column_name, "prob")

    def _column_encryption(self, table: str, column: Column) -> ColumnEncryption:
        det_key, ope_key, prob_key = self._keychain.keys_for(
            self._column_key_paths(table, column.name)
        )
        det = DeterministicScheme(det_key)
        prob = ProbabilisticScheme(prob_key)
        ope = None
        hom = None
        scale = 1
        if column.type.is_numeric:
            scale = _REAL_SCALE if column.type is ColumnType.REAL else 1
            ope = OrderPreservingScheme(
                ope_key, domain_min=_OPE_DOMAIN[0], domain_max=_OPE_DOMAIN[1]
            )
            hom = self._paillier
        return ColumnEncryption(det=det, prob=prob, ope=ope, hom=hom, numeric_scale=scale)

    def _encrypt_table_schema(self, schema: TableSchema) -> EncryptedTable:
        encrypted_name = self._relation_scheme.encrypt_identifier(schema.name)
        encrypted_table = EncryptedTable(schema.name, encrypted_name)
        # Warm the keychain cache with every per-column key up front; the
        # per-column loop below then only does cache lookups.
        self._keychain.keys_for(
            path
            for column in schema.columns
            for path in self._column_key_paths(schema.name, column.name)
        )
        for column in schema.columns:
            onions: tuple[Onion, ...] = (Onion.EQ,)
            if column.type.is_numeric:
                onions = (Onion.EQ, Onion.ORD, Onion.HOM)
            encrypted_column = EncryptedColumn(
                plain_table=schema.name,
                plain_name=column.name,
                encrypted_name=self._attribute_scheme.encrypt_identifier(column.name),
                column_type=column.type,
                onions=onions,
                encryption=self._column_encryption(schema.name, column),
            )
            encrypted_table.columns[column.name] = encrypted_column
        return encrypted_table

    def _physical_schema(self, schema: TableSchema, mapping: EncryptedTable) -> TableSchema:
        columns: list[Column] = []
        for column in schema.columns:
            encrypted = mapping.column(column.name)
            columns.append(Column(encrypted.physical_name(Onion.EQ), ColumnType.TEXT))
            if encrypted.has_onion(Onion.ORD):
                columns.append(Column(encrypted.physical_name(Onion.ORD), ColumnType.INTEGER))
            if encrypted.has_onion(Onion.HOM):
                columns.append(Column(encrypted.physical_name(Onion.HOM), ColumnType.INTEGER))
        return TableSchema(mapping.encrypted_name, columns)

    def _encrypt_table_columns(
        self, table: Table, mapping: EncryptedTable
    ) -> dict[str, list[object]]:
        """Encrypt one table column-wise: physical column name -> cell values."""
        columns: dict[str, list[object]] = {}
        for column in table.schema.columns:
            encrypted = mapping.column(column.name)
            values = table.column_values(column.name)
            det = encrypted.encryption.det
            columns[encrypted.physical_name(Onion.EQ)] = _encrypt_column(
                values,
                lambda batch: det.encrypt_many(
                    [normalize_equality_value(value) for value in batch]  # type: ignore[list-item]
                ),
            )
            if encrypted.has_onion(Onion.ORD):
                ope = encrypted.encryption.ope
                columns[encrypted.physical_name(Onion.ORD)] = _encrypt_column(
                    values,
                    lambda batch: ope.encrypt_many(  # type: ignore[union-attr]
                        [encrypted.encode_numeric(value) for value in batch]
                    ),
                )
            if encrypted.has_onion(Onion.HOM):
                columns[encrypted.physical_name(Onion.HOM)] = _encrypt_column(
                    values,
                    lambda batch: [
                        ciphertext.value for ciphertext in self._paillier.encrypt_many(batch)  # type: ignore[arg-type]
                    ],
                )
        return columns

    # ------------------------------------------------------------------ #
    # query processing

    @property
    def backend_name(self) -> str:
        """Name of the default execution backend for this proxy's sessions."""
        return self._backend_name

    def make_rewriter(self, *, projection_onion: Onion = Onion.EQ) -> QueryRewriter:
        """Create a fresh rewriter bound to the current schema map."""
        return QueryRewriter(
            self.schema_map,
            self._relation_scheme,
            constant_policy=self._constant_policy,
            projection_onion=projection_onion,
        )

    def session(
        self,
        *,
        backend: str | None = None,
        on_unsupported: str = "raise",
        backend_wrapper: Callable[[ExecutionBackend], ExecutionBackend] | None = None,
    ) -> ProxySession:
        """Open a batched :class:`ProxySession` over the encrypted database."""
        return ProxySession(
            self,
            backend=backend,
            on_unsupported=on_unsupported,
            backend_wrapper=backend_wrapper,
        )

    def _invalidate_default_session(self) -> None:
        with self._session_lock:
            if self._default_session is not None:
                self._default_session.close()
                self._default_session = None

    def _session(self) -> ProxySession:
        """The cached default session backing the single-query methods."""
        with self._session_lock:
            if self._default_session is None:
                self._default_session = self.session()
            return self._default_session

    def encrypt_query(self, query: Query) -> Query:
        """Rewrite a plaintext query (deprecated single-query entry point).

        .. deprecated::
            Use :meth:`session` /
            :class:`repro.api.EncryptedMiningService` instead; the batched
            paths amortize the rewriter across a workload.  This shim is
            bit-for-bit equivalent (one fresh rewriter per call).
        """
        _warn_deprecated(
            "CryptDBProxy.encrypt_query()",
            "CryptDBProxy.session() or EncryptedMiningService.run_workload()",
        )
        return self.rewrite_query(query)

    def rewrite_query(self, query: Query) -> Query:
        """Rewrite one query with a fresh rewriter (the single-rewrite primitive).

        The warning-free building block the deprecated :meth:`encrypt_query`
        shim and internal callers (e.g. the result-distance DPE scheme)
        share; workloads should prefer a :meth:`session`, which amortizes
        one rewriter across every query.
        """
        return self.make_rewriter().rewrite(query)

    def execute_encrypted(self, encrypted_query: Query) -> ResultSet:
        """Execute an already-rewritten query (deprecated single-query entry point).

        .. deprecated::
            Use :meth:`session` /
            :class:`repro.api.EncryptedMiningService` instead.  This shim
            delegates to the proxy's cached default session.
        """
        _warn_deprecated(
            "CryptDBProxy.execute_encrypted()",
            "ProxySession.execute_encrypted() or EncryptedMiningService.open_session()",
        )
        return self._session().execute_encrypted(encrypted_query)

    def execute(self, query: Query) -> EncryptedResult:
        """Rewrite and execute one query (deprecated single-query entry point).

        .. deprecated::
            Use :meth:`session` /
            :class:`repro.api.EncryptedMiningService` instead.  This shim
            delegates to the proxy's cached default session and returns the
            same :class:`EncryptedResult` the batched path produces.
        """
        _warn_deprecated(
            "CryptDBProxy.execute()",
            "ProxySession.execute() or EncryptedMiningService.run_workload()",
        )
        encrypted_query = self.rewrite_query(query)
        result = self._session().execute_encrypted(encrypted_query)
        return EncryptedResult(query, encrypted_query, result)

    def execute_plain(self, query: Query) -> ResultSet:
        """Execute ``query`` over the plaintext database (owner-side reference)."""
        if self._plain_db is None:
            raise CryptDbError("encrypt_database() has not been called yet")
        return QueryExecutor(self._plain_db).execute(query)

    def decrypt_result(self, encrypted: EncryptedResult) -> ResultSet:
        """Decrypt an encrypted result back to plaintext values.

        Result columns are mapped positionally to the select items of the
        plaintext query: DET ciphertexts from projections are decrypted with
        the owning column's DET scheme, COUNT values pass through, MIN/MAX
        come back through OPE, and HOMSUM values are Paillier-decrypted.
        """
        plain_query = encrypted.plain_query
        bindings = {ref.binding_name: ref.name for ref in plain_query.tables()}
        decrypted_rows: list[tuple[object, ...]] = []
        columns = tuple(_plain_column_name(item, idx) for idx, item in enumerate(plain_query.select_items))
        for row in encrypted.result.rows:
            decrypted_rows.append(
                tuple(
                    self._decrypt_cell(value, item.expression, bindings)
                    for value, item in zip(row, plain_query.select_items)
                )
            )
        return ResultSet(columns, tuple(decrypted_rows))

    def _decrypt_cell(self, value: object, expression, bindings: dict[str, str]) -> object:
        if value is None:
            return None
        if isinstance(expression, ColumnRef):
            column = self._resolve_plain_column(expression, bindings)
            self._verify_result_cell(column, Onion.EQ, value)
            return column.encryption.det.decrypt(value)
        if isinstance(expression, AggregateCall):
            if isinstance(expression.argument, ColumnRef):
                column = self._resolve_plain_column(expression.argument, bindings)
            else:
                column = None
            if expression.function == "COUNT":
                return value
            if expression.function in ("MIN", "MAX"):
                if column is None or column.encryption.ope is None:
                    raise CryptDbError("cannot decrypt MIN/MAX result without an ORD onion")
                self._verify_result_cell(column, Onion.ORD, value)
                plain = column.encryption.ope.decrypt(value)  # type: ignore[arg-type]
                return _unscale(plain, column.encryption.numeric_scale)
            if expression.function in ("SUM", "AVG"):
                ciphertext = PaillierCiphertext(value, self._paillier.public_key)  # type: ignore[arg-type]
                return self._paillier.decode_sum(ciphertext)
            raise CryptDbError(f"cannot decrypt aggregate {expression.function}")
        if isinstance(expression, Literal):
            return expression.value
        raise CryptDbError(f"cannot decrypt result column for {type(expression).__name__}")

    def _resolve_plain_column(self, ref: ColumnRef, bindings: dict[str, str]) -> EncryptedColumn:
        if ref.table is not None:
            table = bindings.get(ref.table, ref.table)
            return self.schema_map.column(table, ref.name)
        return self.schema_map.find_column(ref.name, tuple(bindings.values()))

    # ------------------------------------------------------------------ #
    # aggregation plumbing and reporting

    def _homsum(self, values: list[object]) -> object:
        """Custom aggregate: homomorphic sum of stored Paillier ciphertext values."""
        if not values:
            return None
        n_squared = self._paillier.public_key.n_squared
        product = 1
        for value in values:
            if not isinstance(value, int):
                raise RewriteError(f"HOMSUM expects Paillier ciphertext integers, got {value!r}")
            product = (product * value) % n_squared
        return product

    @property
    def paillier_scheme(self) -> PaillierScheme:
        """The proxy's shared HOM (Paillier) scheme instance."""
        return self._paillier

    # ------------------------------------------------------------------ #
    # integrity: detached-MAC verification and log checkpoints

    @property
    def authenticate(self) -> bool:
        """Whether the integrity layer (detached MACs + log chain) is on."""
        return self._authenticate

    @property
    def auto_verify(self) -> bool:
        """Whether sessions lazily audit their backend before the first query."""
        return self._auto_verify

    @property
    def snapshot_version(self) -> int:
        """Monotonic counter of :meth:`encrypt_database` snapshots."""
        return self._snapshot_version

    @property
    def checkpoint_key(self) -> bytes:
        """The owner's HMAC key for signing log-chain checkpoints."""
        return self._keychain.key_for("integrity", "checkpoint")

    def _count_integrity(
        self, table: str, column: str, *, verified: int = 0, tampered: int = 0
    ) -> None:
        with self._integrity_lock:
            entry = self._integrity_counters.setdefault(
                (table, column), {"cells_verified": 0, "tamper_detected": 0}
            )
            entry["cells_verified"] += verified
            entry["tamper_detected"] += tampered

    def integrity_counters(self) -> dict[tuple[str, str], dict[str, int]]:
        """Per-column integrity counters: cells verified and tampers detected."""
        with self._integrity_lock:
            return {key: dict(entry) for key, entry in self._integrity_counters.items()}

    def _verify_result_cell(self, column: EncryptedColumn, onion: Onion, value: object) -> None:
        """Check one decrypted result cell against the column's tag set.

        Result cells carry no row identity, so membership in the column's
        position-independent value-tag set is the strongest available check:
        it catches flipped bytes and values replayed from a different
        snapshot in O(1) per cell.  Row swaps (legitimate values in wrong
        positions) are the storage audit's job.
        """
        if not self._authenticate:
            return
        record = self._integrity.get(column.plain_table, {}).get(
            column.physical_name(onion)
        )
        if record is None:
            return
        tag = record.authenticator.value_tag(value)  # type: ignore[arg-type]
        if tag in record.manifest.value_tags:
            self._count_integrity(column.plain_table, column.plain_name, verified=1)
            return
        self._count_integrity(column.plain_table, column.plain_name, tampered=1)
        raise IntegrityError(
            f"result cell failed authentication for {column.plain_table}."
            f"{column.plain_name} ({onion.value} onion): "
            "ciphertext is not among the values the owner stored"
        )

    def verify_backend_storage(self, backend: ExecutionBackend) -> int:
        """Audit every encrypted table as served by ``backend``.

        Reads each table back through ``backend.execute`` (a ``SELECT *``
        built directly on the AST, so the audit path is identical for the
        interpreter and SQLite engines) and recomputes every cell's
        row-bound tag against the owner-side manifest.  Detects flipped
        ciphertext bytes, swapped rows, replayed stale snapshots and
        inserted/deleted rows; raises
        :class:`~repro.exceptions.IntegrityError` on the first mismatch and
        returns the number of cells checked otherwise.
        """
        if not self._authenticate:
            raise CryptDbError("storage verification requires authenticate=True")
        checked = 0
        for plain_table, records in self._integrity.items():
            encrypted_name = self.schema_map.table(plain_table).encrypted_name
            audit_query = Query(
                select_items=(SelectItem(Star()),),
                from_table=TableRef(encrypted_name),
            )
            result = backend.execute(audit_query)
            expected_rows = len(next(iter(records.values())).manifest.row_tags) if records else 0
            if len(result.rows) != expected_rows:
                raise IntegrityError(
                    f"table {plain_table!r} failed authentication: backend holds "
                    f"{len(result.rows)} rows, the owner stored {expected_rows}"
                )
            for physical_name, record in records.items():
                column_index = result.columns.index(physical_name)
                manifest = record.manifest
                authenticator = record.authenticator
                for row_index, row in enumerate(result.rows):
                    tag = authenticator.row_tag(
                        row_index, manifest.version, row[column_index]  # type: ignore[arg-type]
                    )
                    if tag != manifest.row_tags[row_index]:
                        self._count_integrity(
                            record.plain_table, record.plain_column, tampered=1
                        )
                        raise IntegrityError(
                            f"stored cell failed authentication: "
                            f"{record.plain_table}.{record.plain_column} "
                            f"({record.onion.value} onion), row {row_index} — "
                            "flipped, swapped or replayed by the provider"
                        )
                checked += len(result.rows)
                self._count_integrity(
                    record.plain_table, record.plain_column, verified=len(result.rows)
                )
        return checked

    def crypto_stats(self) -> dict[str, object]:
        """Aggregate fast-path statistics of the crypto layer.

        Returns the Paillier noise-pool counters plus the OPE descent-node
        cache totals summed over every ORD-capable column of the encrypted
        schema — the numbers that show whether the batch/precompute fast
        paths actually carried the workload.
        """
        stats: dict[str, object] = {"paillier": self._paillier.fast_path_stats()}
        ope_totals = {"nodes": 0, "hits": 0, "misses": 0}
        columns = 0
        if self._schema_map is not None:
            for column in self._schema_map.all_columns():
                ope = column.encryption.ope
                if ope is None:
                    continue
                columns += 1
                cache = ope.cache_stats()
                for key in ope_totals:
                    ope_totals[key] += int(cache[key])
        lookups = ope_totals["hits"] + ope_totals["misses"]
        stats["ope"] = {
            "columns": columns,
            **ope_totals,
            "hit_rate": ope_totals["hits"] / lookups if lookups else 0.0,
        }
        return stats

    def exposure_report(self) -> dict[tuple[str, str], dict[str, object]]:
        """Per-column exposure after serving the workload rewritten so far.

        Returns a mapping ``(table, column) -> {"onions": {onion: layer},
        "weakest_class": EncryptionClass, "security_level": int,
        "cells_verified": int, "tamper_detected": int}`` describing what the
        service provider can see for each column, plus the integrity layer's
        per-column counters (both zero when ``authenticate`` is off).
        """
        from repro.crypto.taxonomy import REVEALED_CAPABILITIES

        counters = self.integrity_counters()
        report: dict[tuple[str, str], dict[str, object]] = {}
        for column in self.schema_map.all_columns():
            exposed = column.state.exposed_classes()
            # The weakest exposure is the representation revealing the most:
            # lowest Figure 1 level first, largest revealed-capability set as
            # the tie-break (HOM reveals more than PROB on the same level).
            weakest = max(
                exposed,
                key=lambda c: (-SECURITY_LEVELS[c], len(REVEALED_CAPABILITIES[c]), c.value),
            )
            counter = counters.get(
                (column.plain_table, column.plain_name),
                {"cells_verified": 0, "tamper_detected": 0},
            )
            report[(column.plain_table, column.plain_name)] = {
                "onions": {
                    onion.value: layer.value for onion, layer in column.state.onions.items()
                },
                "weakest_class": weakest,
                "security_level": SECURITY_LEVELS[weakest],
                "cells_verified": counter["cells_verified"],
                "tamper_detected": counter["tamper_detected"],
            }
        return report


def _encrypt_column(
    values: Sequence[object], transform: Callable[[list[object]], list[object]]
) -> list[object]:
    """Batch-encrypt one column's cells, passing NULLs through untouched."""
    present = [index for index, value in enumerate(values) if value is not None]
    encrypted = transform([values[index] for index in present])
    cells: list[object] = [None] * len(values)
    for index, ciphertext in zip(present, encrypted):
        cells[index] = ciphertext
    return cells


def _plain_column_name(item, index: int) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expression, ColumnRef):
        return item.expression.name
    from repro.sql.render import render_expression

    return render_expression(item.expression)


def _unscale(value: int, scale: int) -> int | float:
    if scale == 1:
        return value
    return value / scale
