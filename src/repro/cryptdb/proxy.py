"""The CryptDB-style proxy.

The proxy sits between the data owner and the (untrusted) service provider:

1. :meth:`CryptDBProxy.encrypt_database` produces the encrypted database that
   is shipped to the provider, together with the schema map the owner keeps.
2. :meth:`CryptDBProxy.encrypt_query` rewrites a plaintext query into an
   executable query over the encrypted database.
3. :meth:`CryptDBProxy.execute_encrypted` runs the rewritten query on the
   encrypted database (this is what the provider does).
4. :meth:`CryptDBProxy.decrypt_result` maps an encrypted result back to
   plaintext values (done by the owner, or — for the paper's result-distance
   measure — *not* done at all: the provider computes Jaccard distances
   directly on the encrypted result tuples).

The proxy also exposes :meth:`exposure_report`, which lists the encryption
class every column is exposed at after serving a workload; experiment S1
compares this against the class assignment of the paper's KIT-DPE schemes.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.crypto.det import DeterministicScheme
from repro.crypto.hom import PaillierCiphertext, PaillierKeyPair, PaillierScheme
from repro.crypto.keys import KeyChain
from repro.crypto.ope import OrderPreservingScheme
from repro.crypto.prob import ProbabilisticScheme
from repro.crypto.taxonomy import SECURITY_LEVELS, EncryptionTaxonomy, default_taxonomy
from repro.cryptdb.column import (
    ColumnEncryption,
    EncryptedColumn,
    EncryptedSchemaMap,
    EncryptedTable,
)
from repro.cryptdb.onion import Onion
from repro.cryptdb.rewriter import ConstantPolicy, QueryRewriter
from repro.db.aggregates import register_custom_aggregate
from repro.db.database import Database
from repro.db.executor import QueryExecutor, ResultSet
from repro.db.schema import Column, ColumnType, TableSchema
from repro.exceptions import CryptDbError, RewriteError
from repro.sql.ast import AggregateCall, ColumnRef, Literal, Query
from repro.sql.render import render_query

#: OPE domain used for (scaled) numeric columns.
_OPE_DOMAIN = (-(2**40), 2**40 - 1)
#: Fixed-point scale for REAL columns (two decimal digits).
_REAL_SCALE = 100


@dataclass(frozen=True)
class JoinGroupSpec:
    """Columns that must share DET/OPE keys so they remain joinable."""

    name: str
    members: frozenset[tuple[str, str]]


@dataclass(frozen=True)
class EncryptedResult:
    """An encrypted result set together with the query that produced it."""

    plain_query: Query
    encrypted_query: Query
    result: ResultSet

    @property
    def encrypted_sql(self) -> str:
        """The encrypted query as SQL text (what the provider sees)."""
        return render_query(self.encrypted_query)


class CryptDBProxy:
    """Encrypts databases and queries, executes over ciphertexts, decrypts results."""

    def __init__(
        self,
        keychain: KeyChain,
        *,
        join_groups: Iterable[JoinGroupSpec] = (),
        paillier_keypair: PaillierKeyPair | None = None,
        paillier_bits: int = 512,
        constant_policy: ConstantPolicy | None = None,
        taxonomy: EncryptionTaxonomy | None = None,
        shared_det_key: bool = False,
    ) -> None:
        """Create a proxy.

        ``shared_det_key`` makes every column's EQ onion (and equality
        constants) use one shared DET key instead of per-column keys.  CryptDB
        itself uses per-column keys; the result-distance DPE scheme needs the
        shared key because Definition 1 compares result tuples *across*
        queries, so values that are equal as SQL values must encrypt equally
        regardless of which column they came from.  The trade-off (equality
        leakage across columns) is documented in DESIGN.md.
        """
        self._keychain = keychain
        self._join_groups = {group.name: group for group in join_groups}
        self._shared_det_key = shared_det_key
        self._taxonomy = taxonomy or default_taxonomy()
        self._constant_policy = constant_policy
        self._relation_scheme = DeterministicScheme(keychain.relation_key())
        self._attribute_scheme = DeterministicScheme(keychain.attribute_key())
        self._paillier = PaillierScheme(
            paillier_keypair or PaillierKeyPair.generate(paillier_bits)
        )
        self._schema_map: EncryptedSchemaMap | None = None
        self._encrypted_db: Database | None = None
        self._plain_db: Database | None = None
        register_custom_aggregate("HOMSUM", self._homsum)

    # ------------------------------------------------------------------ #
    # database encryption

    @property
    def schema_map(self) -> EncryptedSchemaMap:
        """The schema map (available after :meth:`encrypt_database`)."""
        if self._schema_map is None:
            raise CryptDbError("encrypt_database() has not been called yet")
        return self._schema_map

    @property
    def encrypted_database(self) -> Database:
        """The encrypted database (available after :meth:`encrypt_database`)."""
        if self._encrypted_db is None:
            raise CryptDbError("encrypt_database() has not been called yet")
        return self._encrypted_db

    def encrypt_database(self, database: Database) -> Database:
        """Encrypt ``database`` and return the encrypted copy.

        Every table keeps its shape; per column the encrypted table carries
        one physical column per onion (EQ always; ORD and HOM for numeric
        columns).  NULLs remain NULL — like CryptDB, the layer leaks which
        cells are NULL, which none of the distance measures depends on.
        """
        schema_map = EncryptedSchemaMap()
        encrypted_db = Database(f"{database.name}_encrypted")

        for table in database:
            encrypted_table = self._encrypt_table_schema(table.schema)
            schema_map.add_table(encrypted_table)
            physical_schema = self._physical_schema(table.schema, encrypted_table)
            physical = encrypted_db.create_table(physical_schema)
            for row in table:
                physical.insert(self._encrypt_row(row.as_dict(), table.schema, encrypted_table))

        self._schema_map = schema_map
        self._encrypted_db = encrypted_db
        self._plain_db = database
        return encrypted_db

    def _join_group_for(self, table: str, column: str) -> JoinGroupSpec | None:
        for group in self._join_groups.values():
            if (table, column) in group.members:
                return group
        return None

    def _column_encryption(self, table: str, column: Column) -> ColumnEncryption:
        group = self._join_group_for(table, column.name)
        if self._shared_det_key:
            det_key = self._keychain.key_for("shared-eq-onion")
            ope_key = self._keychain.constant_key(table, column.name, "ope")
        elif group is not None:
            det_key = self._keychain.join_key(group.name)
            ope_key = self._keychain.key_for("join-group", group.name, "ope")
        else:
            det_key = self._keychain.constant_key(table, column.name, "det")
            ope_key = self._keychain.constant_key(table, column.name, "ope")
        prob_key = self._keychain.constant_key(table, column.name, "prob")

        det = DeterministicScheme(det_key)
        prob = ProbabilisticScheme(prob_key)
        ope = None
        hom = None
        scale = 1
        if column.type.is_numeric:
            scale = _REAL_SCALE if column.type is ColumnType.REAL else 1
            ope = OrderPreservingScheme(
                ope_key, domain_min=_OPE_DOMAIN[0], domain_max=_OPE_DOMAIN[1]
            )
            hom = self._paillier
        return ColumnEncryption(det=det, prob=prob, ope=ope, hom=hom, numeric_scale=scale)

    def _encrypt_table_schema(self, schema: TableSchema) -> EncryptedTable:
        encrypted_name = self._relation_scheme.encrypt_identifier(schema.name)
        encrypted_table = EncryptedTable(schema.name, encrypted_name)
        for column in schema.columns:
            onions: tuple[Onion, ...] = (Onion.EQ,)
            if column.type.is_numeric:
                onions = (Onion.EQ, Onion.ORD, Onion.HOM)
            encrypted_column = EncryptedColumn(
                plain_table=schema.name,
                plain_name=column.name,
                encrypted_name=self._attribute_scheme.encrypt_identifier(column.name),
                column_type=column.type,
                onions=onions,
                encryption=self._column_encryption(schema.name, column),
            )
            encrypted_table.columns[column.name] = encrypted_column
        return encrypted_table

    def _physical_schema(self, schema: TableSchema, mapping: EncryptedTable) -> TableSchema:
        columns: list[Column] = []
        for column in schema.columns:
            encrypted = mapping.column(column.name)
            columns.append(Column(encrypted.physical_name(Onion.EQ), ColumnType.TEXT))
            if encrypted.has_onion(Onion.ORD):
                columns.append(Column(encrypted.physical_name(Onion.ORD), ColumnType.INTEGER))
            if encrypted.has_onion(Onion.HOM):
                columns.append(Column(encrypted.physical_name(Onion.HOM), ColumnType.INTEGER))
        return TableSchema(mapping.encrypted_name, columns)

    def _encrypt_row(
        self, row: dict[str, object], schema: TableSchema, mapping: EncryptedTable
    ) -> dict[str, object]:
        encrypted_row: dict[str, object] = {}
        for column in schema.columns:
            encrypted = mapping.column(column.name)
            value = row[column.name]
            if value is None:
                encrypted_row[encrypted.physical_name(Onion.EQ)] = None
                if encrypted.has_onion(Onion.ORD):
                    encrypted_row[encrypted.physical_name(Onion.ORD)] = None
                if encrypted.has_onion(Onion.HOM):
                    encrypted_row[encrypted.physical_name(Onion.HOM)] = None
                continue
            from repro.cryptdb.column import normalize_equality_value

            encrypted_row[encrypted.physical_name(Onion.EQ)] = encrypted.encryption.det.encrypt(
                normalize_equality_value(value)  # type: ignore[arg-type]
            )
            if encrypted.has_onion(Onion.ORD):
                scaled = encrypted.encode_numeric(value)
                encrypted_row[encrypted.physical_name(Onion.ORD)] = (
                    encrypted.encryption.ope.encrypt(scaled)  # type: ignore[union-attr]
                )
            if encrypted.has_onion(Onion.HOM):
                ciphertext = self._paillier.encrypt(value)  # type: ignore[arg-type]
                encrypted_row[encrypted.physical_name(Onion.HOM)] = ciphertext.value
        return encrypted_row

    # ------------------------------------------------------------------ #
    # query processing

    def make_rewriter(self, *, projection_onion: Onion = Onion.EQ) -> QueryRewriter:
        """Create a fresh rewriter bound to the current schema map."""
        return QueryRewriter(
            self.schema_map,
            self._relation_scheme,
            constant_policy=self._constant_policy,
            projection_onion=projection_onion,
        )

    def encrypt_query(self, query: Query) -> Query:
        """Rewrite a plaintext query for execution over the encrypted database."""
        return self.make_rewriter().rewrite(query)

    def execute_encrypted(self, encrypted_query: Query) -> ResultSet:
        """Execute an (already rewritten) query over the encrypted database."""
        executor = QueryExecutor(self.encrypted_database)
        return executor.execute(encrypted_query)

    def execute(self, query: Query) -> EncryptedResult:
        """Rewrite and execute ``query``; returns the encrypted result."""
        encrypted_query = self.encrypt_query(query)
        result = self.execute_encrypted(encrypted_query)
        return EncryptedResult(query, encrypted_query, result)

    def execute_plain(self, query: Query) -> ResultSet:
        """Execute ``query`` over the plaintext database (owner-side reference)."""
        if self._plain_db is None:
            raise CryptDbError("encrypt_database() has not been called yet")
        return QueryExecutor(self._plain_db).execute(query)

    def decrypt_result(self, encrypted: EncryptedResult) -> ResultSet:
        """Decrypt an encrypted result back to plaintext values.

        Result columns are mapped positionally to the select items of the
        plaintext query: DET ciphertexts from projections are decrypted with
        the owning column's DET scheme, COUNT values pass through, MIN/MAX
        come back through OPE, and HOMSUM values are Paillier-decrypted.
        """
        plain_query = encrypted.plain_query
        bindings = {ref.binding_name: ref.name for ref in plain_query.tables()}
        decrypted_rows: list[tuple[object, ...]] = []
        columns = tuple(_plain_column_name(item, idx) for idx, item in enumerate(plain_query.select_items))
        for row in encrypted.result.rows:
            decrypted_rows.append(
                tuple(
                    self._decrypt_cell(value, item.expression, bindings)
                    for value, item in zip(row, plain_query.select_items)
                )
            )
        return ResultSet(columns, tuple(decrypted_rows))

    def _decrypt_cell(self, value: object, expression, bindings: dict[str, str]) -> object:
        if value is None:
            return None
        if isinstance(expression, ColumnRef):
            column = self._resolve_plain_column(expression, bindings)
            return column.encryption.det.decrypt(value)
        if isinstance(expression, AggregateCall):
            if isinstance(expression.argument, ColumnRef):
                column = self._resolve_plain_column(expression.argument, bindings)
            else:
                column = None
            if expression.function == "COUNT":
                return value
            if expression.function in ("MIN", "MAX"):
                if column is None or column.encryption.ope is None:
                    raise CryptDbError("cannot decrypt MIN/MAX result without an ORD onion")
                plain = column.encryption.ope.decrypt(value)  # type: ignore[arg-type]
                return _unscale(plain, column.encryption.numeric_scale)
            if expression.function in ("SUM", "AVG"):
                ciphertext = PaillierCiphertext(value, self._paillier.public_key)  # type: ignore[arg-type]
                return self._paillier.decode_sum(ciphertext)
            raise CryptDbError(f"cannot decrypt aggregate {expression.function}")
        if isinstance(expression, Literal):
            return expression.value
        raise CryptDbError(f"cannot decrypt result column for {type(expression).__name__}")

    def _resolve_plain_column(self, ref: ColumnRef, bindings: dict[str, str]) -> EncryptedColumn:
        if ref.table is not None:
            table = bindings.get(ref.table, ref.table)
            return self.schema_map.column(table, ref.name)
        return self.schema_map.find_column(ref.name, tuple(bindings.values()))

    # ------------------------------------------------------------------ #
    # aggregation plumbing and reporting

    def _homsum(self, values: list[object]) -> object:
        """Custom aggregate: homomorphic sum of stored Paillier ciphertext values."""
        if not values:
            return None
        n_squared = self._paillier.public_key.n_squared
        product = 1
        for value in values:
            if not isinstance(value, int):
                raise RewriteError(f"HOMSUM expects Paillier ciphertext integers, got {value!r}")
            product = (product * value) % n_squared
        return product

    def exposure_report(self) -> dict[tuple[str, str], dict[str, object]]:
        """Per-column exposure after serving the workload rewritten so far.

        Returns a mapping ``(table, column) -> {"onions": {onion: layer},
        "weakest_class": EncryptionClass, "security_level": int}`` describing
        what the service provider can see for each column.
        """
        from repro.crypto.taxonomy import REVEALED_CAPABILITIES

        report: dict[tuple[str, str], dict[str, object]] = {}
        for column in self.schema_map.all_columns():
            exposed = column.state.exposed_classes()
            # The weakest exposure is the representation revealing the most:
            # lowest Figure 1 level first, largest revealed-capability set as
            # the tie-break (HOM reveals more than PROB on the same level).
            weakest = max(
                exposed,
                key=lambda c: (-SECURITY_LEVELS[c], len(REVEALED_CAPABILITIES[c]), c.value),
            )
            report[(column.plain_table, column.plain_name)] = {
                "onions": {
                    onion.value: layer.value for onion, layer in column.state.onions.items()
                },
                "weakest_class": weakest,
                "security_level": SECURITY_LEVELS[weakest],
            }
        return report


def _plain_column_name(item, index: int) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expression, ColumnRef):
        return item.expression.name
    from repro.sql.render import render_expression

    return render_expression(item.expression)


def _unscale(value: int, scale: int) -> int | float:
    if scale == 1:
        return value
    return value / scale
