"""Encrypted schema map: how plaintext tables/columns map to encrypted ones.

The encrypted database mirrors the plaintext schema one-to-one: each table
becomes one encrypted table (name DET-encrypted), and each column becomes one
or more *physical* columns — one per onion the column carries:

==============  =======================  =========================
onion           physical column name      value stored
==============  =======================  =========================
EQ (at DET)     ``<enc_col>``             DET ciphertext (string)
ORD (at OPE)    ``<enc_col>_ord``         OPE ciphertext (integer)
HOM             ``<enc_col>_hom``         Paillier ciphertext index
RND             ``<enc_col>_rnd``         PROB ciphertext (string)
==============  =======================  =========================

Representing each onion as its own physical column (rather than literally
re-encrypting one column in place) is the standard way CryptDB
re-implementations lay out data; onion *adjustment* then simply decides which
physical column the rewriter is allowed to reference, and the
:class:`~repro.cryptdb.onion.OnionState` records what is thereby exposed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.base import EncryptionScheme
from repro.crypto.det import DeterministicScheme
from repro.crypto.hom import PaillierScheme
from repro.crypto.ope import OrderPreservingScheme
from repro.crypto.prob import ProbabilisticScheme
from repro.cryptdb.onion import Onion, OnionState
from repro.db.schema import ColumnType
from repro.exceptions import CryptDbError

#: Suffixes of the physical columns per onion (EQ is the base name).
ORD_SUFFIX = "_ord"
HOM_SUFFIX = "_hom"
RND_SUFFIX = "_rnd"


def normalize_equality_value(value: object) -> object:
    """Canonicalize a value before DET (EQ-onion) encryption.

    SQL equality treats ``5`` and ``5.0`` as equal, but their byte encodings
    differ; integral floats are therefore folded to integers so that values
    equal under SQL semantics always yield equal EQ ciphertexts.  The same
    normalisation is applied to stored cells, to rewritten constants and to
    the characteristic-level encryption of result tuples, keeping all three
    consistent.
    """
    if isinstance(value, float) and not isinstance(value, bool) and value.is_integer():
        return int(value)
    return value


@dataclass
class ColumnEncryption:
    """The concrete schemes backing one column's onions."""

    det: DeterministicScheme
    prob: ProbabilisticScheme
    ope: OrderPreservingScheme | None = None
    hom: PaillierScheme | None = None
    #: Fixed-point scaling applied before OPE/HOM for REAL columns.
    numeric_scale: int = 1

    def scheme_for_onion(self, onion: Onion) -> EncryptionScheme:
        """The scheme encrypting the physical column of ``onion``."""
        if onion is Onion.EQ:
            return self.det
        if onion is Onion.ORD:
            if self.ope is None:
                raise CryptDbError("column has no ORD onion")
            return self.ope
        if self.hom is None:
            raise CryptDbError("column has no HOM onion")
        return self.hom


@dataclass
class EncryptedColumn:
    """Mapping of one plaintext column to its encrypted representation."""

    plain_table: str
    plain_name: str
    encrypted_name: str
    column_type: ColumnType
    onions: tuple[Onion, ...]
    encryption: ColumnEncryption
    state: OnionState = field(init=False)

    def __post_init__(self) -> None:
        self.state = OnionState.initial(self.onions)

    def physical_name(self, onion: Onion) -> str:
        """Name of the physical column storing ``onion``'s ciphertexts."""
        if onion not in self.onions:
            raise CryptDbError(
                f"column {self.plain_table}.{self.plain_name} has no {onion.value} onion"
            )
        if onion is Onion.EQ:
            return self.encrypted_name
        if onion is Onion.ORD:
            return self.encrypted_name + ORD_SUFFIX
        return self.encrypted_name + HOM_SUFFIX

    def rnd_name(self) -> str:
        """Name of the physical column storing the outer RND (PROB) ciphertext."""
        return self.encrypted_name + RND_SUFFIX

    def has_onion(self, onion: Onion) -> bool:
        """Return True if the column carries ``onion``."""
        return onion in self.onions

    def encode_numeric(self, value: object) -> int:
        """Fixed-point encode a numeric plaintext for the ORD onion."""
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise CryptDbError(f"cannot numerically encode {value!r}")
        return round(value * self.encryption.numeric_scale)


@dataclass
class EncryptedTable:
    """Mapping of one plaintext table to its encrypted counterpart."""

    plain_name: str
    encrypted_name: str
    columns: dict[str, EncryptedColumn] = field(default_factory=dict)

    def column(self, plain_name: str) -> EncryptedColumn:
        """Look up the encrypted column for plaintext column ``plain_name``."""
        try:
            return self.columns[plain_name]
        except KeyError:
            raise CryptDbError(
                f"table {self.plain_name!r} has no encrypted column for {plain_name!r}"
            ) from None


class EncryptedSchemaMap:
    """The full plaintext-to-encrypted schema mapping."""

    def __init__(self) -> None:
        self._tables: dict[str, EncryptedTable] = {}
        self._by_encrypted_name: dict[str, EncryptedTable] = {}

    def add_table(self, table: EncryptedTable) -> None:
        """Register the mapping for one table."""
        if table.plain_name in self._tables:
            raise CryptDbError(f"table {table.plain_name!r} already mapped")
        self._tables[table.plain_name] = table
        self._by_encrypted_name[table.encrypted_name] = table

    def table(self, plain_name: str) -> EncryptedTable:
        """Mapping for plaintext table ``plain_name``."""
        try:
            return self._tables[plain_name]
        except KeyError:
            raise CryptDbError(f"no encrypted mapping for table {plain_name!r}") from None

    def table_by_encrypted_name(self, encrypted_name: str) -> EncryptedTable:
        """Reverse lookup by encrypted table name (used when decrypting results)."""
        try:
            return self._by_encrypted_name[encrypted_name]
        except KeyError:
            raise CryptDbError(
                f"no table maps to encrypted name {encrypted_name!r}"
            ) from None

    def has_table(self, plain_name: str) -> bool:
        """Return True if ``plain_name`` has a mapping."""
        return plain_name in self._tables

    def column(self, plain_table: str, plain_column: str) -> EncryptedColumn:
        """Mapping for plaintext column ``plain_table.plain_column``."""
        return self.table(plain_table).column(plain_column)

    def find_column(self, plain_column: str, tables: tuple[str, ...]) -> EncryptedColumn:
        """Resolve an unqualified plaintext column name among ``tables``."""
        matches = [
            self._tables[table].columns[plain_column]
            for table in tables
            if table in self._tables and plain_column in self._tables[table].columns
        ]
        if not matches:
            raise CryptDbError(f"column {plain_column!r} not found in tables {tables}")
        if len(matches) > 1:
            raise CryptDbError(f"column {plain_column!r} is ambiguous among tables {tables}")
        return matches[0]

    @property
    def tables(self) -> tuple[EncryptedTable, ...]:
        """All mapped tables."""
        return tuple(self._tables.values())

    def all_columns(self) -> tuple[EncryptedColumn, ...]:
        """All mapped columns across all tables."""
        result: list[EncryptedColumn] = []
        for table in self._tables.values():
            result.extend(table.columns.values())
        return tuple(result)
