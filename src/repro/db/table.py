"""Tables and rows.

A :class:`Row` is an immutable mapping from column name to value.  A
:class:`Table` couples a :class:`~repro.db.schema.TableSchema` with a list of
rows and validates every insert against the schema.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.db.schema import TableSchema
from repro.exceptions import SchemaError


class Row(Mapping[str, object]):
    """An immutable, hashable row."""

    __slots__ = ("_values", "_key")

    def __init__(self, values: Mapping[str, object]) -> None:
        self._values = dict(values)
        self._key = tuple(sorted(self._values.items(), key=lambda kv: kv[0]))

    def __getitem__(self, key: str) -> object:
        return self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __hash__(self) -> int:
        return hash(self._key)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._key == other._key
        if isinstance(other, Mapping):
            return dict(self._values) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"Row({inner})"

    def as_dict(self) -> dict[str, object]:
        """Return a mutable copy of the row's values."""
        return dict(self._values)

    def project(self, columns: Iterable[str]) -> "Row":
        """Return a new row restricted to ``columns``."""
        return Row({name: self._values[name] for name in columns})

    def values_tuple(self, columns: Iterable[str]) -> tuple[object, ...]:
        """Return the values of ``columns`` as a tuple, in the given order."""
        return tuple(self._values[name] for name in columns)


class Table:
    """A schema-validated, in-memory table."""

    def __init__(self, schema: TableSchema, rows: Iterable[Mapping[str, object]] = ()) -> None:
        self.schema = schema
        self._rows: list[Row] = []
        for row in rows:
            self.insert(row)

    @property
    def name(self) -> str:
        """The table's name (from its schema)."""
        return self.schema.name

    @property
    def rows(self) -> list[Row]:
        """The table's rows, in insertion order."""
        return list(self._rows)

    def insert(self, values: Mapping[str, object]) -> Row:
        """Validate and insert a row; returns the stored :class:`Row`."""
        self.schema.validate_row(dict(values))
        row = Row(values)
        self._rows.append(row)
        return row

    def insert_many(self, rows: Iterable[Mapping[str, object]]) -> None:
        """Insert several rows, validating each."""
        for row in rows:
            self.insert(row)

    def column_values(self, column: str) -> list[object]:
        """Return every value of ``column``, in row order."""
        if not self.schema.has_column(column):
            raise SchemaError(f"table {self.name!r} has no column {column!r}")
        return [row[column] for row in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, {len(self._rows)} rows)"
