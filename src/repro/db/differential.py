"""Differential oracle: compare result sets across execution backends.

The ``"memory"`` interpreter backend is the semantics reference; every other
backend must agree with it.  Agreement is *not* plain tuple-sequence equality
— SQL leaves two freedoms that differ legitimately between engines:

* without ORDER BY, the row *order* is unspecified (only the multiset of
  rows is defined);
* under LIMIT without ORDER BY, *which* rows are returned is unspecified
  (only how many, and that they come from the full result).

:func:`result_difference` encodes exactly these freedoms and nothing more:
columns must match exactly, row multisets must match (type-exactly, so an
``int``/``float`` representation drift is caught even though SQL calls the
values equal), ORDER BY sequences must satisfy the query's sort keys with
the engine's NULLS LAST rule, and LIMIT is checked against the unlimited
reference result when one is provided.  It returns a human-readable
explanation of the first difference found, or ``None`` when the results are
equivalent — the differential test suite asserts ``None``.

The oracle is what makes the backend axis of E3/S1/P1 trustworthy: the
result-distance measure's characteristic is a *set* of result tuples, so
backend equivalence here implies bit-for-bit equal distance matrices — and
therefore identical mining results — on every backend.  The cross-backend
test suites run it over plaintext, encrypted and generated workloads; the
P1 CI job smoke-tests the same agreement on every push.
"""

from __future__ import annotations

from collections import Counter

from repro.db.executor import ResultSet, _SortKey
from repro.sql.ast import Query
from repro.sql.render import render_expression

#: Type-exact multiset key for a result row.  Booleans, integers and floats
#: all compare equal under SQL (and under Python hashing), so the runtime
#: type name is included to catch representation drift between backends.
def _row_key(row: tuple[object, ...]) -> tuple[tuple[str, object], ...]:
    return tuple((type(value).__name__, value) for value in row)


def _multiset(rows: tuple[tuple[object, ...], ...]) -> Counter:
    return Counter(_row_key(row) for row in rows)


def result_difference(
    query: Query,
    reference: ResultSet,
    candidate: ResultSet,
    *,
    unlimited_reference: ResultSet | None = None,
) -> str | None:
    """Explain how ``candidate`` deviates from ``reference`` for ``query``.

    Returns ``None`` when the two results are equivalent answers to
    ``query``.  For queries with LIMIT but no ORDER BY, pass the reference
    result of the same query *without* its LIMIT as ``unlimited_reference``
    to additionally check that the candidate's rows come from the full
    result.
    """
    if reference.columns != candidate.columns:
        return (
            f"column mismatch: reference {reference.columns!r}, "
            f"candidate {candidate.columns!r}"
        )

    if query.limit is not None:
        if len(reference.rows) != len(candidate.rows):
            return (
                f"row-count mismatch under LIMIT {query.limit}: "
                f"reference {len(reference.rows)}, candidate {len(candidate.rows)}"
            )
        if unlimited_reference is not None:
            extra = _multiset(candidate.rows) - _multiset(unlimited_reference.rows)
            if extra:
                return f"LIMIT returned rows outside the full result: {sorted(extra)[:3]!r}"
        if not query.order_by:
            return None  # which rows survive an unordered LIMIT is unspecified
        return _order_difference(query, reference, candidate)

    if _multiset(reference.rows) != _multiset(candidate.rows):
        missing = _multiset(reference.rows) - _multiset(candidate.rows)
        extra = _multiset(candidate.rows) - _multiset(reference.rows)
        return (
            f"row multiset mismatch: missing {sorted(missing)[:3]!r}, "
            f"extra {sorted(extra)[:3]!r}"
        )
    if query.order_by:
        return _order_difference(query, reference, candidate)
    return None


def _order_difference(query: Query, reference: ResultSet, candidate: ResultSet) -> str | None:
    """Check that both row sequences satisfy the query's ORDER BY keys.

    Only sort keys that resolve to a projected position can be checked from
    the result alone (the interpreter's resolution rules: column name, alias,
    or rendered expression text).  Checking stops at the first unresolvable
    key: sortedness by a *prefix* of the ORDER BY list is implied by full
    sortedness, but keys ranked below an uncheckable one are only tie-breaks
    within groups the checker cannot see.  Ties may be broken differently by
    different engines, so sortedness — not sequence equality — is asserted,
    with the engine contract's NULLS LAST rule via :class:`_SortKey`.
    """
    columns = list(reference.columns)
    aliases = [item.alias for item in query.select_items]
    rendered_items = [render_expression(item.expression) for item in query.select_items]
    keys: list[tuple[int, bool]] = []
    for item in query.order_by:
        rendered = render_expression(item.expression)
        if rendered in columns:
            index = columns.index(rendered)
        elif rendered in aliases:
            index = aliases.index(rendered)
        elif rendered in rendered_items:
            index = rendered_items.index(rendered)
        else:
            break  # unprojected sort key: this and lower keys are uncheckable
        keys.append((index, item.ascending))
    if not keys:
        return None
    for label, rows in (("reference", reference.rows), ("candidate", candidate.rows)):
        for first, second in zip(rows, rows[1:]):
            first_key = tuple(_SortKey(first[i], asc) for i, asc in keys)
            second_key = tuple(_SortKey(second[i], asc) for i, asc in keys)
            if second_key < first_key:
                return (
                    f"{label} rows violate ORDER BY: {first!r} precedes {second!r}"
                )
    return None


__all__ = ["result_difference"]
