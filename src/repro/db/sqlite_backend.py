"""SQLite execution backend.

Executes the supported SQL fragment on a real engine instead of the Python
tree-walking interpreter: the database snapshot is bulk-loaded into an
in-memory SQLite connection once (``executemany`` per table), every query is
compiled to parameterized SQL by :func:`repro.sql.render.compile_query`, and
the encryption layer's custom aggregates (``HOMSUM``) plus Python-semantics
``/`` and ``%`` are registered as UDFs.  The backend is differentially tested
against :class:`~repro.db.backend.InMemoryBackend`, which stays the equality
oracle.

Two representation details keep results bit-for-bit compatible with the
interpreter:

* **Big integers.**  SQLite integers are 64-bit, but Paillier (HOM onion)
  ciphertexts are hundreds of bits.  Any integer outside the 64-bit range is
  stored as a tagged hex string (the tag contains a NUL byte, which no SQL
  value in the supported fragment produces) and decoded back to ``int`` on
  the way out — including through custom aggregates, so ``HOMSUM`` sees and
  returns plain Python integers exactly as it does on the memory backend.
* **Booleans.**  SQLite stores booleans as 0/1.  Result positions that are
  boolean by construction (BOOLEAN columns, predicates projected as values)
  are coerced back to Python ``bool``.
"""

from __future__ import annotations

import sqlite3
import threading
from collections.abc import Callable, Iterable

from repro.db.database import Database
from repro.db.executor import ResultSet, projection_columns, validate_grouped_projection
from repro.db.schema import ColumnType
from repro.exceptions import ExecutionError
from repro.sql.ast import (
    AggregateCall,
    BetweenPredicate,
    BinaryOp,
    ColumnRef,
    ComparisonOp,
    Expression,
    InPredicate,
    IsNullPredicate,
    LikePredicate,
    Literal,
    LogicalOp,
    NotOp,
    Query,
    Star,
)
from repro.sql.render import DIV_FUNCTION, MOD_FUNCTION, compile_query, quote_identifier

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: Tag prefixing hex-encoded out-of-range integers.  Contains a NUL byte so it
#: cannot collide with legitimate TEXT values of the supported fragment
#: (identifiers, DET/PROB ciphertexts and generated workload strings are all
#: NUL-free).
_BIGINT_TAG = "\x00bigint:"


def encode_sql_value(value: object) -> object:
    """Encode a Python value for storage in / binding against SQLite."""
    if (
        isinstance(value, int)
        and not isinstance(value, bool)
        and not _INT64_MIN <= value <= _INT64_MAX
    ):
        return _BIGINT_TAG + format(value, "x")
    return value


def decode_sql_value(value: object) -> object:
    """Invert :func:`encode_sql_value`."""
    if isinstance(value, str) and value.startswith(_BIGINT_TAG):
        return int(value[len(_BIGINT_TAG) :], 16)
    return value


class SQLiteBackend:
    """Compile-to-SQL execution over an in-memory SQLite database."""

    name = "sqlite"

    def __init__(self, database: Database) -> None:
        self._database = database
        # check_same_thread=False: server worker threads execute queries on
        # sessions opened by the main thread.  All connection use is
        # serialized by _execute_lock below, which is the pattern the sqlite3
        # docs require when sharing a connection across threads.
        self._connection = sqlite3.connect(":memory:", check_same_thread=False)
        # The interpreter's LIKE is case-sensitive (regex translation);
        # SQLite's is ASCII-case-insensitive by default.
        self._connection.execute("PRAGMA case_sensitive_like = ON")
        self._udf_error: str | None = None
        # Serializes execute()/close(): the shared connection, the UDF
        # registry sync and the _udf_error side-channel are all
        # per-connection state that must not interleave across threads.
        self._execute_lock = threading.Lock()
        self._registered_aggregates: dict[str, Callable[[list[object]], object]] = {}
        self._register_scalar_functions()
        self._load(database)

    @property
    def database(self) -> Database:
        """The database snapshot this backend executes against."""
        return self._database

    # ------------------------------------------------------------------ #
    # loading

    def _load(self, database: Database) -> None:
        cursor = self._connection.cursor()
        for table in database:
            names = table.schema.column_names
            columns = ", ".join(quote_identifier(name) for name in names)
            cursor.execute(f"CREATE TABLE {quote_identifier(table.name)} ({columns})")
            placeholders = ", ".join("?" for _ in names)
            cursor.executemany(
                f"INSERT INTO {quote_identifier(table.name)} VALUES ({placeholders})",
                (
                    tuple(encode_sql_value(row[name]) for name in names)
                    for row in table
                ),
            )
        self._connection.commit()

    # ------------------------------------------------------------------ #
    # UDF plumbing

    def _capture_udf_errors(self, function: Callable[..., object]) -> Callable[..., object]:
        """Wrap a UDF so its error message survives SQLite's generic exception."""

        def wrapped(*args: object) -> object:
            try:
                return function(*args)
            except Exception as exc:
                self._udf_error = str(exc)
                raise

        return wrapped

    def _register_scalar_functions(self) -> None:
        self._connection.create_function(
            DIV_FUNCTION, 2, self._capture_udf_errors(_python_division), deterministic=True
        )
        self._connection.create_function(
            MOD_FUNCTION, 2, self._capture_udf_errors(_python_modulo), deterministic=True
        )

    def _sync_custom_aggregates(self) -> None:
        """Mirror :mod:`repro.db.aggregates` custom aggregates as SQLite UDFs."""
        from repro.db.aggregates import custom_aggregates

        registry = custom_aggregates()
        if registry == self._registered_aggregates:
            return
        for name in self._registered_aggregates:
            if name not in registry:
                self._connection.create_aggregate(name, 1, None)
        for name, function in registry.items():
            if self._registered_aggregates.get(name) is not function:
                self._connection.create_aggregate(
                    name, 1, _make_aggregate_adapter(self, function)
                )
        self._registered_aggregates = registry

    # ------------------------------------------------------------------ #
    # execution

    def execute(self, query: Query) -> ResultSet:
        """Execute ``query`` via compiled parameterized SQL.

        Thread-safe: the whole call runs under the backend's execute lock
        (one shared connection, one ``_udf_error`` side-channel).
        """
        with self._execute_lock:
            return self._execute_locked(query)

    def _execute_locked(self, query: Query) -> ResultSet:
        self._sync_custom_aggregates()
        # SQLite is laxer than the interpreter in two places: it tolerates
        # duplicate table aliases as long as no reference is ambiguous, and
        # it returns engine-arbitrary rows for bare columns in grouped
        # queries.  Enforce the interpreter's stricter contract up front so
        # error behaviour matches across backends.
        bindings = [ref.binding_name for ref in query.tables()]
        for binding in bindings:
            if bindings.count(binding) > 1:
                raise ExecutionError(f"duplicate table alias {binding!r} in FROM clause")
        validate_grouped_projection(query)
        columns = projection_columns(query, self._database)
        compiled = compile_query(query)
        parameters = tuple(encode_sql_value(value) for value in compiled.parameters)
        self._udf_error = None
        try:
            fetched = self._connection.execute(compiled.sql, parameters).fetchall()
        except sqlite3.Error as exc:
            raise ExecutionError(self._udf_error or f"sqlite backend: {exc}") from exc
        boolean_positions = self._boolean_positions(query)
        rows = tuple(
            tuple(
                _coerce_boolean(decode_sql_value(value)) if index in boolean_positions
                else decode_sql_value(value)
                for index, value in enumerate(row)
            )
            for row in fetched
        )
        return ResultSet(columns, rows)

    def execute_many(self, queries: Iterable[Query]) -> list[ResultSet]:
        """Execute a batch of queries on the shared connection."""
        return [self.execute(query) for query in queries]

    def close(self) -> None:
        """Close the SQLite connection (idempotent)."""
        with self._execute_lock:
            self._connection.close()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # boolean round-trip

    def _boolean_positions(self, query: Query) -> frozenset[int]:
        """Result positions whose values must be coerced back to ``bool``."""
        positions: list[int] = []
        index = 0
        for item in query.select_items:
            expr = item.expression
            if isinstance(expr, Star):
                refs = (
                    query.tables()
                    if expr.table is None
                    else tuple(ref for ref in query.tables() if ref.binding_name == expr.table)
                )
                for ref in refs:
                    for column in self._database.table(ref.name).schema.columns:
                        if column.type is ColumnType.BOOLEAN:
                            positions.append(index)
                        index += 1
            else:
                if self._is_boolean_expression(expr, query):
                    positions.append(index)
                index += 1
        return frozenset(positions)

    def _is_boolean_expression(self, expr: Expression, query: Query) -> bool:
        if isinstance(
            expr,
            (LogicalOp, NotOp, BetweenPredicate, InPredicate, LikePredicate, IsNullPredicate),
        ):
            return True
        if isinstance(expr, BinaryOp):
            return isinstance(expr.op, ComparisonOp)
        if isinstance(expr, Literal):
            return isinstance(expr.value, bool)
        if isinstance(expr, ColumnRef):
            return self._column_type(expr, query) is ColumnType.BOOLEAN
        if isinstance(expr, AggregateCall) and expr.function in ("MIN", "MAX"):
            if isinstance(expr.argument, ColumnRef):
                return self._column_type(expr.argument, query) is ColumnType.BOOLEAN
        return False

    def _column_type(self, ref: ColumnRef, query: Query) -> ColumnType | None:
        candidates: list[ColumnType] = []
        for table_ref in query.tables():
            if ref.table is not None and table_ref.binding_name != ref.table:
                continue
            if not self._database.has_table(table_ref.name):
                continue
            schema = self._database.table(table_ref.name).schema
            if schema.has_column(ref.name):
                candidates.append(schema.column(ref.name).type)
        if len(candidates) == 1:
            return candidates[0]
        return None


# --------------------------------------------------------------------------- #
# UDF implementations


def _python_division(left: object, right: object) -> object:
    if left is None or right is None:
        return None
    _require_numeric(left, right)
    if right == 0:
        raise ExecutionError("division by zero")
    return left / right  # type: ignore[operator]


def _python_modulo(left: object, right: object) -> object:
    if left is None or right is None:
        return None
    _require_numeric(left, right)
    if right == 0:
        raise ExecutionError("modulo by zero")
    return left % right  # type: ignore[operator]


def _require_numeric(left: object, right: object) -> None:
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        raise ExecutionError(f"arithmetic on non-numeric values {left!r}, {right!r}")


def _coerce_boolean(value: object) -> object:
    if value is None:
        return None
    return bool(value)


def _make_aggregate_adapter(
    backend: SQLiteBackend, function: Callable[[list[object]], object]
) -> type:
    """Adapt a list-based custom aggregate to SQLite's step/finalize protocol.

    NULL inputs are skipped (matching :func:`repro.db.aggregates.evaluate_aggregate`);
    DISTINCT is applied by the SQLite engine itself before ``step`` is called.
    """

    class _Adapter:
        def __init__(self) -> None:
            self._values: list[object] = []

        def step(self, value: object) -> None:
            if value is None:
                return
            self._values.append(decode_sql_value(value))

        def finalize(self) -> object:
            try:
                return encode_sql_value(function(self._values))
            except Exception as exc:
                backend._udf_error = str(exc)
                raise

    return _Adapter
