"""Database: a named collection of tables plus the catalog."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.db.schema import DatabaseSchema, TableSchema
from repro.db.table import Table
from repro.exceptions import SchemaError


class Database:
    """An in-memory database instance.

    The database owns its tables; the executor only reads them.  The
    encryption layer produces a *new* :class:`Database` with encrypted
    identifiers and values rather than mutating the original, mirroring the
    paper's scenario where the data owner keeps the plain-text database and
    ships the encrypted copy to the service provider.
    """

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}

    # -- catalog ---------------------------------------------------------- #

    def create_table(self, schema: TableSchema) -> Table:
        """Create an empty table from ``schema`` and register it."""
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists in database {self.name!r}")
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def add_table(self, table: Table) -> None:
        """Register an existing table object."""
        if table.name in self._tables:
            raise SchemaError(f"table {table.name!r} already exists in database {self.name!r}")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"database {self.name!r} has no table {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Return True if a table named ``name`` exists."""
        return name in self._tables

    @property
    def table_names(self) -> tuple[str, ...]:
        """Names of all tables, in creation order."""
        return tuple(self._tables)

    @property
    def schema(self) -> DatabaseSchema:
        """The database schema derived from the registered tables."""
        return DatabaseSchema(table.schema for table in self._tables.values())

    # -- data ------------------------------------------------------------- #

    def insert(self, table_name: str, values: Mapping[str, object]) -> None:
        """Insert one row into ``table_name``."""
        self.table(table_name).insert(values)

    def insert_many(self, table_name: str, rows: Iterable[Mapping[str, object]]) -> None:
        """Insert several rows into ``table_name``."""
        self.table(table_name).insert_many(rows)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def total_rows(self) -> int:
        """Total number of rows across all tables."""
        return sum(len(table) for table in self._tables.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({self.name!r}, tables={list(self._tables)})"
