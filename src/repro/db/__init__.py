"""In-memory relational engine.

The query-result distance measure (Definition 4 in the paper) needs actual
query execution: the distance between two queries is the Jaccard distance of
their *result tuple sets*.  To verify distance preservation we therefore need
to execute queries both over the plain-text database and over its encrypted
counterpart (via the CryptDB-style layer in :mod:`repro.cryptdb`).

This package implements a small but complete SELECT engine over in-memory
tables: typed schemas, expression evaluation (including three-valued NULL
logic), inner/left/right/cross joins, GROUP BY with HAVING, the five standard
aggregates, DISTINCT, ORDER BY and LIMIT.

Execution is backend-agnostic (see :mod:`repro.db.backend`): the interpreter
is the ``"memory"`` backend and equality oracle, and the same queries run on
the compiled ``"sqlite"`` backend for workload-scale execution.
"""

from repro.db.backend import (
    DEFAULT_BACKEND,
    ExecutionBackend,
    InMemoryBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.db.database import Database
from repro.db.executor import QueryExecutor, ResultSet
from repro.db.schema import Column, ColumnType, DatabaseSchema, TableSchema
from repro.db.table import Row, Table

__all__ = [
    "Column",
    "ColumnType",
    "DEFAULT_BACKEND",
    "Database",
    "DatabaseSchema",
    "ExecutionBackend",
    "InMemoryBackend",
    "QueryExecutor",
    "ResultSet",
    "Row",
    "Table",
    "TableSchema",
    "available_backends",
    "create_backend",
    "register_backend",
]
