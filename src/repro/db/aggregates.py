"""Aggregate functions over row groups.

The executor groups rows (either by the GROUP BY key or into one global
group) and asks this module to evaluate aggregate calls over each group.
NULL handling follows SQL: aggregates skip NULL inputs, ``COUNT(*)`` counts
rows, ``COUNT(expr)`` counts non-NULL values, and every aggregate except
``COUNT`` returns NULL over an empty (or all-NULL) group.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.db.expressions import RowScope, evaluate
from repro.exceptions import ExecutionError
from repro.sql.ast import AggregateCall, Star

#: Custom aggregate implementations registered by higher layers.  The
#: CryptDB-style proxy registers ``HOMSUM`` here: summation of Paillier
#: ciphertexts is modular multiplication, which the engine cannot know about.
_CUSTOM_AGGREGATES: dict[str, Callable[[list[object]], object]] = {}


def register_custom_aggregate(name: str, implementation: Callable[[list[object]], object]) -> None:
    """Register (or replace) a custom aggregate ``name`` (case-insensitive)."""
    _CUSTOM_AGGREGATES[name.upper()] = implementation


def unregister_custom_aggregate(name: str) -> None:
    """Remove a previously registered custom aggregate (missing names are ignored)."""
    _CUSTOM_AGGREGATES.pop(name.upper(), None)


def custom_aggregates() -> dict[str, Callable[[list[object]], object]]:
    """Snapshot of the registered custom aggregates.

    Execution backends that bring their own engine (e.g. the SQLite backend)
    mirror this registry into engine-native UDFs, so a custom aggregate
    registered once works on every backend.
    """
    return dict(_CUSTOM_AGGREGATES)


def evaluate_aggregate(call: AggregateCall, scopes: Sequence[RowScope]) -> object:
    """Evaluate ``call`` over the group formed by ``scopes``."""
    function = call.function

    if isinstance(call.argument, Star):
        if function != "COUNT":
            raise ExecutionError(f"{function}(*) is not valid SQL")
        return len(scopes)

    values = [evaluate(call.argument, scope) for scope in scopes]
    values = [value for value in values if value is not None]
    if call.distinct:
        values = _distinct(values)

    if function in _CUSTOM_AGGREGATES:
        return _CUSTOM_AGGREGATES[function](values)
    if function == "COUNT":
        return len(values)
    if not values:
        return None
    if function == "SUM":
        return _numeric_sum(values)
    if function == "AVG":
        return _numeric_sum(values) / len(values)
    if function == "MIN":
        return _extreme(values, smallest=True)
    if function == "MAX":
        return _extreme(values, smallest=False)
    raise ExecutionError(f"unknown aggregate function {function!r}")


def _distinct(values: list[object]) -> list[object]:
    seen: list[object] = []
    for value in values:
        if value not in seen:
            seen.append(value)
    return seen


def _numeric_sum(values: list[object]) -> int | float:
    total: int | float = 0
    for value in values:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"SUM/AVG over non-numeric value {value!r}")
        total += value
    return total


def _extreme(values: list[object], *, smallest: bool) -> object:
    best = values[0]
    for value in values[1:]:
        try:
            comparison = value < best  # type: ignore[operator]
        except TypeError as exc:
            raise ExecutionError(f"cannot order values {value!r} and {best!r}") from exc
        if comparison == smallest:
            best = value
    return best
