"""Schemas: columns, tables and databases.

Schemas serve two purposes: (1) the executor validates queries against them,
and (2) the encryption layer walks them to decide, per column, which
encryption classes/onions to apply (constants of numeric columns may need
OPE or HOM, text columns DET, and so on).
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.exceptions import SchemaError


class ColumnType(enum.Enum):
    """Supported column types.

    ``INTEGER`` and ``REAL`` are ordered numeric domains (candidates for OPE
    and HOM); ``TEXT`` supports equality and LIKE; ``BOOLEAN`` supports
    equality only.
    """

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"

    @property
    def is_numeric(self) -> bool:
        """True for totally ordered numeric domains."""
        return self in (ColumnType.INTEGER, ColumnType.REAL)

    def validate(self, value: object) -> None:
        """Raise :class:`SchemaError` if ``value`` is not of this type (NULL allowed)."""
        if value is None:
            return
        if self is ColumnType.INTEGER and isinstance(value, bool):
            raise SchemaError(f"expected INTEGER, got boolean {value!r}")
        expected: tuple[type, ...]
        if self is ColumnType.INTEGER:
            expected = (int,)
        elif self is ColumnType.REAL:
            expected = (int, float)
        elif self is ColumnType.TEXT:
            expected = (str,)
        else:
            expected = (bool,)
        if not isinstance(value, expected):
            raise SchemaError(f"expected {self.value}, got {type(value).__name__} {value!r}")


@dataclass(frozen=True)
class Column:
    """A single column definition."""

    name: str
    type: ColumnType
    nullable: bool = True

    def validate(self, value: object) -> None:
        """Raise :class:`SchemaError` if ``value`` violates the column definition."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            return
        self.type.validate(value)


class TableSchema:
    """Schema of a single table: an ordered collection of named columns."""

    def __init__(self, name: str, columns: Iterable[Column]) -> None:
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        if not self.columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self._by_name = {column.name: column for column in self.columns}
        if len(self._by_name) != len(self.columns):
            raise SchemaError(f"duplicate column names in table {name!r}")

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        """Return True if a column with ``name`` exists."""
        return name in self._by_name

    def validate_row(self, values: dict[str, object]) -> None:
        """Validate a full row mapping against this schema."""
        for column in self.columns:
            if column.name not in values:
                raise SchemaError(
                    f"missing value for column {column.name!r} of table {self.name!r}"
                )
            column.validate(values[column.name])
        extra = set(values) - set(self._by_name)
        if extra:
            raise SchemaError(f"unknown columns {sorted(extra)} for table {self.name!r}")

    def rename(self, name: str, column_names: dict[str, str]) -> "TableSchema":
        """Return a copy with the table renamed and columns renamed per mapping.

        Used by the encryption layer: the encrypted database has the same
        shape as the plain-text one but with encrypted identifiers.
        """
        columns = [
            Column(column_names.get(column.name, column.name), column.type, column.nullable)
            for column in self.columns
        ]
        return TableSchema(name, columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableSchema):
            return NotImplemented
        return self.name == other.name and self.columns == other.columns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name} {c.type.value}" for c in self.columns)
        return f"TableSchema({self.name!r}: {cols})"


class DatabaseSchema:
    """A collection of table schemas forming a database schema."""

    def __init__(self, tables: Iterable[TableSchema] = ()) -> None:
        self._tables: dict[str, TableSchema] = {}
        for table in tables:
            self.add_table(table)

    def add_table(self, table: TableSchema) -> None:
        """Register a table schema; duplicate names are rejected."""
        if table.name in self._tables:
            raise SchemaError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def table(self, name: str) -> TableSchema:
        """Look up a table schema by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Return True if a table with ``name`` exists."""
        return name in self._tables

    @property
    def table_names(self) -> tuple[str, ...]:
        """Names of all registered tables, in insertion order."""
        return tuple(self._tables)

    def __iter__(self) -> Iterator[TableSchema]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DatabaseSchema({', '.join(self.table_names)})"
