"""Backend-agnostic query execution.

The paper's experiments only care about *what* a query returns, not *how* it
is evaluated, so execution is factored behind the :class:`ExecutionBackend`
protocol: a backend is built once per database snapshot, answers queries with
:class:`~repro.db.executor.ResultSet`, and is closed when the workload is
done.  Two backends ship with the repository:

* ``"memory"`` — :class:`InMemoryBackend`, the original tuple-at-a-time
  tree-walking interpreter.  Slow but transparent; it is the *equality
  oracle* every other backend is differentially tested against (the same
  role ``distance_matrix_reference`` plays for the mining pipeline).
* ``"sqlite"`` — :class:`~repro.db.sqlite_backend.SQLiteBackend`, which
  compiles the AST to parameterized SQL and executes it on SQLite with the
  encryption layer's custom aggregates registered as UDFs.  Orders of
  magnitude faster on large tables; used by the batched proxy sessions.

Backends register themselves in a name -> factory registry so experiment
runners, benchmarks and the CLI can expose a ``--backend`` axis without
importing concrete backend classes.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Protocol, runtime_checkable

from repro.db.database import Database
from repro.db.executor import QueryExecutor, ResultSet
from repro.exceptions import ExecutionError
from repro.sql.ast import Query

#: Name of the backend used when callers do not choose one explicitly.
DEFAULT_BACKEND = "memory"


@runtime_checkable
class ExecutionBackend(Protocol):
    """A query execution engine bound to one database snapshot.

    Backends assume the database content does not change for their lifetime
    (the encrypted store is immutable once shipped to the provider); callers
    that mutate the database must create a fresh backend.
    """

    #: Registry name of the backend (``"memory"``, ``"sqlite"``, ...).
    name: str

    def execute(self, query: Query) -> ResultSet:
        """Execute one query and return its result set."""

    def execute_many(self, queries: Iterable[Query]) -> list[ResultSet]:
        """Execute a batch of queries, returning one result set per query."""

    def close(self) -> None:
        """Release engine resources (idempotent)."""


class InMemoryBackend:
    """The tree-walking interpreter as an :class:`ExecutionBackend`.

    Join-state reuse is on by default: a backend instance is scoped to one
    database snapshot, which is exactly the lifetime for which the
    executor's FROM/JOIN cache is valid.
    """

    name = "memory"

    def __init__(self, database: Database, *, reuse_join_state: bool = True) -> None:
        self._database = database
        self._executor = QueryExecutor(database, reuse_join_state=reuse_join_state)

    @property
    def database(self) -> Database:
        """The database snapshot this backend executes against."""
        return self._database

    def execute(self, query: Query) -> ResultSet:
        return self._executor.execute(query)

    def execute_many(self, queries: Iterable[Query]) -> list[ResultSet]:
        return [self._executor.execute(query) for query in queries]

    def close(self) -> None:
        pass

    def __enter__(self) -> "InMemoryBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# registry

BackendFactory = Callable[..., ExecutionBackend]

_BACKENDS: dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory, *, replace: bool = False) -> None:
    """Register a backend factory under ``name``.

    The factory is called as ``factory(database, **options)``.  Existing
    names are protected unless ``replace=True``, so a typo cannot silently
    shadow a built-in backend.
    """
    if name in _BACKENDS and not replace:
        raise ExecutionError(f"execution backend {name!r} is already registered")
    _BACKENDS[name] = factory


def available_backends() -> tuple[str, ...]:
    """Names of all registered backends, in registration order."""
    return tuple(_BACKENDS)


def create_backend(name: str, database: Database, **options: object) -> ExecutionBackend:
    """Instantiate the backend registered under ``name`` for ``database``.

    Failures are actionable: an unknown ``name`` raises an
    :class:`~repro.exceptions.ExecutionError` listing
    :func:`available_backends`, and an option the factory does not accept
    raises one naming the offending option instead of surfacing a bare
    :class:`TypeError` from deep inside the factory.
    """
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise ExecutionError(
            f"unknown execution backend {name!r}; "
            f"available backends: {sorted(available_backends())}"
        ) from None
    try:
        return factory(database, **options)
    except TypeError as error:
        offending = _offending_option(error, options)
        if offending is None:
            raise
        raise ExecutionError(
            f"execution backend {name!r} does not accept option {offending!r} "
            f"(passed options: {sorted(options)}); "
            f"available backends: {sorted(available_backends())}"
        ) from error


def _offending_option(error: TypeError, options: dict[str, object]) -> str | None:
    """The option name a factory ``TypeError`` complains about, if any.

    CPython phrases unexpected-keyword errors as ``... got an unexpected
    keyword argument 'name'``; anything else (a genuine ``TypeError`` from
    backend internals) returns ``None`` so the original error propagates.
    """
    import re

    match = re.search(r"unexpected keyword argument '([^']+)'", str(error))
    if match and match.group(1) in options:
        return match.group(1)
    return None


def _sqlite_factory(database: Database, **options: object) -> ExecutionBackend:
    # Imported lazily so repro.db does not hard-depend on the sqlite3 module
    # at import time (some minimal Python builds omit it).
    from repro.db.sqlite_backend import SQLiteBackend

    return SQLiteBackend(database, **options)  # type: ignore[arg-type]


register_backend("memory", InMemoryBackend)
register_backend("sqlite", _sqlite_factory)
