"""Expression evaluation over rows.

The evaluator implements SQL's three-valued logic: any comparison involving
NULL yields ``None`` (unknown), ``AND``/``OR``/``NOT`` combine truth values
per the standard truth tables, and a WHERE clause keeps a row only when the
predicate evaluates to ``True`` (not merely "not false").

The evaluator is *value-generic*: it compares whatever Python values the rows
contain.  This is essential for the CryptDB-style layer, which executes the
same query plans over DET ciphertexts (equality) and OPE ciphertexts
(integers, order comparisons) without the executor knowing it operates on
encrypted data.
"""

from __future__ import annotations

import re
from collections.abc import Mapping

from repro.exceptions import ExecutionError
from repro.sql.ast import (
    AggregateCall,
    ArithmeticOp,
    BetweenPredicate,
    BinaryOp,
    ColumnRef,
    ComparisonOp,
    Expression,
    InPredicate,
    IsNullPredicate,
    LikePredicate,
    Literal,
    LogicalConnective,
    LogicalOp,
    NotOp,
    Star,
    UnaryMinus,
)


class RowScope:
    """Name-resolution scope for a single (possibly joined) row.

    A scope maps *binding names* (table names or aliases) to per-table value
    mappings and resolves qualified (``t.a``) and unqualified (``a``) column
    references.  Ambiguous unqualified references raise
    :class:`ExecutionError`, as a real DBMS would.
    """

    def __init__(self, bindings: Mapping[str, Mapping[str, object]]) -> None:
        self._bindings = {name: dict(values) for name, values in bindings.items()}

    def resolve(self, ref: ColumnRef) -> object:
        """Resolve a column reference to its value in this scope."""
        if ref.table is not None:
            try:
                table_values = self._bindings[ref.table]
            except KeyError:
                raise ExecutionError(f"unknown table or alias {ref.table!r}") from None
            if ref.name not in table_values:
                raise ExecutionError(f"table {ref.table!r} has no column {ref.name!r}")
            return table_values[ref.name]

        matches = [
            values[ref.name] for values in self._bindings.values() if ref.name in values
        ]
        owners = [
            name for name, values in self._bindings.items() if ref.name in values
        ]
        if not matches:
            raise ExecutionError(f"unknown column {ref.name!r}")
        if len(matches) > 1:
            raise ExecutionError(
                f"ambiguous column {ref.name!r} (candidates: {', '.join(sorted(owners))})"
            )
        return matches[0]

    def flatten(self) -> dict[str, object]:
        """Return a single mapping of unqualified column names to values.

        Columns appearing in several bindings keep the value of the first
        binding (callers that care about ambiguity use :meth:`resolve`).
        """
        flat: dict[str, object] = {}
        for values in self._bindings.values():
            for key, value in values.items():
                flat.setdefault(key, value)
        return flat

    def binding_names(self) -> tuple[str, ...]:
        """Names of the tables/aliases bound in this scope."""
        return tuple(self._bindings)

    def binding(self, name: str) -> dict[str, object]:
        """Return the value mapping of a specific binding."""
        return dict(self._bindings[name])


def evaluate(expr: Expression, scope: RowScope) -> object:
    """Evaluate ``expr`` against ``scope``.

    Aggregate calls cannot be evaluated row-wise and raise
    :class:`ExecutionError`; the executor evaluates them separately over row
    groups (see :mod:`repro.db.aggregates`).
    """
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        return scope.resolve(expr)
    if isinstance(expr, Star):
        raise ExecutionError("'*' is only valid inside COUNT(*) or as a projection")
    if isinstance(expr, AggregateCall):
        raise ExecutionError(
            f"aggregate {expr.function} cannot be evaluated in a row-wise context"
        )
    if isinstance(expr, UnaryMinus):
        value = evaluate(expr.operand, scope)
        if value is None:
            return None
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"cannot negate non-numeric value {value!r}")
        return -value
    if isinstance(expr, BinaryOp):
        return _evaluate_binary(expr, scope)
    if isinstance(expr, LogicalOp):
        return _evaluate_logical(expr, scope)
    if isinstance(expr, NotOp):
        value = _as_truth(evaluate(expr.operand, scope))
        if value is None:
            return None
        return not value
    if isinstance(expr, BetweenPredicate):
        return _evaluate_between(expr, scope)
    if isinstance(expr, InPredicate):
        return _evaluate_in(expr, scope)
    if isinstance(expr, LikePredicate):
        return _evaluate_like(expr, scope)
    if isinstance(expr, IsNullPredicate):
        value = evaluate(expr.operand, scope)
        result = value is None
        return (not result) if expr.negated else result
    raise ExecutionError(f"cannot evaluate expression of type {type(expr).__name__}")


def evaluate_predicate(expr: Expression, scope: RowScope) -> bool:
    """Evaluate a predicate; unknown (NULL) counts as False, per SQL WHERE."""
    return _as_truth(evaluate(expr, scope)) is True


# --------------------------------------------------------------------------- #
# helpers


def _as_truth(value: object) -> bool | None:
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    # Non-boolean values used in boolean position: SQL engines vary; we treat
    # nonzero numbers and non-empty strings as true for robustness.
    return bool(value)


def compare_values(left: object, right: object) -> int | None:
    """Three-way compare two SQL values; None signals an unknown comparison.

    Numeric types compare numerically; strings, bytes and booleans compare
    within their own type.  Mixed-type ordering raises
    :class:`ExecutionError` because silently ordering across types would hide
    bugs in the encryption layer (e.g. comparing an OPE integer with a DET
    string).
    """
    if left is None or right is None:
        return None
    if isinstance(left, bool) != isinstance(right, bool):
        raise ExecutionError(f"cannot compare {left!r} with {right!r}")
    numeric = (int, float)
    if isinstance(left, numeric) and isinstance(right, numeric):
        if left < right:
            return -1
        if left > right:
            return 1
        return 0
    if type(left) is not type(right):
        raise ExecutionError(f"cannot compare {type(left).__name__} with {type(right).__name__}")
    if left < right:  # type: ignore[operator]
        return -1
    if left > right:  # type: ignore[operator]
        return 1
    return 0


def values_equal(left: object, right: object) -> bool | None:
    """SQL equality: NULL-propagating, type-tolerant (mixed types are unequal)."""
    if left is None or right is None:
        return None
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    numeric = (int, float)
    if isinstance(left, numeric) and isinstance(right, numeric):
        return float(left) == float(right)
    if type(left) is not type(right):
        return False
    return left == right


def _evaluate_binary(expr: BinaryOp, scope: RowScope) -> object:
    left = evaluate(expr.left, scope)
    right = evaluate(expr.right, scope)

    if isinstance(expr.op, ComparisonOp):
        if expr.op is ComparisonOp.EQ:
            return values_equal(left, right)
        if expr.op is ComparisonOp.NEQ:
            equal = values_equal(left, right)
            return None if equal is None else not equal
        order = compare_values(left, right)
        if order is None:
            return None
        if expr.op is ComparisonOp.LT:
            return order < 0
        if expr.op is ComparisonOp.LTE:
            return order <= 0
        if expr.op is ComparisonOp.GT:
            return order > 0
        return order >= 0

    # Arithmetic
    if left is None or right is None:
        return None
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        raise ExecutionError(f"arithmetic on non-numeric values {left!r}, {right!r}")
    if isinstance(left, bool) or isinstance(right, bool):
        raise ExecutionError("arithmetic on boolean values is not supported")
    if expr.op is ArithmeticOp.ADD:
        return left + right
    if expr.op is ArithmeticOp.SUB:
        return left - right
    if expr.op is ArithmeticOp.MUL:
        return left * right
    if expr.op is ArithmeticOp.DIV:
        if right == 0:
            raise ExecutionError("division by zero")
        return left / right
    if right == 0:
        raise ExecutionError("modulo by zero")
    return left % right


def _evaluate_logical(expr: LogicalOp, scope: RowScope) -> bool | None:
    values = [_as_truth(evaluate(operand, scope)) for operand in expr.operands]
    if expr.op is LogicalConnective.AND:
        if any(value is False for value in values):
            return False
        if any(value is None for value in values):
            return None
        return True
    if any(value is True for value in values):
        return True
    if any(value is None for value in values):
        return None
    return False


def _evaluate_between(expr: BetweenPredicate, scope: RowScope) -> bool | None:
    value = evaluate(expr.operand, scope)
    low = evaluate(expr.low, scope)
    high = evaluate(expr.high, scope)
    low_cmp = compare_values(value, low)
    high_cmp = compare_values(value, high)
    if low_cmp is None or high_cmp is None:
        return None
    result = low_cmp >= 0 and high_cmp <= 0
    return (not result) if expr.negated else result


def _evaluate_in(expr: InPredicate, scope: RowScope) -> bool | None:
    value = evaluate(expr.operand, scope)
    saw_null = False
    for candidate in expr.values:
        equal = values_equal(value, evaluate(candidate, scope))
        if equal is True:
            return False if expr.negated else True
        if equal is None:
            saw_null = True
    if saw_null:
        return None
    return True if expr.negated else False


def _evaluate_like(expr: LikePredicate, scope: RowScope) -> bool | None:
    value = evaluate(expr.operand, scope)
    pattern = evaluate(expr.pattern, scope)
    if value is None or pattern is None:
        return None
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise ExecutionError("LIKE requires string operands")
    regex = _like_to_regex(pattern)
    result = regex.fullmatch(value) is not None
    return (not result) if expr.negated else result


def _like_to_regex(pattern: str) -> re.Pattern[str]:
    """Translate an SQL LIKE pattern ('%', '_') into a compiled regex."""
    parts: list[str] = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("".join(parts), re.DOTALL)
