"""SELECT query execution over an in-memory :class:`~repro.db.database.Database`.

The executor implements a straightforward (but correct) pipeline::

    FROM/JOIN -> WHERE -> GROUP BY/aggregates -> HAVING -> SELECT projection
              -> DISTINCT -> ORDER BY -> LIMIT

It is intentionally a tuple-at-a-time interpreter without optimisation; the
paper's result-distance experiments need correctness and determinism, not
speed, and the benchmark harness measures *relative* costs (plaintext vs
encrypted execution) where both sides use this same engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.aggregates import evaluate_aggregate
from repro.db.database import Database
from repro.db.expressions import RowScope, evaluate, evaluate_predicate, values_equal
from repro.db.table import Row
from repro.exceptions import ExecutionError
from repro.sql.ast import (
    AggregateCall,
    Expression,
    Join,
    JoinType,
    Query,
    SelectItem,
    Star,
    TableRef,
)
from repro.sql.render import render_expression
from repro.sql.visitor import contains_aggregate, walk


@dataclass(frozen=True)
class ResultSet:
    """The result of executing a query: ordered columns and ordered rows."""

    columns: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]

    def tuple_set(self) -> frozenset[tuple[object, ...]]:
        """Return the *set* of result tuples (used by query-result distance)."""
        return frozenset(self.rows)

    def as_dicts(self) -> list[dict[str, object]]:
        """Return the rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


class QueryExecutor:
    """Executes parsed queries against a database instance.

    With ``reuse_join_state=True`` the executor memoizes the joined row
    scopes per FROM/JOIN shape, so a batch of queries that share their FROM
    clause (the typical query-log workload) pays the join cost once.  Row
    scopes are never mutated downstream (WHERE/projection/ORDER BY only
    read), so sharing them across queries is safe.  The cache is only valid
    as long as the database content does not change; batch consumers like
    the result-distance measure create one executor per (log, database)
    pass.
    """

    def __init__(self, database: Database, *, reuse_join_state: bool = False) -> None:
        self._database = database
        self._from_cache: dict[object, list[RowScope]] | None = {} if reuse_join_state else None

    def execute(self, query: Query) -> ResultSet:
        """Execute ``query`` and return its :class:`ResultSet`."""
        if self._from_cache is None:
            scopes = self._build_from(query.from_table, query.joins)
        else:
            # AST nodes are frozen dataclasses, so the FROM/JOIN subtree is
            # hashable and keys the cache directly (collision-proof, no
            # string rendering on the hot path).
            key = (query.from_table, query.joins)
            if key not in self._from_cache:
                self._from_cache[key] = self._build_from(query.from_table, query.joins)
            scopes = list(self._from_cache[key])

        if query.where is not None:
            scopes = [scope for scope in scopes if evaluate_predicate(query.where, scope)]

        grouped = query.group_by or query.has_aggregates()
        if grouped:
            columns, rows = self._project_grouped(query, scopes)
        else:
            columns, rows = self._project_plain(query, scopes)

        if query.distinct:
            rows = _distinct_rows(rows)

        if query.order_by:
            rows = self._order_rows(query, columns, rows, scopes, grouped)

        if query.limit is not None:
            rows = rows[: query.limit]

        return ResultSet(tuple(columns), tuple(rows))

    # ------------------------------------------------------------------ #
    # FROM / JOIN

    def _scan(self, ref: TableRef) -> list[RowScope]:
        table = self._database.table(ref.name)
        binding = ref.binding_name
        return [RowScope({binding: row.as_dict()}) for row in table]

    def _null_scope_for(self, ref: TableRef) -> dict[str, object]:
        schema = self._database.table(ref.name).schema
        return {name: None for name in schema.column_names}

    def _build_from(self, first: TableRef, joins: tuple[Join, ...]) -> list[RowScope]:
        scopes = self._scan(first)
        bound: list[TableRef] = [first]
        for join in joins:
            scopes = self._apply_join(scopes, bound, join)
            bound.append(join.right)
        return scopes

    def _apply_join(
        self, left_scopes: list[RowScope], bound: list[TableRef], join: Join
    ) -> list[RowScope]:
        right_table = self._database.table(join.right.name)
        right_binding = join.right.binding_name
        if any(ref.binding_name == right_binding for ref in bound):
            raise ExecutionError(f"duplicate table alias {right_binding!r} in FROM clause")

        right_rows = [row.as_dict() for row in right_table]
        joined: list[RowScope] = []

        if join.join_type is JoinType.CROSS:
            for left in left_scopes:
                for right in right_rows:
                    joined.append(_merge_scope(left, right_binding, right))
            return joined

        if join.join_type in (JoinType.INNER, JoinType.LEFT):
            for left in left_scopes:
                matched = False
                for right in right_rows:
                    candidate = _merge_scope(left, right_binding, right)
                    if join.condition is None or evaluate_predicate(join.condition, candidate):
                        joined.append(candidate)
                        matched = True
                if not matched and join.join_type is JoinType.LEFT:
                    null_right = {name: None for name in right_table.schema.column_names}
                    joined.append(_merge_scope(left, right_binding, null_right))
            return joined

        # RIGHT join: iterate right side, matching against all left scopes.
        left_bindings = [ref.binding_name for ref in bound]
        for right in right_rows:
            matched = False
            for left in left_scopes:
                candidate = _merge_scope(left, right_binding, right)
                if join.condition is None or evaluate_predicate(join.condition, candidate):
                    joined.append(candidate)
                    matched = True
            if not matched:
                null_left_bindings = {
                    ref.binding_name: self._null_scope_for(ref) for ref in bound
                }
                null_left_bindings[right_binding] = right
                joined.append(RowScope(null_left_bindings))
        _ = left_bindings  # bound names only needed for the null-extension above
        return joined

    # ------------------------------------------------------------------ #
    # projection

    def _select_columns(self, query: Query, sample_scope: RowScope | None) -> list[str]:
        columns: list[str] = []
        for index, item in enumerate(query.select_items):
            columns.append(_column_name(item, index))
        return columns

    def _expand_star(self, query: Query, scope: RowScope) -> list[tuple[str, object]]:
        """Expand ``*`` / ``t.*`` projections into (name, value) pairs."""
        pairs: list[tuple[str, object]] = []
        for ref in query.tables():
            schema = self._database.table(ref.name).schema
            binding = scope.binding(ref.binding_name)
            for name in schema.column_names:
                pairs.append((name, binding[name]))
        return pairs

    def _project_plain(
        self, query: Query, scopes: list[RowScope]
    ) -> tuple[list[str], list[tuple[object, ...]]]:
        has_star = any(isinstance(item.expression, Star) for item in query.select_items)
        if has_star and len(query.select_items) == 1 and query.select_items[0].expression == Star():
            # plain SELECT * FROM ...
            columns: list[str] = []
            rows: list[tuple[object, ...]] = []
            for scope in scopes:
                pairs = self._expand_star(query, scope)
                if not columns:
                    columns = [name for name, _ in pairs]
                rows.append(tuple(value for _, value in pairs))
            if not columns:
                columns = self._star_columns(query)
            return columns, rows

        columns = []
        rows = []
        for index, item in enumerate(query.select_items):
            if isinstance(item.expression, Star):
                if item.expression.table is None:
                    raise ExecutionError("'*' cannot be mixed with other select items")
                schema = self._table_for_binding(query, item.expression.table).schema
                columns.extend(schema.column_names)
            else:
                columns.append(_column_name(item, index))
        for scope in scopes:
            values: list[object] = []
            for item in query.select_items:
                if isinstance(item.expression, Star):
                    binding = scope.binding(item.expression.table)  # type: ignore[arg-type]
                    schema = self._table_for_binding(query, item.expression.table).schema  # type: ignore[arg-type]
                    values.extend(binding[name] for name in schema.column_names)
                else:
                    values.append(evaluate(item.expression, scope))
            rows.append(tuple(values))
        return columns, rows

    def _star_columns(self, query: Query) -> list[str]:
        columns: list[str] = []
        for ref in query.tables():
            columns.extend(self._database.table(ref.name).schema.column_names)
        return columns

    def _table_for_binding(self, query: Query, binding: str):
        for ref in query.tables():
            if ref.binding_name == binding:
                return self._database.table(ref.name)
        raise ExecutionError(f"unknown table or alias {binding!r}")

    def _project_grouped(
        self, query: Query, scopes: list[RowScope]
    ) -> tuple[list[str], list[tuple[object, ...]]]:
        validate_grouped_projection(query)

        groups = self._build_groups(query, scopes)

        if query.having is not None:
            groups = [
                group
                for group in groups
                if _truthy(self._evaluate_over_group(query.having, group))
            ]

        columns = self._select_columns(query, scopes[0] if scopes else None)
        rows = [
            tuple(
                self._evaluate_over_group(item.expression, group)
                for item in query.select_items
            )
            for group in groups
        ]
        return columns, rows

    def _build_groups(self, query: Query, scopes: list[RowScope]) -> list[list[RowScope]]:
        if not query.group_by:
            # Aggregates without GROUP BY: a single global group.  SQL returns
            # one row even for an empty input.
            return [scopes]
        groups: dict[tuple[object, ...], list[RowScope]] = {}
        order: list[tuple[object, ...]] = []
        for scope in scopes:
            key = tuple(_hashable(evaluate(expr, scope)) for expr in query.group_by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(scope)
        return [groups[key] for key in order]

    def _evaluate_over_group(self, expr: Expression, group: list[RowScope]) -> object:
        """Evaluate an expression that may contain aggregates over a group."""
        aggregates = [node for node in walk(expr) if isinstance(node, AggregateCall)]
        if not aggregates:
            if not group:
                return None
            return evaluate(expr, group[0])
        if isinstance(expr, AggregateCall):
            return evaluate_aggregate(expr, group)
        # Expressions mixing aggregates with arithmetic (e.g. SUM(a) / COUNT(*))
        # are evaluated by substituting aggregate results into a scope.
        substitutions = {
            render_expression(agg): evaluate_aggregate(agg, group) for agg in aggregates
        }
        return _evaluate_with_substitutions(expr, group, substitutions)

    def _order_rows(
        self,
        query: Query,
        columns: list[str],
        rows: list[tuple[object, ...]],
        scopes: list[RowScope],
        grouped: bool,
    ) -> list[tuple[object, ...]]:
        """Sort result rows by the ORDER BY items.

        ORDER BY expressions are resolved against the projected columns (by
        column name, alias or rendered text).  For plain (non-grouped,
        non-DISTINCT) queries an ORDER BY expression that is not projected is
        evaluated against the underlying rows instead — the standard
        "ORDER BY an unprojected column" case, which the encrypted-execution
        layer relies on (it projects the EQ onion but orders by the ORD
        onion).  After grouping or DISTINCT there is no per-row scope to fall
        back to, so unprojected ORDER BY expressions are rejected there.
        """
        per_row_keys: list[list[_SortKey]] = [[] for _ in rows]
        rendered_items = [render_expression(i.expression) for i in query.select_items]
        aliases = [i.alias for i in query.select_items]

        for item in query.order_by:
            rendered = render_expression(item.expression)
            if rendered in columns:
                index = columns.index(rendered)
            elif rendered in aliases:
                index = aliases.index(rendered)
            elif rendered in rendered_items:
                index = rendered_items.index(rendered)
            else:
                index = None
            if index is not None:
                for row_index, row in enumerate(rows):
                    per_row_keys[row_index].append(_SortKey(row[index], item.ascending))
                continue
            can_use_scopes = not grouped and not query.distinct and len(scopes) == len(rows)
            if not can_use_scopes:
                raise ExecutionError(
                    f"ORDER BY expression {rendered!r} is not in the select list"
                )
            for row_index, scope in enumerate(scopes):
                value = evaluate(item.expression, scope)
                per_row_keys[row_index].append(_SortKey(value, item.ascending))

        order = sorted(range(len(rows)), key=lambda row_index: tuple(per_row_keys[row_index]))
        return [rows[row_index] for row_index in order]


# --------------------------------------------------------------------------- #
# helpers


def validate_grouped_projection(query: Query) -> None:
    """Reject select lists that are invalid under GROUP BY/aggregates.

    The single validation rule shared by every execution backend: in a
    grouped query no ``*`` projection is allowed, and (with an explicit
    GROUP BY) every non-aggregated select item must appear in the GROUP BY
    list.  SQLite itself tolerates bare columns in grouped queries and
    returns an engine-arbitrary row per group; enforcing this rule up front
    keeps such queries an error on every backend instead of a silent
    cross-backend divergence.
    """
    if not (query.group_by or query.has_aggregates()):
        return
    for item in query.select_items:
        if isinstance(item.expression, Star):
            raise ExecutionError("'*' projection cannot be combined with GROUP BY/aggregates")
        if not contains_aggregate(item.expression) and query.group_by:
            if item.expression not in query.group_by:
                raise ExecutionError(
                    f"non-aggregated select item {render_expression(item.expression)!r} "
                    "must appear in GROUP BY"
                )


def projection_columns(query: Query, database: Database) -> tuple[str, ...]:
    """Result column names of ``query``, derived from the AST and catalog.

    This is the single naming rule shared by every execution backend: aliases
    win, plain column references keep their name, other expressions use their
    rendered text, and ``*`` / ``t.*`` expand to the schema's column order.
    Backends that delegate execution to a real engine (SQLite) use this
    instead of the engine's own cursor description, so result columns cannot
    drift between backends.
    """
    columns: list[str] = []
    for index, item in enumerate(query.select_items):
        expr = item.expression
        if isinstance(expr, Star):
            if expr.table is None:
                if len(query.select_items) > 1:
                    raise ExecutionError("'*' cannot be mixed with other select items")
                for ref in query.tables():
                    columns.extend(database.table(ref.name).schema.column_names)
            else:
                for ref in query.tables():
                    if ref.binding_name == expr.table:
                        columns.extend(database.table(ref.name).schema.column_names)
                        break
                else:
                    raise ExecutionError(f"unknown table or alias {expr.table!r}")
        else:
            columns.append(_column_name(item, index))
    return tuple(columns)


def _merge_scope(left: RowScope, binding: str, values: dict[str, object]) -> RowScope:
    bindings = {name: left.binding(name) for name in left.binding_names()}
    bindings[binding] = values
    return RowScope(bindings)


def _column_name(item: SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    from repro.sql.ast import ColumnRef

    if isinstance(item.expression, ColumnRef):
        return item.expression.name
    return render_expression(item.expression)


def _distinct_rows(rows: list[tuple[object, ...]]) -> list[tuple[object, ...]]:
    seen: set[tuple[object, ...]] = set()
    result = []
    for row in rows:
        key = tuple(_hashable(value) for value in row)
        if key not in seen:
            seen.add(key)
            result.append(row)
    return result


def _hashable(value: object) -> object:
    if isinstance(value, (list, dict, set)):
        return repr(value)
    return value


def _truthy(value: object) -> bool:
    return bool(value) if value is not None else False


class _SortKey:
    """Sort key wrapper implementing NULLS LAST and descending order."""

    __slots__ = ("value", "ascending")

    def __init__(self, value: object, ascending: bool) -> None:
        self.value = value
        self.ascending = ascending

    def __lt__(self, other: "_SortKey") -> bool:
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            return False  # NULLS LAST regardless of direction
        if b is None:
            return True
        if isinstance(a, bool) or isinstance(b, bool):
            a, b = bool(a), bool(b)
        try:
            less = a < b  # type: ignore[operator]
        except TypeError:
            less = str(a) < str(b)
        return less if self.ascending else not less

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _SortKey):
            return NotImplemented
        return self.value == other.value


def _evaluate_with_substitutions(
    expr: Expression, group: list[RowScope], substitutions: dict[str, object]
) -> object:
    """Evaluate ``expr`` over a group with aggregate sub-expressions pre-computed."""
    from repro.sql.ast import BinaryOp, UnaryMinus

    rendered = render_expression(expr)
    if rendered in substitutions:
        return substitutions[rendered]
    if isinstance(expr, BinaryOp):
        left = _evaluate_with_substitutions(expr.left, group, substitutions)
        right = _evaluate_with_substitutions(expr.right, group, substitutions)
        from repro.sql.ast import Literal

        probe = BinaryOp(expr.op, Literal(left), Literal(right))  # type: ignore[arg-type]
        return evaluate(probe, RowScope({}))
    if isinstance(expr, UnaryMinus):
        inner = _evaluate_with_substitutions(expr.operand, group, substitutions)
        return None if inner is None else -inner  # type: ignore[operator]
    if not group:
        return None
    return evaluate(expr, group[0])
