"""Workload profiles: schemas plus the metadata the generators need.

A :class:`WorkloadProfile` bundles a database schema with per-column value
domains and join relationships.  Two ready-made profiles are provided:

* :func:`skyserver_profile` — a simplified astronomy catalogue modelled after
  the SkyServer ``PhotoObj`` / ``SpecObj`` tables the access-area measure was
  originally evaluated on [16];
* :func:`webshop_profile` — a customers/orders/products schema representative
  of the OLTP-style logs the introduction motivates.

Column names are globally unique across each profile (a documented
assumption of the access-area machinery, see :mod:`repro.core.domains`).

A profile is the single source of truth the rest of the harness derives
from: :func:`populate_database` materialises seeded rows for the
result-distance measure and the CryptDB layer,
:meth:`WorkloadProfile.domain_catalog` exposes the per-attribute domains the
access-area measure clips against, and :meth:`WorkloadProfile.join_groups`
names the column groups that must share DET/OPE keys to stay joinable after
encryption.  Experiments therefore never hand-assemble schemas; they pick a
profile and a size, which keeps every artefact reproducible from its
(profile, mix, seed, size) tuple alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._utils import deterministic_rng
from repro.core.domains import Domain, DomainCatalog
from repro.cryptdb.proxy import JoinGroupSpec
from repro.db.database import Database
from repro.db.schema import Column, ColumnType, TableSchema
from repro.exceptions import WorkloadError


@dataclass(frozen=True)
class ColumnProfile:
    """Metadata for one column: type, value domain and predicate roles."""

    name: str
    type: ColumnType
    #: Numeric domain bounds (numeric columns).
    minimum: float | None = None
    maximum: float | None = None
    #: Value pool (categorical columns).
    values: tuple[object, ...] = ()
    #: Whether the generator may use this column in range predicates.
    range_candidate: bool = False
    #: Whether the generator may use this column in equality/IN predicates.
    equality_candidate: bool = False
    #: Whether the generator may aggregate over this column (SUM/AVG/MIN/MAX).
    aggregate_candidate: bool = False

    def to_column(self) -> Column:
        """The engine-level column definition."""
        return Column(self.name, self.type)

    def to_domain(self) -> Domain:
        """The attribute domain used by the access-area measure."""
        if self.type.is_numeric:
            if self.minimum is None or self.maximum is None:
                raise WorkloadError(f"numeric column {self.name!r} needs domain bounds")
            return Domain(self.name, minimum=self.minimum, maximum=self.maximum)
        if not self.values:
            raise WorkloadError(f"categorical column {self.name!r} needs a value pool")
        return Domain(self.name, values=frozenset(self.values))


@dataclass(frozen=True)
class TableProfile:
    """Metadata for one table: its columns and target cardinality."""

    name: str
    columns: tuple[ColumnProfile, ...]
    rows: int = 100

    def schema(self) -> TableSchema:
        """The engine-level table schema."""
        return TableSchema(self.name, [column.to_column() for column in self.columns])

    def column(self, name: str) -> ColumnProfile:
        """Look up a column profile by name."""
        for column in self.columns:
            if column.name == name:
                return column
        raise WorkloadError(f"table {self.name!r} has no column {name!r}")


@dataclass(frozen=True)
class JoinProfile:
    """A foreign-key style join relationship between two columns."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def group_spec(self, name: str) -> JoinGroupSpec:
        """The CryptDB join-group specification for this relationship."""
        return JoinGroupSpec(
            name,
            frozenset(
                {(self.left_table, self.left_column), (self.right_table, self.right_column)}
            ),
        )


@dataclass(frozen=True)
class WorkloadProfile:
    """A full workload profile: tables, joins and derived catalogs."""

    name: str
    tables: tuple[TableProfile, ...]
    joins: tuple[JoinProfile, ...] = ()

    def table(self, name: str) -> TableProfile:
        """Look up a table profile by name."""
        for table in self.tables:
            if table.name == name:
                return table
        raise WorkloadError(f"profile {self.name!r} has no table {name!r}")

    def domain_catalog(self) -> DomainCatalog:
        """Domains for every column of every table."""
        catalog = DomainCatalog()
        for table in self.tables:
            for column in table.columns:
                catalog.add(column.to_domain())
        return catalog

    def join_groups(self) -> tuple[JoinGroupSpec, ...]:
        """Join groups for the CryptDB proxy, one per join relationship."""
        return tuple(
            join.group_spec(f"{self.name}-join-{index}")
            for index, join in enumerate(self.joins)
        )

    def all_column_names(self) -> tuple[str, ...]:
        """Every column name across all tables (guaranteed unique)."""
        names: list[str] = []
        for table in self.tables:
            names.extend(column.name for column in table.columns)
        if len(names) != len(set(names)):
            raise WorkloadError(f"profile {self.name!r} has duplicate column names")
        return tuple(names)


# --------------------------------------------------------------------------- #
# ready-made profiles


def skyserver_profile(*, photo_rows: int = 200, spec_rows: int = 80) -> WorkloadProfile:
    """A simplified SkyServer-style astronomy catalogue."""
    photoobj = TableProfile(
        "photoobj",
        (
            ColumnProfile(
                "objid", ColumnType.INTEGER, minimum=1, maximum=photo_rows,
                equality_candidate=True,
            ),
            ColumnProfile(
                "ra", ColumnType.REAL, minimum=0.0, maximum=360.0,
                range_candidate=True, aggregate_candidate=True,
            ),
            ColumnProfile(
                "dec", ColumnType.REAL, minimum=-90.0, maximum=90.0,
                range_candidate=True, aggregate_candidate=True,
            ),
            ColumnProfile(
                "magnitude", ColumnType.REAL, minimum=10.0, maximum=25.0,
                range_candidate=True, aggregate_candidate=True,
            ),
            ColumnProfile(
                "obj_class", ColumnType.TEXT,
                values=("STAR", "GALAXY", "QSO", "UNKNOWN"),
                equality_candidate=True,
            ),
        ),
        rows=photo_rows,
    )
    specobj = TableProfile(
        "specobj",
        (
            ColumnProfile(
                "specid", ColumnType.INTEGER, minimum=1, maximum=spec_rows,
                equality_candidate=True,
            ),
            ColumnProfile(
                "spec_objid", ColumnType.INTEGER, minimum=1, maximum=photo_rows,
                equality_candidate=True,
            ),
            ColumnProfile(
                "redshift", ColumnType.REAL, minimum=0.0, maximum=7.0,
                range_candidate=True, aggregate_candidate=True,
            ),
            ColumnProfile(
                "spec_class", ColumnType.TEXT,
                values=("STAR", "GALAXY", "QSO"),
                equality_candidate=True,
            ),
        ),
        rows=spec_rows,
    )
    return WorkloadProfile(
        name="skyserver",
        tables=(photoobj, specobj),
        joins=(JoinProfile("photoobj", "objid", "specobj", "spec_objid"),),
    )


def webshop_profile(
    *, customer_rows: int = 150, order_rows: int = 400, product_rows: int = 60
) -> WorkloadProfile:
    """A customers / orders / products schema typical of OLTP query logs."""
    customers = TableProfile(
        "customers",
        (
            ColumnProfile(
                "customer_id", ColumnType.INTEGER, minimum=1, maximum=customer_rows,
                equality_candidate=True,
            ),
            ColumnProfile(
                "customer_name", ColumnType.TEXT,
                values=("Alice", "Bob", "Carol", "Dave", "Erin", "Frank", "Grace", "Heidi"),
            ),
            ColumnProfile(
                "customer_city", ColumnType.TEXT,
                values=("Berlin", "Karlsruhe", "Hamburg", "Munich", "Cologne"),
                equality_candidate=True,
            ),
            ColumnProfile(
                "customer_age", ColumnType.INTEGER, minimum=18, maximum=90,
                range_candidate=True, aggregate_candidate=True,
            ),
        ),
        rows=customer_rows,
    )
    orders = TableProfile(
        "orders",
        (
            ColumnProfile(
                "order_id", ColumnType.INTEGER, minimum=1, maximum=order_rows,
                equality_candidate=True,
            ),
            ColumnProfile(
                "order_customer", ColumnType.INTEGER, minimum=1, maximum=customer_rows,
                equality_candidate=True,
            ),
            ColumnProfile(
                "order_amount", ColumnType.REAL, minimum=1.0, maximum=500.0,
                range_candidate=True, aggregate_candidate=True,
            ),
            # Aggregated in reports (SUM of granted discounts) but never used
            # in predicates: the "aggregate-only" attribute class the paper's
            # access-area scheme protects better than CryptDB-as-is.
            ColumnProfile(
                "order_discount", ColumnType.REAL, minimum=0.0, maximum=50.0,
                aggregate_candidate=True,
            ),
            ColumnProfile(
                "order_status", ColumnType.TEXT,
                values=("OPEN", "SHIPPED", "RETURNED", "CANCELLED"),
                equality_candidate=True,
            ),
        ),
        rows=order_rows,
    )
    products = TableProfile(
        "products",
        (
            ColumnProfile(
                "product_id", ColumnType.INTEGER, minimum=1, maximum=product_rows,
                equality_candidate=True,
            ),
            ColumnProfile(
                "product_price", ColumnType.REAL, minimum=0.5, maximum=999.0,
                range_candidate=True, aggregate_candidate=True,
            ),
            ColumnProfile(
                "product_stock", ColumnType.INTEGER, minimum=0, maximum=5000,
                aggregate_candidate=True,
            ),
            ColumnProfile(
                "product_category", ColumnType.TEXT,
                values=("BOOKS", "ELECTRONICS", "GARDEN", "TOYS", "FOOD"),
                equality_candidate=True,
            ),
        ),
        rows=product_rows,
    )
    return WorkloadProfile(
        name="webshop",
        tables=(customers, orders, products),
        joins=(JoinProfile("customers", "customer_id", "orders", "order_customer"),),
    )


# --------------------------------------------------------------------------- #
# database population


def populate_database(profile: WorkloadProfile, *, seed: int | str = 0) -> Database:
    """Create and fill a database instance matching ``profile``.

    Values are drawn uniformly from each column's domain with a deterministic
    RNG, except for join columns on the "many" side, which are drawn from the
    referenced key range so joins actually produce matches.
    """
    rng = deterministic_rng(f"{profile.name}/{seed}")
    database = Database(profile.name)
    for table in profile.tables:
        database.create_table(table.schema())
        for row_index in range(table.rows):
            row: dict[str, object] = {}
            for column in table.columns:
                row[column.name] = _generate_value(column, row_index, rng)
            database.insert(table.name, row)
    return database


def _generate_value(column: ColumnProfile, row_index: int, rng) -> object:
    if column.type is ColumnType.INTEGER:
        if column.minimum is not None and float(column.minimum) == 1.0 and column.name.endswith("id"):
            # Key-like columns get sequential values so joins and IN lists hit.
            return row_index + 1
        return rng.randint(int(column.minimum), int(column.maximum))  # type: ignore[arg-type]
    if column.type is ColumnType.REAL:
        value = rng.uniform(float(column.minimum), float(column.maximum))  # type: ignore[arg-type]
        return round(value, 2)
    if column.type is ColumnType.TEXT:
        return rng.choice(list(column.values))
    return rng.choice([True, False])
