"""Synthetic query-log generation.

:class:`QueryLogGenerator` draws queries from a :class:`WorkloadProfile`
according to a :class:`WorkloadMix` of query shapes.  All randomness is
seeded, so a (profile, mix, seed, size) tuple always yields the same log —
experiments and benchmarks are reproducible run to run.

The generated SQL stays inside the fragment every subsystem supports:
SELECT with explicit projections, equality / range / BETWEEN / IN predicates
combined with AND (and occasionally OR), equi-joins along the profile's join
relationships, aggregates (COUNT/SUM/MIN/MAX/AVG) and GROUP BY.  LIKE and
``SELECT *`` are deliberately never generated (the CryptDB layer rejects
them), and aggregate queries can be switched off for the select-project-join
workloads the result-distance scheme requires.

Streaming workloads reuse the same determinism: generate one log of the
final size and append its entries to a
:class:`~repro.mining.incremental.StreamingQueryLog` in slices, as
``examples/streaming_mining.py`` and experiment P3 do.  Because the log is
a pure function of (profile, mix, seed, size), the streamed and the batch
variant of an experiment see identical queries — any difference in mining
output is then attributable to the incremental machinery, never the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._utils import deterministic_rng
from repro.db.schema import ColumnType
from repro.exceptions import WorkloadError
from repro.sql.log import QueryLog
from repro.workloads.schemas import ColumnProfile, TableProfile, WorkloadProfile


@dataclass(frozen=True)
class WorkloadMix:
    """Relative weights of the generated query shapes."""

    point_select: float = 3.0
    range_select: float = 3.0
    conjunctive_select: float = 2.0
    in_select: float = 1.0
    join_select: float = 1.5
    aggregate_select: float = 1.5
    group_by_select: float = 1.0

    @classmethod
    def spj_only(cls) -> "WorkloadMix":
        """A mix without aggregates/GROUP BY (the result-distance fragment)."""
        return cls(aggregate_select=0.0, group_by_select=0.0)

    @classmethod
    def analytical(cls) -> "WorkloadMix":
        """A mix dominated by aggregates and grouping."""
        return cls(
            point_select=1.0,
            range_select=2.0,
            conjunctive_select=1.0,
            in_select=0.5,
            join_select=1.0,
            aggregate_select=4.0,
            group_by_select=3.0,
        )

    def as_weights(self) -> dict[str, float]:
        """The mix as a name -> weight mapping (zero weights dropped)."""
        weights = {
            "point": self.point_select,
            "range": self.range_select,
            "conjunctive": self.conjunctive_select,
            "in": self.in_select,
            "join": self.join_select,
            "aggregate": self.aggregate_select,
            "group_by": self.group_by_select,
        }
        positive = {name: weight for name, weight in weights.items() if weight > 0}
        if not positive:
            raise WorkloadError("workload mix must have at least one positive weight")
        return positive


@dataclass
class QueryLogGenerator:
    """Draws reproducible synthetic query logs from a workload profile."""

    profile: WorkloadProfile
    mix: WorkloadMix = field(default_factory=WorkloadMix)
    seed: int | str = 0

    def generate(self, size: int) -> QueryLog:
        """Generate a log of ``size`` queries."""
        if size < 1:
            raise WorkloadError("log size must be positive")
        rng = deterministic_rng(f"{self.profile.name}/{self.mix}/{self.seed}")
        weights = self.mix.as_weights()
        kinds = list(weights)
        kind_weights = [weights[kind] for kind in kinds]
        statements = []
        for _ in range(size):
            kind = rng.choices(kinds, weights=kind_weights, k=1)[0]
            statements.append(self._generate_statement(kind, rng))
        return QueryLog.from_sql(statements)

    # ------------------------------------------------------------------ #
    # statement builders

    def _generate_statement(self, kind: str, rng) -> str:
        if kind == "point":
            return self._point_select(rng)
        if kind == "range":
            return self._range_select(rng)
        if kind == "conjunctive":
            return self._conjunctive_select(rng)
        if kind == "in":
            return self._in_select(rng)
        if kind == "join":
            return self._join_select(rng)
        if kind == "aggregate":
            return self._aggregate_select(rng)
        return self._group_by_select(rng)

    def _point_select(self, rng) -> str:
        table = self._pick_table(rng)
        column = self._pick_column(table, rng, equality=True)
        projection = self._projection(table, rng)
        return (
            f"SELECT {projection} FROM {table.name} "
            f"WHERE {column.name} = {self._constant(column, rng)}"
        )

    def _range_select(self, rng) -> str:
        table = self._pick_table(rng, needs_range=True)
        column = self._pick_column(table, rng, range_=True)
        projection = self._projection(table, rng)
        if rng.random() < 0.4:
            low, high = self._range_bounds(column, rng)
            predicate = f"{column.name} BETWEEN {low} AND {high}"
        else:
            operator = rng.choice(["<", "<=", ">", ">="])
            predicate = f"{column.name} {operator} {self._constant(column, rng)}"
        return f"SELECT {projection} FROM {table.name} WHERE {predicate}"

    def _conjunctive_select(self, rng) -> str:
        table = self._pick_table(rng)
        projection = self._projection(table, rng)
        predicates = [self._predicate(table, rng) for _ in range(rng.randint(2, 3))]
        connective = " AND " if rng.random() < 0.8 else " OR "
        return f"SELECT {projection} FROM {table.name} WHERE {connective.join(predicates)}"

    def _in_select(self, rng) -> str:
        table = self._pick_table(rng)
        column = self._pick_column(table, rng, equality=True)
        projection = self._projection(table, rng)
        values = ", ".join(
            str(self._constant(column, rng)) for _ in range(rng.randint(2, 4))
        )
        return f"SELECT {projection} FROM {table.name} WHERE {column.name} IN ({values})"

    def _join_select(self, rng) -> str:
        if not self.profile.joins:
            return self._conjunctive_select(rng)
        join = rng.choice(list(self.profile.joins))
        left = self.profile.table(join.left_table)
        right = self.profile.table(join.right_table)
        projection_columns = [
            self._pick_column(left, rng, projectable=True).name,
            self._pick_column(right, rng, projectable=True).name,
        ]
        filter_table = rng.choice([left, right])
        predicate = self._predicate(filter_table, rng)
        return (
            f"SELECT {', '.join(dict.fromkeys(projection_columns))} "
            f"FROM {join.left_table} JOIN {join.right_table} "
            f"ON {join.left_column} = {join.right_column} "
            f"WHERE {predicate}"
        )

    def _aggregate_select(self, rng) -> str:
        table = self._pick_table(rng, needs_aggregate=True)
        column = self._pick_column(table, rng, aggregate=True)
        # AVG is omitted on purpose: CryptDB evaluates AVG client-side as
        # SUM/COUNT, so realistic encrypted-execution workloads contain the
        # rewritten forms rather than AVG itself.
        function = rng.choice(["SUM", "MIN", "MAX", "COUNT"])
        aggregate = "COUNT(*)" if function == "COUNT" else f"{function}({column.name})"
        predicate = self._predicate(table, rng)
        return f"SELECT {aggregate} FROM {table.name} WHERE {predicate}"

    def _group_by_select(self, rng) -> str:
        table = self._pick_table(rng, needs_aggregate=True)
        group_column = self._pick_column(table, rng, equality=True)
        aggregate_column = self._pick_column(table, rng, aggregate=True)
        function = rng.choice(["SUM", "MIN", "MAX", "COUNT"])
        aggregate = "COUNT(*)" if function == "COUNT" else f"{function}({aggregate_column.name})"
        predicate = self._predicate(table, rng)
        return (
            f"SELECT {group_column.name}, {aggregate} FROM {table.name} "
            f"WHERE {predicate} GROUP BY {group_column.name}"
        )

    # ------------------------------------------------------------------ #
    # building blocks

    def _pick_table(
        self, rng, *, needs_range: bool = False, needs_aggregate: bool = False
    ) -> TableProfile:
        candidates = []
        for table in self.profile.tables:
            if needs_range and not any(c.range_candidate for c in table.columns):
                continue
            if needs_aggregate and not any(c.aggregate_candidate for c in table.columns):
                continue
            candidates.append(table)
        if not candidates:
            raise WorkloadError("no table in the profile satisfies the requested query shape")
        return rng.choice(candidates)

    def _pick_column(
        self,
        table: TableProfile,
        rng,
        *,
        equality: bool = False,
        range_: bool = False,
        aggregate: bool = False,
        projectable: bool = False,
    ) -> ColumnProfile:
        def admissible(column: ColumnProfile) -> bool:
            if equality and not column.equality_candidate:
                return False
            if range_ and not column.range_candidate:
                return False
            if aggregate and not column.aggregate_candidate:
                return False
            return True

        candidates = [column for column in table.columns if admissible(column)]
        if not candidates:
            if projectable:
                candidates = list(table.columns)
            else:
                raise WorkloadError(
                    f"table {table.name!r} has no column for the requested predicate kind"
                )
        return rng.choice(candidates)

    def _projection(self, table: TableProfile, rng) -> str:
        count = rng.randint(1, min(3, len(table.columns)))
        names = [column.name for column in table.columns]
        chosen = rng.sample(names, count)
        return ", ".join(sorted(chosen, key=names.index))

    def _predicate(self, table: TableProfile, rng) -> str:
        range_columns = [c for c in table.columns if c.range_candidate]
        equality_columns = [c for c in table.columns if c.equality_candidate]
        use_range = range_columns and (not equality_columns or rng.random() < 0.5)
        if use_range:
            column = rng.choice(range_columns)
            operator = rng.choice(["<", "<=", ">", ">="])
            return f"{column.name} {operator} {self._constant(column, rng)}"
        column = rng.choice(equality_columns)
        return f"{column.name} = {self._constant(column, rng)}"

    def _range_bounds(self, column: ColumnProfile, rng) -> tuple[str, str]:
        """Two constants with low <= high for a BETWEEN predicate."""
        first = self._constant(column, rng)
        second = self._constant(column, rng)
        low, high = sorted([float(first), float(second)])
        if column.type is ColumnType.INTEGER:
            return str(int(low)), str(int(high))
        return str(low), str(high)

    def _constant(self, column: ColumnProfile, rng) -> str:
        if column.type is ColumnType.INTEGER:
            return str(rng.randint(int(column.minimum), int(column.maximum)))  # type: ignore[arg-type]
        if column.type is ColumnType.REAL:
            value = rng.uniform(float(column.minimum), float(column.maximum))  # type: ignore[arg-type]
            return f"{round(value, 2)}"
        value = rng.choice(list(column.values))
        escaped = str(value).replace("'", "''")
        return f"'{escaped}'"
