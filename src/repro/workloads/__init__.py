"""Synthetic workloads: schemas, database content and query logs.

The paper's case study targets SQL query logs such as the SkyServer log
([16]); those logs and databases are not publicly redistributable, so this
package generates synthetic equivalents that exercise the same query shapes:
point and range selections, conjunctive predicates, IN lists, joins,
aggregates and GROUP BY over a SkyServer-like astronomy schema and a
web-shop schema.  All generation is seeded and therefore reproducible.
"""

from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import (
    ColumnProfile,
    TableProfile,
    WorkloadProfile,
    populate_database,
    skyserver_profile,
    webshop_profile,
)

__all__ = [
    "ColumnProfile",
    "QueryLogGenerator",
    "TableProfile",
    "WorkloadMix",
    "WorkloadProfile",
    "populate_database",
    "skyserver_profile",
    "webshop_profile",
]
